"""Workload record/replay and cost-model-driven knob autotuning.

The serving stack has a dozen performance knobs — kernel toggles, cache
capacities, scheduler/shard workers, capture parameters — and the right
setting depends on the *workload*: a bursty what-if sweep wants a
prepared cache wider than its τ working set, a cold-start storm gains
nothing from any cache, and choice-model knobs trade accuracy against
evaluation cost.  This package closes that loop:

* :mod:`~repro.tuning.trace` — :class:`TraceRecorder` journals every
  :class:`~repro.service.SelectionQuery` (arrival offset, outcome,
  :class:`~repro.service.QueryStats`) to JSONL; :class:`TraceReplayer`
  replays a trace against any :class:`EngineConfig` with open-loop or
  as-fast-as-possible pacing and reports latencies plus the exact
  cache-event sequence.
* :mod:`~repro.tuning.cost_model` — an analytic :class:`CostModel`
  predicting resolve/select/cache-hit cost from
  :func:`~repro.data.cost_features` features, fitted per machine by a
  short calibration run.
* :mod:`~repro.tuning.tuner` — :class:`KnobTuner` searches the knob
  space against a recorded trace (cost-model screening over a simulated
  cache, measured replay of the finalists) and emits a recommended
  config as JSON.
* :mod:`~repro.tuning.canned` — the three canned workloads (bursty
  what-if sweep, streaming churn, cold-start storm) shipped as both
  regression fixtures and the ``BENCH_autotune`` benchmark.
"""

from .canned import CANNED_WORKLOADS, jitter_users, record_canned
from .config import EngineConfig
from .cost_model import CostModel, PredictedCost
from .trace import (
    ReplayReport,
    TraceEvent,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
    build_dataset,
)
from .tuner import DEFAULT_SEARCH_SPACE, KnobTuner, TuningRecommendation, default_search_space

__all__ = [
    "CANNED_WORKLOADS",
    "DEFAULT_SEARCH_SPACE",
    "CostModel",
    "EngineConfig",
    "KnobTuner",
    "PredictedCost",
    "ReplayReport",
    "TraceEvent",
    "TraceRecorder",
    "TraceReplayer",
    "TuningRecommendation",
    "WorkloadTrace",
    "build_dataset",
    "default_search_space",
    "jitter_users",
    "record_canned",
]
