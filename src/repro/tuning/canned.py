"""The three canned workloads: regression fixtures and tuning benchmarks.

Each canned workload is a deterministic query/publish plan executed
through a :class:`~repro.tuning.TraceRecorder` against a real engine, so
the shipped fixtures are genuine recordings (offsets, outcomes,
QueryStats) rather than synthetic files:

* **bursty** — a what-if sweep whose τ working set (20 distinct values,
  cycled) is wider than the default prepared cache (16): under the
  default config the LRU thrashes cyclically and every burst re-resolves,
  which is exactly the pathology the tuner should detect and fix by
  widening the prepared cache.  Ends with deadline-zero and cancelled
  queries so replays cover the failure outcomes too.
* **churn** — streaming write traffic: query bursts separated by
  deterministic position-jitter republishes, exercising the
  delta-patched prepared-instance migration (the ``incremental`` knob).
* **cold-start** — a storm of never-repeating ``(τ, k)`` queries; no
  cache at any capacity can help, pinning the tuner's "don't pay for
  caches that cannot hit" behaviour.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..entities import MovingUser
from ..exceptions import QueryCancelledError, TuningError
from ..service import CancelToken, SelectionQuery
from .config import EngineConfig
from .trace import TraceRecorder, WorkloadTrace, build_dataset, dataset_spec

#: Canned workload names, in presentation order.
CANNED_WORKLOADS: Tuple[str, ...] = ("bursty", "churn", "cold-start")


def jitter_users(session: Any, n_moves: int, seed: int) -> None:
    """Jitter ``n_moves`` users' position histories in a streaming session.

    Deterministic in ``(session user set, n_moves, seed)`` — the
    record/replay contract: a publish journaled as ``(moves, seed)``
    reproduces the identical successor snapshot (same content hash) on
    replay.
    """
    rng = np.random.default_rng(seed)
    uids = sorted(session._users)
    for uid in rng.choice(uids, size=min(n_moves, len(uids)), replace=False):
        user = session._users[int(uid)]
        moved = user.positions + rng.normal(0.0, 0.5, user.positions.shape)
        session.update_user(MovingUser(int(uid), moved))


# ----------------------------------------------------------------------
# Workload plans
# ----------------------------------------------------------------------
def _bursty(recorder: TraceRecorder, solver: str) -> None:
    """20 τ values cycled twice, one uniquely-keyed query per burst."""
    taus = [round(0.50 + 0.015 * i, 4) for i in range(20)]
    for burst in range(2 * len(taus)):
        tau = taus[burst % len(taus)]
        # The k changes per cycle, so the second cycle misses the result
        # cache and lands on the prepared cache — the knob under test.
        recorder.execute(
            SelectionQuery(k=2 + burst // len(taus), tau=tau, solver=solver)
        )
    # Failure-outcome coverage: queries that expire at submission and
    # queries their caller abandoned.
    for tau in (taus[0], taus[1]):
        try:
            recorder.execute(
                SelectionQuery(k=2, tau=tau, solver=solver, deadline_s=0.0)
            )
        except QueryCancelledError:
            pass
    for tau in (taus[2], taus[3]):
        token = CancelToken()
        token.cancel()
        try:
            recorder.execute(
                SelectionQuery(k=2, tau=tau, solver=solver), cancel=token
            )
        except QueryCancelledError:
            pass


def _churn(recorder: TraceRecorder, solver: str, session: Any, seed: int) -> None:
    """Query bursts separated by deterministic republishes."""
    n_users = len(session._users)
    moves = max(4, n_users // 20)
    for pass_no in range(3):
        if pass_no:
            recorder.record_publish(session, moves, seed + pass_no)
        for tau in (0.6, 0.7):
            for k in range(1, 5):
                recorder.execute(SelectionQuery(k=k, tau=tau, solver=solver))


def _cold_start(recorder: TraceRecorder, solver: str) -> None:
    """30 never-repeating (τ, k) queries — uncacheable by construction."""
    for i in range(30):
        recorder.execute(
            SelectionQuery(
                k=2 + i % 3, tau=round(0.50 + 0.012 * i, 4), solver=solver
            )
        )


# ----------------------------------------------------------------------
def record_canned(
    workload: str,
    out_path: Optional[Union[str, Path]] = None,
    n_users: int = 160,
    n_candidates: int = 20,
    n_facilities: int = 40,
    seed: int = 0,
    solver: str = "iqt",
    config: Optional[EngineConfig] = None,
) -> WorkloadTrace:
    """Record one canned workload against a live engine.

    Returns the recorded :class:`~repro.tuning.WorkloadTrace` (saved to
    ``out_path`` when given).  ``config`` sets the engine the recording
    runs under — all defaults when omitted, which is the baseline the
    tuner compares against.
    """
    if workload not in CANNED_WORKLOADS:
        raise TuningError(
            f"unknown canned workload {workload!r}; "
            f"expected one of {CANNED_WORKLOADS}"
        )
    config = config or EngineConfig()
    spec = dataset_spec(
        n_users=n_users,
        n_candidates=n_candidates,
        n_facilities=n_facilities,
        seed=seed,
    )
    dataset = build_dataset(spec)
    streaming = workload == "churn"
    session = None
    if streaming:
        from ..streaming import StreamingMC2LS

        session = StreamingMC2LS.from_dataset(dataset, k=1)
        first: Any = session.snapshot()
    else:
        first = dataset
    engine = config.make_engine(first)
    recorder = TraceRecorder(
        engine,
        spec,
        name=workload,
        streaming=streaming,
        engine_config=config,
    )
    try:
        if workload == "bursty":
            _bursty(recorder, solver)
        elif workload == "churn":
            _churn(recorder, solver, session, seed)
        else:
            _cold_start(recorder, solver)
    finally:
        engine.shutdown()
    if out_path is not None:
        recorder.trace.save(out_path)
    return recorder.trace
