"""Knob search against a recorded trace: screen by cost model, confirm by replay.

:class:`KnobTuner` turns a :class:`~repro.tuning.WorkloadTrace` into a
recommended :class:`~repro.tuning.EngineConfig` in two stages:

1. **Screening** — every candidate in the knob grid (cache capacities,
   scheduler/shard workers, kernel toggles, optionally the fixed-worlds
   world count) is scored by
   :meth:`~repro.tuning.CostModel.predict_trace`, which simulates the
   engine's caches over the trace and prices each query analytically.
   Thousands of configs cost milliseconds here.  Ties break toward the
   smaller memory footprint (cache entries are not free) and then
   toward the default worker count.
2. **Confirmation** — the top ``validate_top`` configs plus the
   all-defaults baseline are actually replayed (deterministic ``asap``
   pacing) and the measured P50 latency decides the winner, so a
   mispredicting model cannot ship a regression: the baseline is always
   in the final and wins ties.

The recommendation serialises to the JSON schema the CLI's ``tune``
subcommand emits (see ``docs/API.md``).
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import TuningError
from .config import EngineConfig
from .cost_model import CostModel, PredictedCost
from .trace import ReplayReport, TraceReplayer, WorkloadTrace

#: Default knob grid.  ``None`` for a kernel toggle means "keep each
#: query's recorded knob"; the grid also tries forcing both kernels on
#: and the scalar ablations (the cost model prices all four).
DEFAULT_SEARCH_SPACE: Dict[str, Tuple[Any, ...]] = {
    "prepared_cache_size": (4, 8, 16, 24, 32, 64),
    "result_cache_size": (64, 256, 1024, 4096),
    "max_workers": (1, 2, 4),
    "batch_verify": (None, True, False),
    "fast_select": (None, True, False),
}


def default_search_space() -> Dict[str, Tuple[Any, ...]]:
    """The default knob grid for the machine the tuner runs on.

    On multi-core machines the grid additionally searches
    ``shard_workers`` (``0`` keeps the in-process path; ``>= 2`` runs
    the sharded executor, results bit-identical).  Single-core machines
    exclude the knob — sharding there only adds process overhead, and
    every candidate would waste a replay slot confirming it.
    """
    space = dict(DEFAULT_SEARCH_SPACE)
    if (os.cpu_count() or 1) > 1:
        space["shard_workers"] = (0, 2, 4)
    return space


@dataclass(frozen=True)
class TuningRecommendation:
    """The tuner's verdict: a config plus the evidence behind it."""

    trace_name: str
    config: EngineConfig
    predicted: PredictedCost
    baseline_predicted: PredictedCost
    measured: Dict[str, Any] = field(compare=False, default_factory=dict)
    candidates_scored: int = 0

    @property
    def speedup_p50(self) -> float:
        """Measured baseline P50 over tuned P50 (1.0 when not measured)."""
        tuned = self.measured.get("tuned", {}).get("p50_s")
        base = self.measured.get("baseline", {}).get("p50_s")
        if not tuned or not base:
            return 1.0
        return base / tuned

    def as_dict(self) -> Dict[str, Any]:
        """The ``tune`` output schema (JSON-ready)."""
        return {
            "trace": self.trace_name,
            "recommended": self.config.as_dict(),
            "predicted": self.predicted.as_dict(),
            "baseline_predicted": self.baseline_predicted.as_dict(),
            "measured": self.measured,
            "speedup_p50": self.speedup_p50,
            "candidates_scored": self.candidates_scored,
        }


def _memory_proxy(config: EngineConfig) -> float:
    """Relative memory weight of a config's caches.

    Prepared entries hold a full influence table; result entries are a
    few tuples.  The 512:1 weight only needs to order configs sensibly.
    """
    return config.prepared_cache_size * 512 + config.result_cache_size


class KnobTuner:
    """Search the serving knob space against one recorded trace.

    Args:
        trace: The recorded workload to optimise for.
        cost_model: Machine-local cost coefficients; calibrated on the
            spot (a few seconds) when not supplied.
        search_space: Knob grid overriding :data:`DEFAULT_SEARCH_SPACE`
            per key.  ``tune_worlds`` adds the fixed-worlds world count
            to the grid when the trace's queries use that capture model
            (semantics-changing: the recommendation stops being exact).
    """

    def __init__(
        self,
        trace: WorkloadTrace,
        cost_model: Optional[CostModel] = None,
        search_space: Optional[Dict[str, Sequence[Any]]] = None,
        tune_worlds: bool = False,
    ) -> None:
        self.trace = trace
        self.cost_model = cost_model or CostModel.calibrate(repeats=1)
        space = default_search_space()
        if search_space:
            space.update({k: tuple(v) for k, v in search_space.items()})
        if tune_worlds and self._recorded_worlds():
            space.setdefault("worlds", (None, 8, 16, 32, 64))
        self.search_space = space

    def _recorded_worlds(self) -> List[int]:
        worlds = []
        for event in self.trace.query_events():
            capture = (event.query or {}).get("capture") or {}
            if capture.get("model") == "fixed-worlds":
                worlds.append(int(capture.get("worlds", 32)))
        return worlds

    # ------------------------------------------------------------------
    def candidates(self) -> Iterable[EngineConfig]:
        """The knob grid as configs (defaults fill unsearched knobs).

        ``shard_workers >= 2`` implies the sharded executor; lower
        values keep the in-process path (matching the engine's own
        fallback), so the grid never emits an inconsistent pair.
        """
        keys = sorted(self.search_space)
        for values in itertools.product(*(self.search_space[k] for k in keys)):
            knobs = dict(zip(keys, values))
            if knobs.get("shard_workers", 0) >= 2:
                knobs["execution"] = "sharded"
            yield EngineConfig(**knobs)

    def tune(
        self,
        validate_top: int = 2,
        pacing: str = "asap",
    ) -> TuningRecommendation:
        """Screen the grid, replay the finalists, recommend the winner.

        The all-defaults baseline is always replayed alongside the
        finalists and wins ties, so the recommendation can only beat or
        match what the operator already has.
        """
        if validate_top < 1:
            raise TuningError(f"validate_top must be >= 1, got {validate_top}")
        if not any(True for _ in self.trace.query_events()):
            raise TuningError(f"trace {self.trace.name!r} records no queries")
        baseline = EngineConfig()
        features = None
        scored: List[Tuple[float, float, EngineConfig, PredictedCost]] = []
        for config in self.candidates():
            predicted = self.cost_model.predict_trace(
                self.trace, config, features=features
            )
            scored.append(
                (predicted.total_s, _memory_proxy(config), config, predicted)
            )
        if not scored:
            raise TuningError("empty search space")
        scored.sort(key=lambda item: (item[0], item[1]))
        baseline_predicted = self.cost_model.predict_trace(self.trace, baseline)

        replayer = TraceReplayer(self.trace)
        finalists = [item[2] for item in scored[:validate_top]]
        reports: List[Tuple[EngineConfig, ReplayReport]] = []
        for config in finalists:
            reports.append((config, replayer.replay(config, pacing=pacing)))
        baseline_report = replayer.replay(baseline, pacing=pacing)

        best_config, best_report = min(
            reports, key=lambda item: (item[1].p50_s, item[1].wall_s)
        )
        if (baseline_report.p50_s, baseline_report.wall_s) <= (
            best_report.p50_s,
            best_report.wall_s,
        ):
            best_config, best_report = baseline, baseline_report
        predicted = next(
            item[3] for item in scored if item[2] == best_config
        ) if best_config is not baseline else baseline_predicted
        return TuningRecommendation(
            trace_name=self.trace.name,
            config=best_config,
            predicted=predicted,
            baseline_predicted=baseline_predicted,
            measured={
                "pacing": pacing,
                "baseline": baseline_report.as_dict(),
                "tuned": best_report.as_dict(),
            },
            candidates_scored=len(scored),
        )
