"""The tunable serving configuration: engine knobs + query overrides.

An :class:`EngineConfig` is one point in the knob space the tuner
searches.  It splits into two kinds of knobs:

* **engine knobs** — constructor arguments of
  :class:`~repro.service.SelectionEngine` (cache capacities, scheduler
  workers, execution mode, shard workers, incremental republish);
* **query overrides** — kernel toggles (``batch_verify`` /
  ``fast_select``) and the fixed-worlds world count, applied over each
  replayed query's recorded values when set (``None`` keeps the
  recording).

Kernel toggles never change results (the repo's bit-identity
invariant); the ``worlds`` override *does* change the objective the
fixed-worlds capture model optimises — :attr:`EngineConfig.exact` is
``False`` in that case and the tuner reports it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Optional

from ..capture import CaptureSpec
from ..service import SelectionEngine, SelectionQuery


@dataclass(frozen=True)
class EngineConfig:
    """One candidate serving configuration (defaults match the engine's)."""

    max_workers: int = 4
    max_queued: int = 64
    prepared_cache_size: int = 16
    result_cache_size: int = 4096
    incremental: bool = True
    execution: str = "threaded"
    shard_workers: int = 0
    batch_verify: Optional[bool] = None
    fast_select: Optional[bool] = None
    worlds: Optional[int] = None

    @property
    def exact(self) -> bool:
        """Whether replays under this config reproduce recorded selections."""
        return self.worlds is None

    # ------------------------------------------------------------------
    def engine_kwargs(self) -> Dict[str, Any]:
        """Constructor arguments for :class:`~repro.service.SelectionEngine`."""
        return {
            "max_workers": self.max_workers,
            "max_queued": self.max_queued,
            "prepared_cache_size": self.prepared_cache_size,
            "result_cache_size": self.result_cache_size,
            "incremental": self.incremental,
            "execution": self.execution,
            "shard_workers": self.shard_workers,
        }

    def make_engine(self, snapshot: Any = None) -> SelectionEngine:
        """A fresh engine configured with these knobs."""
        return SelectionEngine(snapshot, **self.engine_kwargs())

    def apply(self, query: SelectionQuery) -> SelectionQuery:
        """The query with this config's overrides applied (others kept)."""
        changes: Dict[str, Any] = {}
        if self.batch_verify is not None:
            changes["batch_verify"] = self.batch_verify
        if self.fast_select is not None:
            changes["fast_select"] = self.fast_select
        if (
            self.worlds is not None
            and query.capture is not None
            and query.capture.model == "fixed-worlds"
            and query.capture.worlds != self.worlds
        ):
            changes["capture"] = CaptureSpec(
                model="fixed-worlds",
                mnl_beta=query.capture.mnl_beta,
                worlds=self.worlds,
                world_seed=query.capture.world_seed,
            )
        return replace(query, **changes) if changes else query

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-portable form (the tuner's output schema)."""
        return {
            "max_workers": self.max_workers,
            "max_queued": self.max_queued,
            "prepared_cache_size": self.prepared_cache_size,
            "result_cache_size": self.result_cache_size,
            "incremental": self.incremental,
            "execution": self.execution,
            "shard_workers": self.shard_workers,
            "batch_verify": self.batch_verify,
            "fast_select": self.fast_select,
            "worlds": self.worlds,
            "exact": self.exact,
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "EngineConfig":
        """Rebuild a config serialised by :meth:`as_dict`."""
        fields = {
            k: spec[k]
            for k in (
                "max_workers",
                "max_queued",
                "prepared_cache_size",
                "result_cache_size",
                "incremental",
                "execution",
                "shard_workers",
                "batch_verify",
                "fast_select",
                "worlds",
            )
            if k in spec
        }
        return cls(**fields)
