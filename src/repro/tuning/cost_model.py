"""Analytic serving-cost model, fitted per machine by a calibration run.

The model predicts the three costs a served query can pay, from the
:func:`~repro.data.cost_features` of the population:

* **resolve** — building the influence table: affine in the
  position-candidate verification pair count (``verify_pairs``), with a
  separate fit per ``batch_verify`` kernel;
* **select** — one greedy ``k``-selection: affine in ``k × n_users``
  (the CELF-screened segmented-sum work bound), per ``fast_select``
  kernel;
* **hit** — returning a cached result: a constant.

Calibration (:meth:`CostModel.calibrate`) times those operations on a
ladder of small synthetic populations and least-squares fits the
coefficients — a few seconds of work that localises the model to the
machine it will predict for.  :meth:`CostModel.predict_trace` then walks
a recorded :class:`~repro.tuning.WorkloadTrace` under a candidate
:class:`~repro.tuning.EngineConfig`, simulating the engine's two LRU
caches exactly (same keys, same capacities, same invalidation on
publish), and prices every query by where the simulation says it would
be served from.  That simulation is what lets the tuner score thousands
of knob combinations without replaying any of them.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..data import california_like, cost_features
from ..exceptions import TuningError
from ..influence import paper_default_pf
from ..service import DatasetSnapshot, PreparedInstance
from ..solvers import IQTSolver, IQTVariant
from .config import EngineConfig
from .trace import WorkloadTrace


def _fit_affine(features: Sequence[float], seconds: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit ``t ≈ c0 + c1·x`` with non-negative coefficients."""
    if len(features) != len(seconds) or not features:
        raise TuningError("calibration needs at least one (feature, time) sample")
    x = np.asarray(features, dtype=float)
    y = np.asarray(seconds, dtype=float)
    if len(x) == 1:
        if x[0]:
            return 0.0, float(y[0] / x[0])
        return float(y[0]), 0.0
    design = np.column_stack([np.ones_like(x), x])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    c0, c1 = float(coef[0]), float(coef[1])
    # A slightly negative intercept/slope from noise would let the search
    # "pay" negative time; clamp and refit the slope through the origin.
    if c1 < 0:
        c1 = 0.0
    if c0 < 0:
        c0 = 0.0
        c1 = float((x @ y) / (x @ x)) if float(x @ x) else 0.0
        c1 = max(c1, 0.0)
    return c0, c1


@dataclass(frozen=True)
class PredictedCost:
    """The cache simulation's verdict on one (trace, config) pair."""

    total_s: float
    result_hits: int
    prepared_hits: int
    resolves: int
    queries: int

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_s": self.total_s,
            "result_hits": self.result_hits,
            "prepared_hits": self.prepared_hits,
            "resolves": self.resolves,
            "queries": self.queries,
        }


@dataclass(frozen=True)
class CostModel:
    """Per-machine coefficients for resolve / select / hit costs.

    ``resolve_coeff`` / ``select_coeff`` map the kernel knob (``True``
    for the vectorized kernel) to ``(c0, c1)`` of the affine fit.
    ``capture_select_coeff`` maps a set-aware capture model name
    (``"mnl"``, ``"fixed-worlds"``) to its own ``(c0, c1)`` — those
    selections run the CELF loop (:func:`repro.capture.capture_select`)
    instead of the CSR kernel, so pricing them with the kernel
    coefficients underestimates badly.  Empty on models loaded from old
    serialisations; :meth:`select_seconds` then falls back to the
    kernel fit.  ``calibrated_worlds`` records the fixed-worlds world
    count the coefficient was measured at, so predictions scale
    linearly to other world counts.
    """

    resolve_coeff: Dict[bool, Tuple[float, float]]
    select_coeff: Dict[bool, Tuple[float, float]]
    hit_seconds: float
    capture_select_coeff: Dict[str, Tuple[float, float]] = field(
        default_factory=dict
    )
    calibrated_worlds: int = 8

    # ------------------------------------------------------------------
    def resolve_seconds(
        self, features: Dict[str, float], batch_verify: bool = True
    ) -> float:
        c0, c1 = self.resolve_coeff[bool(batch_verify)]
        return c0 + c1 * features["verify_pairs"]

    def select_seconds(
        self,
        features: Dict[str, float],
        k: int,
        fast_select: bool = True,
        worlds_factor: float = 1.0,
        capture_model: Optional[str] = None,
    ) -> float:
        """One greedy selection, priced by the path the engine would take.

        Set-aware capture models with a calibrated coefficient use their
        own CELF fit; everything else (and models from old
        serialisations) uses the CSR-kernel fit for ``fast_select``.
        """
        if capture_model is not None and capture_model in self.capture_select_coeff:
            c0, c1 = self.capture_select_coeff[capture_model]
        else:
            c0, c1 = self.select_coeff[bool(fast_select)]
        return (c0 + c1 * k * features["n_users"]) * max(worlds_factor, 0.0)

    # ------------------------------------------------------------------
    def predict_trace(
        self,
        trace: WorkloadTrace,
        config: EngineConfig,
        features: Optional[Dict[str, float]] = None,
    ) -> PredictedCost:
        """Total predicted serve seconds for a trace under a config.

        Simulates the engine's result and prepared caches exactly — keys
        ``(generation, solver, τ, PF, capture)`` (+ ``k`` and mask for
        results), the configured capacities, LRU order refreshed on hit,
        everything dropped on publish except prepared entries kept (at a
        churn-proportional patch cost) when ``config.incremental``.
        """
        if features is None:
            features = cost_features(trace.build_dataset())
        result_lru: "OrderedDict[Tuple, None]" = OrderedDict()
        prepared_lru: "OrderedDict[Tuple, None]" = OrderedDict()
        generation = 0
        total = 0.0
        result_hits = prepared_hits = resolves = queries = 0
        n_users = max(features["n_users"], 1)
        for event in trace.events:
            if event.kind == "publish":
                generation += 1
                result_lru.clear()
                churn_fraction = min(
                    1.0, (event.churn or {}).get("moves", 0) / n_users
                )
                if config.incremental and churn_fraction <= 0.5:
                    # Migrated entries survive under the new generation
                    # at dirty-row patch cost each.
                    patch = churn_fraction * self.resolve_seconds(features)
                    total += patch * len(prepared_lru)
                    prepared_lru = OrderedDict(
                        ((generation,) + key[1:], None) for key in prepared_lru
                    )
                else:
                    prepared_lru.clear()
                continue
            spec = event.query or {}
            if event.outcome not in (None, "ok"):
                continue  # cancelled/expired queries never reach the solver
            queries += 1
            k = int(spec.get("k", 1))
            batch_verify = (
                config.batch_verify
                if config.batch_verify is not None
                else bool(spec.get("batch_verify", True))
            )
            fast_select = (
                config.fast_select
                if config.fast_select is not None
                else bool(spec.get("fast_select", True))
            )
            capture = spec.get("capture") or {}
            capture_model = capture.get("model", "evenly-split")
            worlds_factor = 1.0
            if capture_model == "fixed-worlds":
                recorded = max(int(capture.get("worlds", 32)), 1)
                effective = config.worlds if config.worlds is not None else recorded
                if "fixed-worlds" in self.capture_select_coeff:
                    # The capture fit was measured at calibrated_worlds
                    # worlds; cost is linear in the world count.
                    worlds_factor = max(effective, 1) / max(
                        self.calibrated_worlds, 1
                    )
                else:
                    worlds_factor = max(effective, 1) / recorded
            base = (
                generation,
                spec.get("solver", "iqt"),
                float(spec.get("tau", 0.7)),
                str(spec.get("pf")),
                (capture.get("model", "evenly-split"),
                 capture.get("mnl_beta"), capture.get("worlds"),
                 capture.get("world_seed"), capture.get("huff_utility")),
            )
            mask = spec.get("candidate_ids")
            rkey = base + (k, tuple(mask) if mask else None)
            use_cache = bool(spec.get("use_cache", True))
            if use_cache and rkey in result_lru:
                result_lru.move_to_end(rkey)
                result_hits += 1
                total += self.hit_seconds
                continue
            cost = self.select_seconds(
                features, k, fast_select,
                worlds_factor=worlds_factor, capture_model=capture_model,
            )
            if use_cache and base in prepared_lru:
                prepared_lru.move_to_end(base)
                prepared_hits += 1
            else:
                cost += self.resolve_seconds(features, batch_verify)
                resolves += 1
                if use_cache:
                    prepared_lru[base] = None
                    while len(prepared_lru) > config.prepared_cache_size:
                        prepared_lru.popitem(last=False)
            if use_cache:
                result_lru[rkey] = None
                while len(result_lru) > config.result_cache_size:
                    result_lru.popitem(last=False)
            total += cost
        return PredictedCost(
            total_s=total,
            result_hits=result_hits,
            prepared_hits=prepared_hits,
            resolves=resolves,
            queries=queries,
        )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """JSON-portable coefficients (knob keys become strings)."""
        return {
            "resolve_coeff": {
                str(knob).lower(): list(c) for knob, c in self.resolve_coeff.items()
            },
            "select_coeff": {
                str(knob).lower(): list(c) for knob, c in self.select_coeff.items()
            },
            "hit_seconds": self.hit_seconds,
            "capture_select_coeff": {
                model: list(c)
                for model, c in sorted(self.capture_select_coeff.items())
            },
            "calibrated_worlds": self.calibrated_worlds,
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "CostModel":
        """Rebuild from :meth:`as_dict` output (old dumps lack the
        capture coefficients — they load with an empty mapping and fall
        back to the kernel fit)."""
        def knobbed(d: Dict[str, Any]) -> Dict[bool, Tuple[float, float]]:
            return {k == "true": (float(v[0]), float(v[1])) for k, v in d.items()}

        return cls(
            resolve_coeff=knobbed(spec["resolve_coeff"]),
            select_coeff=knobbed(spec["select_coeff"]),
            hit_seconds=float(spec["hit_seconds"]),
            capture_select_coeff={
                model: (float(c[0]), float(c[1]))
                for model, c in spec.get("capture_select_coeff", {}).items()
            },
            calibrated_worlds=int(spec.get("calibrated_worlds", 8)),
        )

    # ------------------------------------------------------------------
    @classmethod
    def calibrate(
        cls,
        scales: Sequence[Tuple[int, int]] = ((120, 12), (240, 20), (360, 28)),
        tau: float = 0.65,
        k: int = 4,
        repeats: int = 2,
        seed: int = 0,
        calibrate_worlds: int = 8,
    ) -> "CostModel":
        """Fit the machine-local coefficients from a short measured run.

        ``scales`` is a ladder of ``(n_users, n_candidates)`` synthetic
        populations; each is resolved under both verification kernels
        and selected under both greedy kernels, best-of-``repeats``
        timed, and the affine coefficients least-squares fitted.  The
        set-aware capture models (MNL and fixed-worlds at
        ``calibrate_worlds`` worlds) get their own CELF-path select
        fits from the same ladder.
        """
        if repeats < 1:
            raise TuningError(f"repeats must be >= 1, got {repeats}")
        from ..capture import CaptureSpec, capture_select

        pf = paper_default_pf()
        resolve_samples: Dict[bool, Tuple[list, list]] = {
            True: ([], []), False: ([], [])
        }
        select_samples: Dict[bool, Tuple[list, list]] = {
            True: ([], []), False: ([], [])
        }
        capture_specs = {
            "mnl": CaptureSpec(model="mnl", mnl_beta=2.0),
            "fixed-worlds": CaptureSpec(
                model="fixed-worlds", mnl_beta=2.0,
                worlds=calibrate_worlds, world_seed=seed,
            ),
        }
        capture_samples: Dict[str, Tuple[list, list]] = {
            name: ([], []) for name in capture_specs
        }
        hit_times = []
        for n_users, n_candidates in scales:
            dataset = california_like(
                n_users=n_users,
                n_candidates=n_candidates,
                n_facilities=2 * n_candidates,
                seed=seed,
            )
            features = cost_features(dataset)
            for batch_verify in (True, False):
                best = min(
                    _timed(
                        lambda: IQTSolver(
                            variant=IQTVariant.IQT, batch_verify=batch_verify
                        ).resolve(dataset, tau, pf)
                    )
                    for _ in range(repeats)
                )
                xs, ys = resolve_samples[batch_verify]
                xs.append(features["verify_pairs"])
                ys.append(best)
            snapshot = DatasetSnapshot(dataset)
            prepared = PreparedInstance(snapshot, IQTSolver(), tau, pf)
            prepared.select(k)  # build the CSR matrix outside the timing
            for fast_select in (True, False):
                best = min(
                    _timed(lambda: prepared.select(k, fast_select=fast_select))
                    for _ in range(repeats)
                )
                xs, ys = select_samples[fast_select]
                xs.append(k * features["n_users"])
                ys.append(best)
            resolved = IQTSolver().resolve(dataset, tau, pf)
            cids = [c.fid for c in dataset.candidates]
            for name, cspec in capture_specs.items():
                model = cspec.build(dataset, pf)
                best = min(
                    _timed(
                        lambda m=model: capture_select(
                            resolved.table, cids, k, m
                        )
                    )
                    for _ in range(repeats)
                )
                xs, ys = capture_samples[name]
                xs.append(k * features["n_users"])
                ys.append(best)
            hit_times.append(_hit_seconds(dataset, tau, k))
        return cls(
            resolve_coeff={
                knob: _fit_affine(xs, ys)
                for knob, (xs, ys) in resolve_samples.items()
            },
            select_coeff={
                knob: _fit_affine(xs, ys)
                for knob, (xs, ys) in select_samples.items()
            },
            hit_seconds=float(np.median(hit_times)),
            capture_select_coeff={
                name: _fit_affine(xs, ys)
                for name, (xs, ys) in capture_samples.items()
            },
            calibrated_worlds=calibrate_worlds,
        )


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _hit_seconds(dataset, tau: float, k: int) -> float:
    """Median measured latency of a warm result-cache hit."""
    from ..service import SelectionEngine, SelectionQuery

    engine = SelectionEngine(dataset, max_workers=1)
    try:
        query = SelectionQuery(k=k, tau=tau)
        engine.execute(query)
        samples = [
            engine.execute(query).stats.total_seconds for _ in range(5)
        ]
    finally:
        engine.shutdown()
    return float(np.median(samples))
