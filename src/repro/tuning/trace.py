"""Workload traces: JSONL record of served queries, and their replay.

A :class:`WorkloadTrace` is the portable record of one serving session:
a header naming the dataset (a synthetic-population spec, so any process
can rebuild the bit-identical snapshot) followed by one event per line —
``query`` events carrying the :meth:`~repro.service.SelectionQuery.as_dict`
form, the arrival offset, the outcome and the served
:class:`~repro.service.QueryStats`; ``publish`` events carrying the
deterministic churn spec (move count + seed) applied to the streaming
session between bursts.

:class:`TraceRecorder` wraps a live :class:`~repro.service.SelectionEngine`
and journals everything that passes through it; :class:`TraceReplayer`
rebuilds the population from the header and re-issues the events against
any :class:`~repro.tuning.EngineConfig`:

* ``pacing="asap"`` — sequential, as fast as possible.  Deterministic:
  replaying the same trace twice under one config yields identical
  selections *and* an identical cache-event sequence (the property the
  regression fixtures pin).
* ``pacing="open-loop"`` — queries are submitted on the engine's
  scheduler at their recorded arrival offsets, so queue wait and
  concurrency are exercised; latencies are honest (the deadline clock
  and ``total_seconds`` both start at submission) but cache-population
  order is scheduler-dependent.

Queries recorded as ``cancelled`` are replayed with a pre-cancelled
token — the recording says the caller abandoned them, and replaying the
abandonment (rather than racing a live cancel) keeps the outcome
sequence deterministic.  Deadline outcomes replay from the recorded
``deadline_s`` itself.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from ..data import california_like, new_york_like
from ..entities import SpatialDataset
from ..exceptions import (
    DeadlineExceededError,
    QueryCancelledError,
    ReproError,
    TuningError,
)
from ..service import (
    CancelToken,
    QueryHandle,
    QueryResult,
    SelectionEngine,
    SelectionQuery,
)
from .config import EngineConfig

#: Trace file format version; bumped on incompatible schema changes.
TRACE_VERSION = 1

_DATASET_MAKERS = {"california": california_like, "new-york": new_york_like}


def build_dataset(spec: Dict[str, Any]) -> SpatialDataset:
    """Rebuild the synthetic population named by a trace header.

    The spec pins ``kind`` (``california`` / ``new-york``), the
    population sizes and the seed; the generators are deterministic, so
    every replay sees the exact snapshot (same content hash) that was
    recorded against.
    """
    kind = spec.get("kind", "california")
    maker = _DATASET_MAKERS.get(kind)
    if maker is None:
        raise TuningError(
            f"unknown dataset kind {kind!r}; "
            f"expected one of {sorted(_DATASET_MAKERS)}"
        )
    return maker(
        n_users=int(spec.get("n_users", 200)),
        n_candidates=int(spec.get("n_candidates", 20)),
        n_facilities=int(spec.get("n_facilities", 40)),
        seed=int(spec.get("seed", 0)),
    )


def dataset_spec(
    kind: str = "california",
    n_users: int = 200,
    n_candidates: int = 20,
    n_facilities: int = 40,
    seed: int = 0,
) -> Dict[str, Any]:
    """A trace-header dataset spec (validated against the known makers)."""
    if kind not in _DATASET_MAKERS:
        raise TuningError(
            f"unknown dataset kind {kind!r}; "
            f"expected one of {sorted(_DATASET_MAKERS)}"
        )
    return {
        "kind": kind,
        "n_users": n_users,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "seed": seed,
    }


# ----------------------------------------------------------------------
# Events and the trace container
# ----------------------------------------------------------------------
@dataclass
class TraceEvent:
    """One journaled event: a served query or a streaming republish."""

    kind: str  # "query" | "publish"
    offset_s: float
    query: Optional[Dict[str, Any]] = None
    outcome: Optional[str] = None  # "ok" | "cancelled" | "deadline" | "error:…"
    selected: Optional[List[int]] = None
    objective: Optional[float] = None
    stats: Optional[Dict[str, Any]] = None
    churn: Optional[Dict[str, int]] = None  # {"moves": N, "seed": S}

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind, "offset_s": self.offset_s}
        for key in ("query", "outcome", "selected", "objective", "stats", "churn"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "TraceEvent":
        kind = spec.get("kind")
        if kind not in ("query", "publish"):
            raise TuningError(f"unknown trace event kind {kind!r}")
        return cls(
            kind=kind,
            offset_s=float(spec.get("offset_s", 0.0)),
            query=spec.get("query"),
            outcome=spec.get("outcome"),
            selected=spec.get("selected"),
            objective=spec.get("objective"),
            stats=spec.get("stats"),
            churn=spec.get("churn"),
        )


class WorkloadTrace:
    """An ordered event journal plus the header that makes it replayable.

    Args:
        name: Human-readable workload tag.
        dataset: Dataset spec (see :func:`dataset_spec`).
        streaming: Whether the population was served through a streaming
            session (the replayer then routes publishes through the same
            delta-chained bridge the recorder used).
        engine: The engine config the trace was recorded under (``None``
            means all defaults) — provenance, and the tuner's baseline.
    """

    def __init__(
        self,
        name: str,
        dataset: Dict[str, Any],
        streaming: bool = False,
        engine: Optional[Dict[str, Any]] = None,
        events: Optional[List[TraceEvent]] = None,
    ) -> None:
        self.name = name
        self.dataset = dict(dataset)
        self.streaming = streaming
        self.engine = engine
        self.events: List[TraceEvent] = list(events or ())

    # ------------------------------------------------------------------
    def append(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def query_events(self) -> Iterator[TraceEvent]:
        """The query events, in arrival order."""
        return (e for e in self.events if e.kind == "query")

    def max_k(self) -> int:
        """Largest recorded ``k`` (1 for an all-publish trace)."""
        return max(
            (int(e.query["k"]) for e in self.query_events() if e.query),
            default=1,
        )

    def build_dataset(self) -> SpatialDataset:
        """Rebuild the recorded population."""
        return build_dataset(self.dataset)

    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write header + one event per line as JSONL."""
        path = Path(path)
        header = {
            "kind": "header",
            "version": TRACE_VERSION,
            "name": self.name,
            "dataset": self.dataset,
            "streaming": self.streaming,
            "engine": self.engine,
        }
        with path.open("w", encoding="utf-8") as fh:
            fh.write(json.dumps(header) + "\n")
            for event in self.events:
                fh.write(json.dumps(event.as_dict()) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "WorkloadTrace":
        """Parse a JSONL trace file; malformed input raises ``TuningError``."""
        path = Path(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError as exc:
            raise TuningError(f"cannot read trace {path}: {exc}") from exc
        if not lines:
            raise TuningError(f"trace {path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise TuningError(f"trace {path} header is not JSON: {exc}") from exc
        if header.get("kind") != "header":
            raise TuningError(f"trace {path} does not start with a header line")
        version = header.get("version")
        if version != TRACE_VERSION:
            raise TuningError(
                f"trace {path} has version {version!r}; "
                f"this reader supports {TRACE_VERSION}"
            )
        if "dataset" not in header:
            raise TuningError(f"trace {path} header carries no dataset spec")
        events = []
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                events.append(TraceEvent.from_dict(json.loads(line)))
            except (json.JSONDecodeError, TuningError) as exc:
                raise TuningError(
                    f"trace {path} line {lineno} is malformed: {exc}"
                ) from exc
        return cls(
            name=header.get("name", path.stem),
            dataset=header["dataset"],
            streaming=bool(header.get("streaming", False)),
            engine=header.get("engine"),
            events=events,
        )


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def _classify(exc: BaseException) -> str:
    """Map a query exception to its journaled outcome string."""
    if isinstance(exc, DeadlineExceededError):
        return "deadline"
    if isinstance(exc, QueryCancelledError):
        return "cancelled"
    return f"error:{type(exc).__name__}"


class TraceRecorder:
    """Journal every query served by one engine into a
    :class:`WorkloadTrace`.

    Wraps (rather than patches) the engine: callers route their queries
    through :meth:`execute` / :meth:`submit` and republishes through
    :meth:`record_publish`.  Offsets are measured from construction on
    the same clock the engine's deadline tokens use.
    """

    def __init__(
        self,
        engine: SelectionEngine,
        dataset: Dict[str, Any],
        name: str = "trace",
        streaming: bool = False,
        engine_config: Optional[EngineConfig] = None,
    ) -> None:
        self.engine = engine
        self.trace = WorkloadTrace(
            name,
            dataset,
            streaming=streaming,
            engine=engine_config.as_dict() if engine_config else None,
        )
        self._t0 = time.perf_counter()

    def _offset(self) -> float:
        return time.perf_counter() - self._t0

    def _fill(
        self,
        event: TraceEvent,
        result: Optional[QueryResult],
        exc: Optional[BaseException],
    ) -> None:
        if exc is not None:
            event.outcome = _classify(exc)
            return
        assert result is not None
        event.outcome = "ok"
        event.selected = list(result.selected)
        event.objective = result.objective
        event.stats = result.stats.as_dict()

    # ------------------------------------------------------------------
    def execute(
        self, query: SelectionQuery, cancel: Optional[CancelToken] = None
    ) -> QueryResult:
        """Serve synchronously, journaling the outcome (and re-raising)."""
        event = TraceEvent(
            kind="query", offset_s=self._offset(), query=query.as_dict()
        )
        self.trace.append(event)
        try:
            result = self.engine.execute(query, cancel=cancel)
        except ReproError as exc:
            self._fill(event, None, exc)
            raise
        self._fill(event, result, None)
        return result

    def submit(self, query: SelectionQuery) -> QueryHandle:
        """Enqueue on the engine's scheduler; the journal entry is filled
        when the query completes (journal order stays submission order)."""
        event = TraceEvent(
            kind="query", offset_s=self._offset(), query=query.as_dict()
        )
        self.trace.append(event)
        handle = self.engine.submit(query)

        def finish(h: QueryHandle) -> None:
            try:
                result = h.result(0)
            except BaseException as exc:  # journal any failure mode
                self._fill(event, None, exc)
            else:
                self._fill(event, result, None)

        handle.add_done_callback(finish)
        return handle

    def record_publish(self, session: Any, moves: int, seed: int) -> Any:
        """Apply a deterministic churn step to ``session`` and republish.

        The journal keeps only ``(moves, seed)`` — the jitter is a pure
        function of those plus the session state, so the replayer
        reconstructs the identical snapshot (same content hash).
        """
        from .canned import jitter_users

        jitter_users(session, moves, seed)
        snapshot = self.engine.publish(session.snapshot())
        self.trace.append(
            TraceEvent(
                kind="publish",
                offset_s=self._offset(),
                churn={"moves": int(moves), "seed": int(seed)},
            )
        )
        return snapshot


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayedQuery:
    """One replayed query's observable behaviour."""

    index: int
    outcome: str
    latency_s: float
    result_cache: str = ""
    prepared_cache: str = ""
    selected: Optional[Tuple[int, ...]] = None
    objective: Optional[float] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "outcome": self.outcome,
            "latency_s": self.latency_s,
            "result_cache": self.result_cache,
            "prepared_cache": self.prepared_cache,
            "selected": None if self.selected is None else list(self.selected),
            "objective": self.objective,
        }


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = int(round(fraction * (len(sorted_values) - 1)))
    return sorted_values[index]


@dataclass(frozen=True)
class ReplayReport:
    """Everything one replay observed, plus latency aggregates."""

    trace_name: str
    config: Dict[str, Any]
    pacing: str
    wall_s: float
    events: Tuple[ReplayedQuery, ...]
    engine_stats: Dict[str, Any] = field(compare=False, default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def ok_latencies(self) -> List[float]:
        return sorted(e.latency_s for e in self.events if e.outcome == "ok")

    @property
    def p50_s(self) -> float:
        """Median served-query latency (failed queries excluded)."""
        return _percentile(self.ok_latencies, 0.50)

    @property
    def p95_s(self) -> float:
        return _percentile(self.ok_latencies, 0.95)

    @property
    def mean_s(self) -> float:
        lat = self.ok_latencies
        return sum(lat) / len(lat) if lat else 0.0

    def cache_sequence(self) -> Tuple[Tuple[str, str], ...]:
        """The ``(result_cache, prepared_cache)`` provenance per query —
        the determinism observable the canned fixtures pin."""
        return tuple((e.result_cache, e.prepared_cache) for e in self.events)

    def selections(self) -> Tuple[Optional[Tuple[int, ...]], ...]:
        return tuple(e.selected for e in self.events)

    def outcomes(self) -> Tuple[str, ...]:
        return tuple(e.outcome for e in self.events)

    def selection_mismatches(self, trace: WorkloadTrace) -> int:
        """Replayed selections differing from the recording (ok queries).

        Zero for any exact config — the engine's kernels are
        bit-identical across knobs; nonzero only under semantics-changing
        overrides (a different fixed-worlds world count).
        """
        mismatches = 0
        replayed = {e.index: e for e in self.events}
        for index, event in enumerate(
            e for e in trace.events if e.kind == "query"
        ):
            mine = replayed.get(index)
            if mine is None or event.outcome != "ok" or mine.outcome != "ok":
                continue
            if tuple(event.selected or ()) != (mine.selected or ()):
                mismatches += 1
        return mismatches

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trace": self.trace_name,
            "config": self.config,
            "pacing": self.pacing,
            "wall_s": self.wall_s,
            "queries": len(self.events),
            "ok": sum(1 for e in self.events if e.outcome == "ok"),
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
            "mean_s": self.mean_s,
            "result_hits": sum(
                1 for e in self.events if e.result_cache == "hit"
            ),
            "prepared_hits": sum(
                1 for e in self.events if e.prepared_cache == "hit"
            ),
        }


class TraceReplayer:
    """Replay a :class:`WorkloadTrace` against a candidate config."""

    def __init__(self, trace: WorkloadTrace) -> None:
        self.trace = trace

    # ------------------------------------------------------------------
    def _publish(self, recorder_free_engine: SelectionEngine, session: Any,
                 event: TraceEvent) -> None:
        from .canned import jitter_users

        if session is None:
            raise TuningError(
                "trace contains publish events but is not marked streaming"
            )
        churn = event.churn or {}
        jitter_users(session, int(churn.get("moves", 0)), int(churn.get("seed", 0)))
        recorder_free_engine.publish(session.snapshot())

    def _setup(self, config: EngineConfig):
        dataset = self.trace.build_dataset()
        session = None
        if self.trace.streaming:
            from ..streaming import StreamingMC2LS

            session = StreamingMC2LS.from_dataset(dataset, k=1)
            first: Any = session.snapshot()
        else:
            first = dataset
        engine = config.make_engine(first)
        return engine, session

    def replay(
        self,
        config: Optional[EngineConfig] = None,
        pacing: str = "asap",
    ) -> ReplayReport:
        """Run the full trace once and report what happened.

        ``asap`` serves queries sequentially on the calling thread (the
        deterministic mode); ``open-loop`` submits each query on the
        engine's scheduler at its recorded arrival offset, so deadlines
        and queue wait behave exactly as in production.
        """
        if pacing not in ("asap", "open-loop"):
            raise TuningError(
                f"unknown pacing {pacing!r}; expected 'asap' or 'open-loop'"
            )
        config = config or EngineConfig()
        engine, session = self._setup(config)
        records: List[ReplayedQuery] = []
        pending: List[Tuple[int, TraceEvent, QueryHandle]] = []
        t_start = time.perf_counter()
        try:
            index = -1
            for event in self.trace.events:
                if event.kind == "publish":
                    self._drain(pending, records)
                    self._publish(engine, session, event)
                    continue
                index += 1
                query = config.apply(SelectionQuery.from_dict(event.query or {}))
                if event.outcome == "cancelled":
                    # The recording says the caller abandoned this query;
                    # replay the abandonment deterministically.
                    records.append(self._run(engine, index, query, cancelled=True))
                    continue
                if pacing == "open-loop":
                    delay = event.offset_s - (time.perf_counter() - t_start)
                    if delay > 0:
                        self._drain(pending, records, timeout=delay)
                        remaining = event.offset_s - (
                            time.perf_counter() - t_start
                        )
                        if remaining > 0:
                            time.sleep(remaining)
                    pending.append((index, event, engine.submit(query)))
                else:
                    records.append(self._run(engine, index, query))
            self._drain(pending, records)
            wall = time.perf_counter() - t_start
            stats = engine.stats()
        finally:
            engine.shutdown()
        records.sort(key=lambda r: r.index)
        return ReplayReport(
            trace_name=self.trace.name,
            config=config.as_dict(),
            pacing=pacing,
            wall_s=wall,
            events=tuple(records),
            engine_stats=stats,
        )

    # ------------------------------------------------------------------
    def _run(
        self,
        engine: SelectionEngine,
        index: int,
        query: SelectionQuery,
        cancelled: bool = False,
    ) -> ReplayedQuery:
        token = CancelToken.with_timeout(query.deadline_s)
        if cancelled:
            token.cancel()
        try:
            result = engine.execute(query, cancel=token)
        except ReproError as exc:
            return ReplayedQuery(
                index=index,
                outcome=_classify(exc),
                latency_s=time.perf_counter() - token.started_at,
            )
        return ReplayedQuery(
            index=index,
            outcome="ok",
            latency_s=result.stats.total_seconds,
            result_cache=result.stats.result_cache,
            prepared_cache=result.stats.prepared_cache,
            selected=tuple(result.selected),
            objective=result.objective,
        )

    def _drain(
        self,
        pending: List[Tuple[int, TraceEvent, QueryHandle]],
        records: List[ReplayedQuery],
        timeout: Optional[float] = None,
    ) -> None:
        """Collect finished open-loop handles (all of them when no timeout)."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        while pending:
            index, _event, handle = pending[0]
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or not handle.done():
                    return
            try:
                result = handle.result(
                    None if deadline is None else max(0.0, deadline - time.perf_counter())
                )
            except ReproError as exc:
                records.append(
                    ReplayedQuery(
                        index=index,
                        outcome=_classify(exc),
                        latency_s=time.perf_counter() - handle.token.started_at,
                    )
                )
            else:
                records.append(
                    ReplayedQuery(
                        index=index,
                        outcome="ok",
                        latency_s=result.stats.total_seconds,
                        result_cache=result.stats.result_cache,
                        prepared_cache=result.stats.prepared_cache,
                        selected=tuple(result.selected),
                        objective=result.objective,
                    )
                )
            pending.pop(0)
