"""Spatial index substrate: R-tree, quad-tree, grid and the IQuad-tree."""

from .grid import GridIndex
from .iquadtree import IQuadTree, IQuadTreeStats, TraversalResult
from .quadtree import QuadTree
from .rtree import RTree

__all__ = [
    "GridIndex",
    "IQuadTree",
    "IQuadTreeStats",
    "QuadTree",
    "RTree",
    "TraversalResult",
]
