"""A from-scratch R-tree (Guttman 1984) with quadratic split and STR bulk load.

The adapted k-CIFP baseline (Algorithm 1 of the paper) indexes candidate
locations and existing facilities in two R-trees (``RT_C`` and ``RT_F``)
and answers the IA/NIB range queries against them.  This implementation
supports:

* dynamic insertion with Guttman's *ChooseLeaf* (least enlargement) and
  *quadratic split*,
* rectangle range queries (intersection semantics),
* k-nearest-neighbour queries (best-first with a min-heap on ``mindist``),
* Sort-Tile-Recursive (STR) bulk loading for read-mostly workloads.

Items are arbitrary payloads stored with their bounding rectangle;
facilities are points, so their rectangles are degenerate.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import IndexError_
from ..geo import Point, Rect


class _Entry:
    """One slot of an R-tree node: a rectangle plus payload or child node."""

    __slots__ = ("rect", "item", "child")

    def __init__(self, rect: Rect, item: Any = None, child: "_Node | None" = None):
        self.rect = rect
        self.item = item
        self.child = child


class _Node:
    """An R-tree node holding up to ``max_entries`` entries."""

    __slots__ = ("entries", "is_leaf", "parent")

    def __init__(self, is_leaf: bool):
        self.entries: List[_Entry] = []
        self.is_leaf = is_leaf
        self.parent: "_Node | None" = None

    def mbr(self) -> Rect:
        out = self.entries[0].rect
        for e in self.entries[1:]:
            out = out.union(e.rect)
        return out


class RTree:
    """Dynamic R-tree over rectangles (Guttman's original design).

    Args:
        max_entries: Fan-out ``M`` (node capacity).  Default 8 is a good
            fit for the point-sized facility sets this library indexes.
        min_entries: Minimum fill ``m``; defaults to ``max_entries // 2``.
    """

    def __init__(self, max_entries: int = 8, min_entries: Optional[int] = None):
        if max_entries < 2:
            raise IndexError_(f"max_entries must be >= 2, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = min_entries if min_entries is not None else max_entries // 2
        if not 1 <= self.min_entries <= max_entries // 2:
            raise IndexError_(
                f"min_entries must be in [1, {max_entries // 2}], got {self.min_entries}"
            )
        self._root = _Node(is_leaf=True)
        self._count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        h = 1
        node = self._root
        while not node.is_leaf:
            node = node.entries[0].child  # type: ignore[assignment]
            h += 1
        return h

    def bounds(self) -> Optional[Rect]:
        """MBR of all indexed items, or ``None`` when empty."""
        if not self._root.entries:
            return None
        return self._root.mbr()

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, rect: Rect, item: Any) -> None:
        """Insert ``item`` with bounding rectangle ``rect``."""
        self._insert_entry(_Entry(rect, item=item))
        self._count += 1

    def insert_point(self, point: Point, item: Any) -> None:
        """Insert a point payload (degenerate rectangle)."""
        self.insert(Rect.from_point(point), item)

    def _insert_entry(self, entry: _Entry) -> None:
        leaf = self._choose_leaf(self._root, entry.rect)
        leaf.entries.append(entry)
        if entry.child is not None:
            entry.child.parent = leaf
        if len(leaf.entries) > self.max_entries:
            self._split_and_adjust(leaf)
        else:
            # AdjustTree: widen ancestor rectangles to cover the new entry.
            self._adjust_path(leaf)

    def _choose_leaf(self, node: _Node, rect: Rect) -> _Node:
        while not node.is_leaf:
            best = min(
                node.entries,
                key=lambda e: (e.rect.enlargement(rect), e.rect.area),
            )
            node = best.child  # type: ignore[assignment]
        return node

    def _split_and_adjust(self, node: _Node) -> None:
        while len(node.entries) > self.max_entries:
            left_entries, right_entries = self._quadratic_split(node.entries)
            sibling = _Node(is_leaf=node.is_leaf)
            node.entries = left_entries
            sibling.entries = right_entries
            if not node.is_leaf:
                for e in node.entries:
                    e.child.parent = node  # type: ignore[union-attr]
                for e in sibling.entries:
                    e.child.parent = sibling  # type: ignore[union-attr]
            parent = node.parent
            if parent is None:
                new_root = _Node(is_leaf=False)
                for child in (node, sibling):
                    child.parent = new_root
                    new_root.entries.append(_Entry(child.mbr(), child=child))
                self._root = new_root
                return
            # Replace the parent's entry rect for node and add the sibling.
            for e in parent.entries:
                if e.child is node:
                    e.rect = node.mbr()
                    break
            sibling.parent = parent
            parent.entries.append(_Entry(sibling.mbr(), child=sibling))
            node = parent
        # Tighten ancestor rectangles.
        self._adjust_path(node)

    def _adjust_path(self, node: _Node) -> None:
        while node.parent is not None:
            parent = node.parent
            for e in parent.entries:
                if e.child is node:
                    e.rect = node.mbr()
                    break
            node = parent

    def _quadratic_split(self, entries: List[_Entry]) -> Tuple[List[_Entry], List[_Entry]]:
        """Guttman's quadratic split: seed with the worst pair, then assign."""
        # PickSeeds: the pair wasting the most area when combined.
        worst_waste = -math.inf
        seed_a = seed_b = 0
        for i, j in itertools.combinations(range(len(entries)), 2):
            combined = entries[i].rect.union(entries[j].rect)
            waste = combined.area - entries[i].rect.area - entries[j].rect.area
            if waste > worst_waste:
                worst_waste = waste
                seed_a, seed_b = i, j
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        rect_a = entries[seed_a].rect
        rect_b = entries[seed_b].rect
        remaining = [e for k, e in enumerate(entries) if k not in (seed_a, seed_b)]
        while remaining:
            # Force assignment when one group must take everything left to
            # reach the minimum fill.
            if len(group_a) + len(remaining) == self.min_entries:
                group_a.extend(remaining)
                for e in remaining:
                    rect_a = rect_a.union(e.rect)
                break
            if len(group_b) + len(remaining) == self.min_entries:
                group_b.extend(remaining)
                for e in remaining:
                    rect_b = rect_b.union(e.rect)
                break
            # PickNext: entry with the greatest preference for one group.
            best_idx = 0
            best_diff = -1.0
            for idx, e in enumerate(remaining):
                d1 = rect_a.enlargement(e.rect)
                d2 = rect_b.enlargement(e.rect)
                diff = abs(d1 - d2)
                if diff > best_diff:
                    best_diff = diff
                    best_idx = idx
            e = remaining.pop(best_idx)
            d1 = rect_a.enlargement(e.rect)
            d2 = rect_b.enlargement(e.rect)
            if d1 < d2 or (d1 == d2 and rect_a.area <= rect_b.area):
                group_a.append(e)
                rect_a = rect_a.union(e.rect)
            else:
                group_b.append(e)
                rect_b = rect_b.union(e.rect)
        return group_a, group_b

    # ------------------------------------------------------------------
    # Deletion (Guttman's Delete + CondenseTree)
    # ------------------------------------------------------------------
    def delete(self, rect: Rect, item: Any) -> bool:
        """Remove one entry matching ``(rect, item)``; returns success.

        Underfull nodes are dissolved and their surviving leaf entries
        reinserted (CondenseTree); a root with a single child is collapsed.
        """
        found = self._find_leaf(self._root, rect, item)
        if found is None:
            return False
        leaf, index = found
        leaf.entries.pop(index)
        self._count -= 1
        self._condense(leaf)
        return True

    def delete_point(self, point: Point, item: Any) -> bool:
        """Remove a point payload inserted with :meth:`insert_point`."""
        return self.delete(Rect.from_point(point), item)

    def _find_leaf(
        self, node: _Node, rect: Rect, item: Any
    ) -> Optional[Tuple[_Node, int]]:
        if node.is_leaf:
            for i, e in enumerate(node.entries):
                if e.rect == rect and e.item == item:
                    return (node, i)
            return None
        for e in node.entries:
            if e.rect.contains_rect(rect):
                found = self._find_leaf(e.child, rect, item)  # type: ignore[arg-type]
                if found is not None:
                    return found
        return None

    def _condense(self, node: _Node) -> None:
        orphans: List[_Entry] = []
        while node.parent is not None:
            parent = node.parent
            if len(node.entries) < self.min_entries:
                # Dissolve the underfull node: unhook it from its parent
                # and queue its leaf-level entries for reinsertion.
                parent.entries = [e for e in parent.entries if e.child is not node]
                orphans.extend(self._collect_leaf_entries(node))
            else:
                for e in parent.entries:
                    if e.child is node:
                        e.rect = node.mbr() if node.entries else e.rect
                        break
            node = parent
        # Collapse a non-leaf root with a single child.
        while not self._root.is_leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0].child  # type: ignore[assignment]
            self._root.parent = None
        if not self._root.is_leaf and not self._root.entries:
            self._root = _Node(is_leaf=True)
        for entry in orphans:
            self._insert_entry(_Entry(entry.rect, item=entry.item))

    @staticmethod
    def _collect_leaf_entries(node: _Node) -> List[_Entry]:
        out: List[_Entry] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                out.extend(current.entries)
            else:
                stack.extend(e.child for e in current.entries)  # type: ignore[misc]
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, rect: Rect) -> List[Any]:
        """Return payloads whose rectangles intersect ``rect``."""
        return list(self.iter_range(rect))

    def iter_range(self, rect: Rect) -> Iterator[Any]:
        """Iterate payloads whose rectangles intersect ``rect``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if not e.rect.intersects(rect):
                    continue
                if node.is_leaf:
                    yield e.item
                else:
                    stack.append(e.child)  # type: ignore[arg-type]

    def nearest(self, point: Point, k: int = 1) -> List[Any]:
        """Return the ``k`` payloads nearest to ``point`` (best-first search)."""
        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        heap: List[Tuple[float, int, _Entry | _Node]] = []
        tie = itertools.count()
        heapq.heappush(heap, (0.0, next(tie), self._root))
        out: List[Any] = []
        while heap and len(out) < k:
            dist, _, obj = heapq.heappop(heap)
            if isinstance(obj, _Node):
                for e in obj.entries:
                    d = e.rect.min_distance_to_point(point)
                    if obj.is_leaf:
                        heapq.heappush(heap, (d, next(tie), e))
                    else:
                        heapq.heappush(heap, (d, next(tie), e.child))
            else:  # a leaf entry — its mindist is now exact and minimal
                out.append(obj.item)
        return out

    def items(self) -> Iterator[Tuple[Rect, Any]]:
        """Iterate all ``(rect, item)`` pairs in the tree."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            for e in node.entries:
                if node.is_leaf:
                    yield e.rect, e.item
                else:
                    stack.append(e.child)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------
    @classmethod
    def bulk_load(
        cls,
        items: Sequence[Tuple[Rect, Any]],
        max_entries: int = 8,
        min_entries: Optional[int] = None,
    ) -> "RTree":
        """Build an R-tree with Sort-Tile-Recursive packing.

        STR produces near-perfectly packed leaves and is the standard way
        to build an index over a static facility set.  Falls back to an
        empty dynamic tree for zero items.
        """
        tree = cls(max_entries=max_entries, min_entries=min_entries)
        if not items:
            return tree
        leaves = tree._str_pack(
            [_Entry(rect, item=item) for rect, item in items], is_leaf=True
        )
        level = leaves
        while len(level) > 1:
            entries = [_Entry(n.mbr(), child=n) for n in level]
            level = tree._str_pack(entries, is_leaf=False)
        tree._root = level[0]
        tree._count = len(items)
        return tree

    def _str_pack(self, entries: List[_Entry], is_leaf: bool) -> List[_Node]:
        cap = self.max_entries
        n = len(entries)
        n_leaves = math.ceil(n / cap)
        n_slices = math.ceil(math.sqrt(n_leaves))
        entries = sorted(entries, key=lambda e: e.rect.center.x)
        slice_size = n_slices * cap
        nodes: List[_Node] = []
        for i in range(0, n, slice_size):
            vertical = sorted(entries[i : i + slice_size], key=lambda e: e.rect.center.y)
            for j in range(0, len(vertical), cap):
                node = _Node(is_leaf=is_leaf)
                node.entries = vertical[j : j + cap]
                if not is_leaf:
                    for e in node.entries:
                        e.child.parent = node  # type: ignore[union-attr]
                nodes.append(node)
        return nodes

    @classmethod
    def from_points(
        cls, points: Iterable[Tuple[Point, Any]], max_entries: int = 8
    ) -> "RTree":
        """Bulk-load a tree of point payloads."""
        return cls.bulk_load(
            [(Rect.from_point(p), item) for p, item in points], max_entries=max_entries
        )
