"""A uniform grid index over points.

Used as a fast auxiliary structure (e.g. candidate/facility lookup in the
synthetic data generators and as a brute-force-adjacent baseline in index
benchmarks).  Cells are addressed by integer ``(ix, iy)`` coordinates; the
grid stores payload lists per cell and answers rectangle range queries by
scanning the overlapped cell block.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Any, Dict, Iterator, List, Tuple

from ..exceptions import IndexError_
from ..geo import Point, Rect


class GridIndex:
    """A uniform grid over a fixed region.

    Args:
        region: Spatial extent of the grid.
        cell_size: Side length of each (square) cell, in km.
    """

    def __init__(self, region: Rect, cell_size: float):
        if cell_size <= 0:
            raise IndexError_(f"cell_size must be positive, got {cell_size}")
        if region.area <= 0:
            raise IndexError_("grid region must have positive area")
        self.region = region
        self.cell_size = cell_size
        self.nx = max(1, math.ceil(region.width / cell_size))
        self.ny = max(1, math.ceil(region.height / cell_size))
        self._cells: Dict[Tuple[int, int], List[Tuple[Point, Any]]] = defaultdict(list)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Return the cell coordinates containing ``(x, y)`` (clamped)."""
        ix = int((x - self.region.min_x) / self.cell_size)
        iy = int((y - self.region.min_y) / self.cell_size)
        return (min(max(ix, 0), self.nx - 1), min(max(iy, 0), self.ny - 1))

    def cell_rect(self, ix: int, iy: int) -> Rect:
        """Return the spatial extent of cell ``(ix, iy)``."""
        x0 = self.region.min_x + ix * self.cell_size
        y0 = self.region.min_y + iy * self.cell_size
        return Rect(x0, y0, x0 + self.cell_size, y0 + self.cell_size)

    def insert(self, point: Point, item: Any = None) -> None:
        """Insert a payload at ``point`` (points outside the region clamp)."""
        self._cells[self.cell_of(point.x, point.y)].append((point, item))
        self._count += 1

    def iter_range(self, rect: Rect) -> Iterator[Tuple[Point, Any]]:
        """Iterate ``(point, payload)`` pairs with the point inside ``rect``."""
        ix0, iy0 = self.cell_of(rect.min_x, rect.min_y)
        ix1, iy1 = self.cell_of(rect.max_x, rect.max_y)
        for ix in range(ix0, ix1 + 1):
            for iy in range(iy0, iy1 + 1):
                bucket = self._cells.get((ix, iy))
                if not bucket:
                    continue
                for p, item in bucket:
                    if rect.contains_point(p):
                        yield p, item

    def range_query(self, rect: Rect) -> List[Any]:
        """Return payloads of all points inside ``rect``."""
        return [item for _, item in self.iter_range(rect)]

    def occupied_cells(self) -> int:
        """Number of cells holding at least one point."""
        return len(self._cells)
