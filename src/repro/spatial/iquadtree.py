"""The IQuad-tree: the paper's user-MBR-free pruning index (§V-C).

The IQuad-tree partitions the (squared-up) region into a full quad-tree
whose leaves have diagonal at most ``d̂``.  Because the subdivision always
quarters squares, every level is a regular ``2^l × 2^l`` grid, and a node
is identified by the Morton (Z-order) code of its cell.  Truncating a
Morton code by two bits yields the parent's code, so one global sort of
all positions by leaf code serves every level of the tree: the node
occupied by any (level, cell) is a contiguous slice, found by binary
search.  Construction is therefore a single ``lexsort`` plus one
``reduceat`` per level — no pointers, no per-node allocation.

Per node the structure keeps the paper's entry components:

* ``rect``  — implicit from ``(level, ix, iy)``;
* ``P``     — per-(node, user) position *counts* (the IS rule only needs
  counts) plus, at leaves, slices of the globally sorted position array
  (the NIR rule needs coordinates);
* ``Ω_inf`` — users IS-confirmed for the node, computed lazily on first
  traversal and memoised (the paper's ``visited`` flag);
* ``Ω_vrf`` — at leaves, users surviving the NIR prune, lazily memoised.

The attached *Hash* structure ``{level diagonal -> η}`` is the ``_eta``
list, giving O(1) position-count thresholds per level.

Traversal (Algorithm 3) walks the root→leaf path of an abstract facility,
unions the ``Ω_inf`` sets along the path (IS rule, Lemmas 1–2 via the
square hierarchy of Fig. 4) and subtracts them from the leaf's ``Ω_vrf``
(NIR rule, Lemma 3).  Results are memoised per *leaf*, which is exactly
the paper's batch-wise property: every abstract facility in the same leaf
reuses the first traversal's answer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from ..entities import MovingUser
from ..exceptions import IndexError_
from ..geo import Rect, RoundedSquare, Square
from ..influence import (
    ProbabilityFunction,
    non_influence_radius,
    position_count_threshold_int,
)

_CellKey = Tuple[int, int]

_MAX_DEPTH = 16  # Morton interleave below supports 16-bit cell coordinates.


def _part1by1(n: np.ndarray | int):
    """Spread the low 16 bits of ``n`` so a zero sits between every bit."""
    n = n & 0x0000FFFF
    n = (n | (n << 8)) & 0x00FF00FF
    n = (n | (n << 4)) & 0x0F0F0F0F
    n = (n | (n << 2)) & 0x33333333
    n = (n | (n << 1)) & 0x55555555
    return n


def morton_code(ix: np.ndarray | int, iy: np.ndarray | int):
    """Interleave two 16-bit cell coordinates into a Z-order code."""
    return (_part1by1(iy) << 1) | _part1by1(ix)


def _run_starts(primary: np.ndarray, secondary: np.ndarray) -> np.ndarray:
    """Start indices of runs of equal ``(primary, secondary)`` pairs."""
    if primary.size <= 1:
        return np.zeros(min(primary.size, 1), dtype=np.int64)
    change = (np.diff(primary) != 0) | (np.diff(secondary) != 0)
    return np.concatenate(([0], np.flatnonzero(change) + 1))


@dataclass
class IQuadTreeStats:
    """Counters describing pruning effectiveness (Figs. 7–8 read these)."""

    traversals: int = 0
    leaf_cache_hits: int = 0
    omega_inf_computations: int = 0
    omega_vrf_computations: int = 0
    pairs_is_confirmed: int = 0
    pairs_nir_pruned: int = 0
    pairs_to_verify: int = 0

    @property
    def pairs_total(self) -> int:
        """All (facility, user) relationships the traversals decided on."""
        return self.pairs_is_confirmed + self.pairs_nir_pruned + self.pairs_to_verify

    def reset(self) -> None:
        """Zero all counters."""
        self.traversals = 0
        self.leaf_cache_hits = 0
        self.omega_inf_computations = 0
        self.omega_vrf_computations = 0
        self.pairs_is_confirmed = 0
        self.pairs_nir_pruned = 0
        self.pairs_to_verify = 0


@dataclass
class TraversalResult:
    """Outcome of pruning one abstract facility against all users."""

    influenced: FrozenSet[int]
    to_verify: FrozenSet[int]


class IQuadTree:
    """The Influence Quad-tree over a moving-user population.

    Args:
        users: The user population ``Ω`` to index.
        d_hat: Target leaf diagonal ``d̂`` in km (the paper sweeps 1–2.5).
        tau: Influence threshold.
        pf: Distance-decay probability function.
        region: Spatial extent; must cover all user positions and every
            abstract facility that will be traversed.  Typically
            ``dataset.region``.
        exact_rounded: When ``True`` the NIR rule tests the exact rounded
            square instead of its MBR (``EFGH``), pruning slightly more at
            the cost of a distance computation per position.  The paper
            uses the MBR; the exact variant exists for the ablation bench.
    """

    def __init__(
        self,
        users: Sequence[MovingUser],
        d_hat: float,
        tau: float,
        pf: ProbabilityFunction,
        region: Rect,
        exact_rounded: bool = False,
    ):
        if d_hat <= 0:
            raise IndexError_(f"d_hat must be positive, got {d_hat}")
        if not users:
            raise IndexError_("IQuadTree needs at least one user")
        self.d_hat = d_hat
        self.tau = tau
        self.pf = pf
        self.exact_rounded = exact_rounded
        self.stats = IQuadTreeStats()

        # Square-up the region anchored at its lower-left corner.  A
        # degenerate (single-point) region still gets one d̂-sized leaf.
        side = max(region.width, region.height)
        if side <= 0:
            side = d_hat
        self._x0 = region.min_x
        self._y0 = region.min_y
        self._side = side

        # Depth so the leaf diagonal (side / 2^depth * sqrt(2)) is <= d_hat.
        root_diagonal = side * math.sqrt(2.0)
        self.depth = max(0, math.ceil(math.log2(root_diagonal / d_hat)))
        if self.depth > _MAX_DEPTH:
            raise IndexError_(
                f"d_hat={d_hat} needs tree depth {self.depth} > {_MAX_DEPTH}; "
                "choose a larger leaf diagonal for this region"
            )
        self._grid = 1 << self.depth
        self._cell_side = side / self._grid

        # The eta "Hash": position-count threshold per level, keyed by the
        # level's node diagonal.
        self._eta: List[int] = [
            position_count_threshold_int(tau, pf, side / (1 << level) * math.sqrt(2.0))
            for level in range(self.depth + 1)
        ]

        self.r_max = max(u.r for u in users)
        self.nir = non_influence_radius(tau, self.r_max, pf)
        self.n_users = len(users)

        # Lazily memoised pruning sets (the paper's `visited` flags).
        self._omega_inf: List[Dict[int, FrozenSet[int]]] = [
            {} for _ in range(self.depth + 1)
        ]
        self._omega_vrf: Dict[int, FrozenSet[int]] = {}
        self._leaf_result_cache: Dict[int, TraversalResult] = {}

        self._build(users)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, users: Sequence[MovingUser]) -> None:
        all_pos = np.vstack([u.positions for u in users])
        all_uid = np.repeat(
            np.fromiter((u.uid for u in users), dtype=np.int64, count=len(users)),
            np.fromiter((u.r for u in users), dtype=np.int64, count=len(users)),
        )
        ix = np.clip(
            ((all_pos[:, 0] - self._x0) / self._cell_side).astype(np.int64),
            0,
            self._grid - 1,
        )
        iy = np.clip(
            ((all_pos[:, 1] - self._y0) / self._cell_side).astype(np.int64),
            0,
            self._grid - 1,
        )
        codes = morton_code(ix, iy)
        order = np.lexsort((all_uid, codes))
        # Globally sorted position/uid/code arrays; every node at every
        # level is a contiguous slice of these.
        self._pos = all_pos[order]
        self._uid = all_uid[order]
        self._code = codes[order]

        # Per level: aggregated (node code, uid) runs with position counts,
        # sorted by (code, uid).  The leaf level falls out of the global
        # lexsort; each coarser level aggregates the level below (after
        # truncating codes by two bits, runs of the same user from sibling
        # children must be re-merged, hence the per-level lexsort over the
        # ever-shrinking run arrays).
        self._run_codes: List[np.ndarray] = [np.empty(0)] * (self.depth + 1)
        self._run_uids: List[np.ndarray] = [np.empty(0)] * (self.depth + 1)
        self._run_counts: List[np.ndarray] = [np.empty(0)] * (self.depth + 1)

        starts = _run_starts(self._code, self._uid)
        self._run_codes[self.depth] = self._code[starts]
        self._run_uids[self.depth] = self._uid[starts]
        self._run_counts[self.depth] = np.diff(
            np.concatenate((starts, [self._code.size]))
        )
        # Row-major secondary order: the NIR ring scan slices whole cell
        # rows with two binary searches each instead of visiting cells.
        row_keys = iy * self._grid + ix
        row_order = np.argsort(row_keys, kind="stable")
        self._row_keys = row_keys[row_order]
        self._row_pos = all_pos[row_order]
        self._row_uid = all_uid[row_order]
        for level in range(self.depth - 1, -1, -1):
            child_codes = self._run_codes[level + 1] >> 2
            child_uids = self._run_uids[level + 1]
            child_counts = self._run_counts[level + 1]
            order = np.lexsort((child_uids, child_codes))
            codes = child_codes[order]
            uids = child_uids[order]
            counts = child_counts[order]
            starts = _run_starts(codes, uids)
            self._run_codes[level] = codes[starts]
            self._run_uids[level] = uids[starts]
            self._run_counts[level] = np.add.reduceat(counts, starts)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def leaf_cell_of(self, x: float, y: float) -> _CellKey:
        """Return the leaf cell containing ``(x, y)`` (clamped to the grid)."""
        ix = int((x - self._x0) / self._cell_side)
        iy = int((y - self._y0) / self._cell_side)
        return (
            min(max(ix, 0), self._grid - 1),
            min(max(iy, 0), self._grid - 1),
        )

    def node_rect(self, level: int, ix: int, iy: int) -> Rect:
        """Return the spatial extent of node ``(level, ix, iy)``."""
        side = self._side / (1 << level)
        x0 = self._x0 + ix * side
        y0 = self._y0 + iy * side
        return Rect(x0, y0, x0 + side, y0 + side)

    def _rect_of_code(self, level: int, code: int) -> Rect:
        """Node rect from a Morton code (inverse interleave, scalar path)."""
        ix = iy = 0
        for bit in range(level):
            ix |= ((code >> (2 * bit)) & 1) << bit
            iy |= ((code >> (2 * bit + 1)) & 1) << bit
        return self.node_rect(level, ix, iy)

    def level_diagonal(self, level: int) -> float:
        """Diagonal of nodes at ``level`` (level 0 is the root)."""
        return self._side / (1 << level) * math.sqrt(2.0)

    def eta_for_level(self, level: int) -> int:
        """Position-count threshold ``⌈η⌉`` for nodes at ``level``."""
        return self._eta[level]

    @property
    def leaf_count(self) -> int:
        """Number of non-empty leaf cells."""
        codes = self._run_codes[self.depth]
        if codes.size == 0:
            return 0
        return int(np.count_nonzero(np.diff(codes)) + 1)

    @property
    def node_count(self) -> int:
        """Number of materialised (non-empty) nodes across all levels."""
        total = 0
        for level in range(self.depth + 1):
            codes = self._run_codes[level]
            if codes.size:
                total += int(np.count_nonzero(np.diff(codes)) + 1)
        return total

    # ------------------------------------------------------------------
    # Node slicing
    # ------------------------------------------------------------------
    def _node_slice(self, level: int, code: int) -> Tuple[int, int]:
        """Return the [lo, hi) run-array slice of node ``code`` at ``level``."""
        codes = self._run_codes[level]
        lo = int(np.searchsorted(codes, code, side="left"))
        hi = int(np.searchsorted(codes, code, side="right"))
        return lo, hi

    def _position_slice(self, code: int) -> Tuple[int, int]:
        """Return the [lo, hi) slice of the sorted position array for a leaf."""
        lo = int(np.searchsorted(self._code, code, side="left"))
        hi = int(np.searchsorted(self._code, code, side="right"))
        return lo, hi

    # ------------------------------------------------------------------
    # Pruning-set computation (lazy, memoised — the `visited` flag)
    # ------------------------------------------------------------------
    def _omega_inf_of(self, level: int, code: int) -> FrozenSet[int]:
        cached = self._omega_inf[level].get(code)
        if cached is not None:
            return cached
        eta = self._eta[level]
        if eta >= 2**62:
            result: FrozenSet[int] = frozenset()
        else:
            lo, hi = self._node_slice(level, code)
            counts = self._run_counts[level][lo:hi]
            uids = self._run_uids[level][lo:hi]
            result = frozenset(uids[counts >= eta].tolist())
        self._omega_inf[level][code] = result
        self.stats.omega_inf_computations += 1
        return result

    def _omega_vrf_of(self, leaf_code: int) -> FrozenSet[int]:
        cached = self._omega_vrf.get(leaf_code)
        if cached is not None:
            return cached
        self.stats.omega_vrf_computations += 1
        rect = self._rect_of_code(self.depth, leaf_code)
        if self.exact_rounded:
            shape = RoundedSquare(Square.from_rect(rect), self.nir)
            result = frozenset(self._scan(shape.mbr(), shape))
        else:
            result = frozenset(self._scan(rect.expanded(self.nir), None))
        self._omega_vrf[leaf_code] = result
        return result

    def _scan(self, rect: Rect, shape: RoundedSquare | None) -> set[int]:
        """Collect users with at least one position inside the query region.

        The query rectangle spans a block of leaf-cell rows; in the
        row-major secondary order each row's overlap is one contiguous
        slice found by two binary searches.  All slices are concatenated
        and masked in a single vectorised pass, then reduced to the unique
        user ids.  ``shape`` tightens the rectangle to the exact (convex)
        rounded square when given.
        """
        cell = self._cell_side
        grid = self._grid
        ix0 = max(0, int((rect.min_x - self._x0) / cell))
        iy0 = max(0, int((rect.min_y - self._y0) / cell))
        ix1 = min(grid - 1, int((rect.max_x - self._x0) / cell))
        iy1 = min(grid - 1, int((rect.max_y - self._y0) / cell))
        keys = self._row_keys
        pos_chunks = []
        uid_chunks = []
        for iy in range(iy0, iy1 + 1):
            base = iy * grid
            lo = int(np.searchsorted(keys, base + ix0, side="left"))
            hi = int(np.searchsorted(keys, base + ix1 + 1, side="left"))
            if lo < hi:
                pos_chunks.append(self._row_pos[lo:hi])
                uid_chunks.append(self._row_uid[lo:hi])
        if not pos_chunks:
            return set()
        positions = np.vstack(pos_chunks)
        uids = np.concatenate(uid_chunks)
        mask = (
            rect.contains_mask(positions)
            if shape is None
            else shape.contains_mask(positions)
        )
        if not mask.any():
            return set()
        return set(np.unique(uids[mask]).tolist())

    # ------------------------------------------------------------------
    # Traversal (Algorithm 3)
    # ------------------------------------------------------------------
    def traverse(self, x: float, y: float) -> TraversalResult:
        """Prune all users against an abstract facility at ``(x, y)``.

        Returns the users necessarily influenced (IS rule along the
        root-to-leaf path) and the users needing verification (NIR
        survivors minus the confirmed ones).  Everyone else is certified
        uninfluenced.  Results are cached per leaf, so co-located abstract
        facilities cost one dictionary lookup (the batch-wise property).
        """
        self.stats.traversals += 1
        ix, iy = self.leaf_cell_of(x, y)
        leaf_code = int(morton_code(ix, iy))
        cached = self._leaf_result_cache.get(leaf_code)
        if cached is not None:
            self.stats.leaf_cache_hits += 1
            self._account_pairs(cached)
            return cached
        influenced: set[int] = set()
        for level in range(self.depth, -1, -1):
            influenced |= self._omega_inf_of(
                level, leaf_code >> (2 * (self.depth - level))
            )
        to_verify = self._omega_vrf_of(leaf_code) - influenced
        result = TraversalResult(frozenset(influenced), frozenset(to_verify))
        self._leaf_result_cache[leaf_code] = result
        self._account_pairs(result)
        return result

    def _account_pairs(self, result: TraversalResult) -> None:
        n_is = len(result.influenced)
        n_vrf = len(result.to_verify)
        self.stats.pairs_is_confirmed += n_is
        self.stats.pairs_to_verify += n_vrf
        self.stats.pairs_nir_pruned += self.n_users - n_is - n_vrf

    # ------------------------------------------------------------------
    # Introspection used by tests and benchmarks
    # ------------------------------------------------------------------
    def positions_in_leaf(self, cell: _CellKey) -> Dict[int, np.ndarray]:
        """Return the per-user position arrays stored at a leaf cell."""
        code = int(morton_code(cell[0], cell[1]))
        lo, hi = self._position_slice(code)
        out: Dict[int, np.ndarray] = {}
        uids = self._uid[lo:hi]
        positions = self._pos[lo:hi]
        for uid in np.unique(uids).tolist():
            out[uid] = positions[uids == uid]
        return out

    def describe(self) -> str:
        """One-line structural summary."""
        return (
            f"IQuadTree(depth={self.depth}, grid={self._grid}x{self._grid}, "
            f"leaf_side={self._cell_side:.3f} km, leaves={self.leaf_count}, "
            f"nodes={self.node_count}, NIR={self.nir:.3f} km)"
        )
