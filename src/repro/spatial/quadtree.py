"""A point-region (PR) quad-tree with capacity-based splitting.

The classical Finkel–Bentley structure the paper's IQuad-tree builds on.
This generic variant indexes points with payloads and answers rectangle
range queries; the IQuad-tree in :mod:`repro.spatial.iquadtree` specialises
the decomposition (fixed leaf diagonal, per-node influence bookkeeping),
so the two share the quadrant-splitting discipline but not code — the
IQuad-tree's regular grid admits a much faster array implementation.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from ..exceptions import IndexError_
from ..geo import Point, Rect


class _QuadNode:
    """One quad-tree cell; a leaf until it overflows, then four children."""

    __slots__ = ("rect", "points", "children", "depth")

    def __init__(self, rect: Rect, depth: int):
        self.rect = rect
        self.points: List[Tuple[Point, Any]] | None = []
        self.children: List["_QuadNode"] | None = None
        self.depth = depth

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A PR quad-tree over a fixed bounding region.

    Args:
        region: The spatial extent; inserting a point outside it raises.
        capacity: Leaf capacity before splitting.
        max_depth: Hard depth cap; leaves at the cap hold any overflow
            (guards against unbounded splitting on duplicate points).
    """

    def __init__(self, region: Rect, capacity: int = 16, max_depth: int = 16):
        if capacity < 1:
            raise IndexError_(f"capacity must be >= 1, got {capacity}")
        if max_depth < 1:
            raise IndexError_(f"max_depth must be >= 1, got {max_depth}")
        if region.area <= 0:
            raise IndexError_("quad-tree region must have positive area")
        self.region = region
        self.capacity = capacity
        self.max_depth = max_depth
        self._root = _QuadNode(region, depth=0)
        self._count = 0

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, point: Point, item: Any = None) -> None:
        """Insert a payload at ``point``; the point must lie in the region."""
        if not self.region.contains_point(point):
            raise IndexError_(f"point {point} outside quad-tree region")
        node = self._descend(point)
        assert node.points is not None
        node.points.append((point, item))
        self._count += 1
        if len(node.points) > self.capacity and node.depth < self.max_depth:
            self._split(node)

    def _descend(self, point: Point) -> _QuadNode:
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, point)
        return node

    @staticmethod
    def _child_for(node: _QuadNode, point: Point) -> _QuadNode:
        assert node.children is not None
        cx, cy = node.rect.center.x, node.rect.center.y
        index = (1 if point.x > cx else 0) | (2 if point.y > cy else 0)
        return node.children[index]

    def _split(self, node: _QuadNode) -> None:
        r = node.rect
        cx, cy = r.center.x, r.center.y
        node.children = [
            _QuadNode(Rect(r.min_x, r.min_y, cx, cy), node.depth + 1),  # SW
            _QuadNode(Rect(cx, r.min_y, r.max_x, cy), node.depth + 1),  # SE
            _QuadNode(Rect(r.min_x, cy, cx, r.max_y), node.depth + 1),  # NW
            _QuadNode(Rect(cx, cy, r.max_x, r.max_y), node.depth + 1),  # NE
        ]
        points = node.points
        node.points = None
        assert points is not None
        for p, item in points:
            child = self._child_for(node, p)
            assert child.points is not None
            child.points.append((p, item))
        # Cascade splits for children that are themselves over capacity
        # (happens when all points fall in one quadrant).
        for child in node.children:
            if (
                child.points is not None
                and len(child.points) > self.capacity
                and child.depth < self.max_depth
            ):
                self._split(child)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, rect: Rect) -> List[Any]:
        """Return payloads of all points inside ``rect``."""
        return [item for _, item in self.iter_range(rect)]

    def iter_range(self, rect: Rect) -> Iterator[Tuple[Point, Any]]:
        """Iterate ``(point, payload)`` pairs inside ``rect``."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.rect.intersects(rect):
                continue
            if node.is_leaf:
                assert node.points is not None
                for p, item in node.points:
                    if rect.contains_point(p):
                        yield p, item
            else:
                assert node.children is not None
                stack.extend(node.children)

    def nearest(self, point: Point, k: int = 1) -> List[Any]:
        """Return the ``k`` payloads nearest to ``point`` (best-first)."""
        import heapq
        import itertools

        if k < 1:
            raise IndexError_(f"k must be >= 1, got {k}")
        heap: List[Tuple[float, int, object]] = []
        tie = itertools.count()
        heapq.heappush(heap, (0.0, next(tie), self._root))
        out: List[Any] = []
        while heap and len(out) < k:
            dist, _, obj = heapq.heappop(heap)
            if isinstance(obj, _QuadNode):
                if obj.is_leaf:
                    assert obj.points is not None
                    for p, item in obj.points:
                        heapq.heappush(
                            heap, (point.distance_to(p), next(tie), (p, item))
                        )
                else:
                    assert obj.children is not None
                    for child in obj.children:
                        heapq.heappush(
                            heap,
                            (
                                child.rect.min_distance_to_point(point),
                                next(tie),
                                child,
                            ),
                        )
            else:  # a (point, item) pair whose distance is exact and minimal
                out.append(obj[1])
        return out

    def depth(self) -> int:
        """Return the maximum leaf depth actually reached."""
        best = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                best = max(best, node.depth)
            else:
                assert node.children is not None
                stack.extend(node.children)
        return best

    def leaf_count(self) -> int:
        """Return the number of leaf cells."""
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                count += 1
            else:
                assert node.children is not None
                stack.extend(node.children)
        return count
