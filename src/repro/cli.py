"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve``    — solve one MC²LS instance and print the selection.
* ``compare``  — run all four algorithms on one instance, check they
  agree, and print the runtime/work comparison.
* ``compete``  — play a two-player best-response round (leader solve,
  rival best response, erosion accounting, leader re-solve).
* ``serve``    — run a what-if query batch through the serving engine
  and print per-query cache provenance plus engine stats.
* ``stats``    — print the distribution statistics of a dataset.
* ``generate`` — write a synthetic SNAP-format check-in file.
* ``record``   — record a canned workload trace (JSONL) against a live
  engine for later replay/tuning.
* ``replay``   — replay a recorded trace under any engine config and
  print the latency/cache report (optionally verifying that replayed
  selections match the recording).
* ``tune``     — search the serving knob space against a recorded trace
  (cost-model screening + measured replay) and emit the recommended
  config as JSON.

Datasets are either the calibrated synthetic populations (``--dataset c``
/ ``--dataset n``) or a real SNAP check-in dump (``--checkins FILE``).
``solve`` and ``compare`` accept ``--no-batch-verify`` /
``--no-fast-select`` to fall back to the scalar verification and
selection kernels (the ablation knobs, otherwise on by default).

``solve`` / ``compare`` / ``serve`` / ``compete`` accept
``--capture-model`` to swap the customer-choice capture model (the
paper's ``evenly-split`` by default; ``huff``, ``mnl``, ``fixed-worlds``
via :mod:`repro.capture`), plus its parameters ``--mnl-beta``,
``--worlds``, ``--world-seed`` and ``--huff-utility``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .bench.reporting import format_table
from .data import california_like, compute_stats, load_checkins, new_york_like
from .entities import SpatialDataset
from .capture import CaptureSpec
from .exceptions import ReproError
from .influence import paper_default_pf
from .solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
    Solver,
)

_SOLVERS = {
    "baseline": lambda bv, fs: BaselineGreedySolver(batch_verify=bv, fast_select=fs),
    "k-cifp": lambda bv, fs: AdaptedKCIFPSolver(fast_select=fs),
    "iqt": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT, batch_verify=bv, fast_select=fs
    ),
    "iqt-c": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT_C, batch_verify=bv, fast_select=fs
    ),
    "iqt-pino": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT_PINO, batch_verify=bv, fast_select=fs
    ),
}


def _make_solver(name: str, args: argparse.Namespace) -> Solver:
    return _SOLVERS[name](not args.no_batch_verify, not args.no_fast_select)


def _kernel_label(solver: Solver) -> str:
    """Which optimised kernels a solver instance has active."""
    parts = []
    if getattr(solver, "batch_verify", False):
        parts.append("batch-verify")
    if getattr(solver, "fast_select", False):
        parts.append("csr-select")
    return "+".join(parts) if parts else "scalar"


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-batch-verify", action="store_true",
        help="verify influence pairs with the scalar loop instead of the "
             "batched kernel (results are identical)")
    parser.add_argument(
        "--no-fast-select", action="store_true",
        help="run the greedy phase with the scalar loop instead of the "
             "vectorized CSR kernel (results are identical)")


def _add_capture_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--capture-model", default="evenly-split", metavar="MODEL",
        help="customer-choice capture model: evenly-split (paper default), "
             "huff, mnl, or fixed-worlds; unknown names list the registry")
    parser.add_argument(
        "--mnl-beta", type=float, default=1.0, metavar="B",
        help="choice sharpness for mnl / fixed-worlds (default: 1.0)")
    parser.add_argument(
        "--worlds", type=int, default=32, metavar="W",
        help="sampled worlds for fixed-worlds, at most 64 (default: 32)")
    parser.add_argument(
        "--world-seed", type=int, default=0, metavar="S",
        help="world seed for fixed-worlds; results are deterministic "
             "per seed (default: 0)")
    parser.add_argument(
        "--huff-utility", type=float, default=0.5, metavar="U",
        help="new-candidate utility for huff (default: 0.5)")


def _capture_spec(args: argparse.Namespace) -> CaptureSpec:
    """The query/problem capture spec named by the CLI flags.

    Unknown model names raise
    :class:`~repro.exceptions.CaptureError` (a :class:`ReproError`)
    listing every registered model, which ``main`` renders as the
    actionable CLI error.
    """
    return CaptureSpec(
        model=args.capture_model,
        mnl_beta=args.mnl_beta,
        worlds=args.worlds,
        world_seed=args.world_seed,
        huff_utility=args.huff_utility,
    )


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", choices=("c", "n"), default="c",
                        help="calibrated synthetic population (default: c)")
    parser.add_argument("--checkins", metavar="FILE",
                        help="SNAP-format check-in file instead of synthetic data")
    parser.add_argument("--users", type=int, default=800,
                        help="synthetic user count (default: 800)")
    parser.add_argument("--candidates", type=int, default=60)
    parser.add_argument("--facilities", type=int, default=120)
    parser.add_argument("--seed", type=int, default=0)


def _build_dataset(args: argparse.Namespace) -> SpatialDataset:
    if args.checkins:
        data = load_checkins(args.checkins)
        return data.dataset(args.candidates, args.facilities, seed=args.seed)
    maker = california_like if args.dataset == "c" else new_york_like
    return maker(
        n_users=args.users,
        n_candidates=args.candidates,
        n_facilities=args.facilities,
        seed=args.seed,
    )


def _cmd_solve(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    spec = _capture_spec(args)
    problem = MC2LSProblem(
        dataset,
        k=args.k,
        tau=args.tau,
        capture=None if spec.is_default else spec.build(
            dataset, paper_default_pf()
        ),
    )
    solver: Solver = _make_solver(args.solver, args)
    result = solver.solve(problem)
    print(dataset.describe())
    print(f"kernels: {_kernel_label(solver)}   capture: {spec.model}")
    rows = [
        {
            "round": i + 1,
            "candidate": cid,
            "marginal_gain": gain,
            "users_covered": len(result.table.omega_c.get(cid, ())),
        }
        for i, (cid, gain) in enumerate(zip(result.selected, result.gains))
    ]
    print(format_table(rows))
    print(f"\ncinf(G) = {result.objective:.4f}   "
          f"solver = {solver.name}   time = {result.total_time * 1e3:.1f} ms")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    spec = _capture_spec(args)
    problem = MC2LSProblem(
        dataset,
        k=args.k,
        tau=args.tau,
        capture=None if spec.is_default else spec.build(
            dataset, paper_default_pf()
        ),
    )
    print(dataset.describe())
    print(f"capture: {spec.model}")
    rows = []
    reference = None
    for name in _SOLVERS:
        if name == "baseline" and args.skip_baseline:
            continue
        solver = _make_solver(name, args)
        result = solver.solve(problem)
        if reference is None:
            reference = result.selected
        agree = "yes" if result.selected == reference else "NO"
        rows.append(
            {
                "solver": name,
                "kernels": _kernel_label(solver),
                "time_s": result.total_time,
                "evaluations": result.evaluation.total_evaluations,
                "positions_touched": result.evaluation.positions_touched,
                "objective": result.objective,
                "agrees": agree,
            }
        )
    print(format_table(rows))
    if any(r["agrees"] == "NO" for r in rows):
        print("\nERROR: solvers disagree", file=sys.stderr)
        return 1
    return 0


def _churn_session(session, n_moves: int, seed: int) -> None:
    """Jitter ``n_moves`` users' position histories in a streaming session.

    Delegates to :func:`repro.tuning.jitter_users` so ``serve --churn``
    and recorded-trace publishes share one deterministic churn function.
    """
    from .tuning import jitter_users

    jitter_users(session, n_moves, seed)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import SelectionEngine, SelectionQuery

    dataset = _build_dataset(args)
    spec = _capture_spec(args)
    taus = [float(t) for t in args.taus.split(",") if t]
    ks = list(range(1, args.k_max + 1))
    queries = [
        SelectionQuery(
            k=k,
            tau=tau,
            solver=args.solver,
            batch_verify=not args.no_batch_verify,
            fast_select=not args.no_fast_select,
            capture=None if spec.is_default else spec,
        )
        for tau in taus
        for k in ks
    ]
    session = None
    first: object = dataset
    if args.churn:
        from .streaming import StreamingMC2LS

        session = StreamingMC2LS.from_dataset(dataset, k=max(ks))
        first = session.snapshot()
    with SelectionEngine(
        first,
        max_workers=args.threads,
        incremental=not args.no_incremental,
        execution=args.execution,
        shard_workers=args.shard_workers,
    ) as engine:
        print(engine.snapshot().describe())
        mode = args.execution
        if mode == "sharded":
            mode += f" ({args.shard_workers} worker processes)"
        print(f"{len(queries)} queries x {args.repeat} passes "
              f"on {args.threads} worker thread(s), execution={mode}\n")
        rows = []
        for pass_no in range(1, args.repeat + 1):
            republish = 0.0
            if session is not None and pass_no > 1:
                t0 = time.perf_counter()
                _churn_session(session, args.churn, seed=args.seed + pass_no)
                engine.publish(session.snapshot())
                republish = time.perf_counter() - t0
            t0 = time.perf_counter()
            handles = [engine.submit(q) for q in queries]
            results = [h.result() for h in handles]
            elapsed = time.perf_counter() - t0
            hits = sum(1 for r in results if r.stats.result_cache == "hit")
            rows.append(
                {
                    "pass": pass_no,
                    "queries": len(results),
                    "result_hits": hits,
                    "republish_s": republish,
                    "wall_s": elapsed,
                    "qps": len(results) / elapsed if elapsed > 0 else float("inf"),
                }
            )
        print(format_table(rows))
        stats = engine.stats()
        for cache in ("prepared_cache", "result_cache"):
            c = stats[cache]
            print(f"\n{cache}: {c['hits']} hits / {c['misses']} misses "
                  f"(hit rate {c['hit_rate']:.1%}), {c['evictions']} evictions")
        inc = stats["incremental"]
        print(f"\nincremental republish: enabled={inc['enabled']} "
              f"patched={inc['patched']} skipped={inc['skipped']} "
              f"failed={inc['failed']}")
        sharded = stats["sharded"]
        if sharded["execution"] == "sharded":
            print(f"sharded execution: workers={sharded['workers']} "
                  f"queries={sharded['queries']} "
                  f"fallbacks={sharded['fallbacks']} "
                  f"failures={sharded['failures']} "
                  f"capture_fallbacks={sharded['capture_fallbacks']} "
                  f"(supported: {', '.join(sharded['capture_supported'])})")
    return 0


def _cmd_compete(args: argparse.Namespace) -> int:
    from .capture import best_response_round

    dataset = _build_dataset(args)
    spec = _capture_spec(args)
    pf = paper_default_pf()
    solver: Solver = _make_solver(args.solver, args)
    resolved = solver.resolve(dataset, args.tau, pf)
    model = spec.build(dataset, pf)
    report = best_response_round(
        resolved.table,
        [c.fid for c in dataset.candidates],
        args.k,
        model,
        k_rival=args.k_rival,
        fast=not args.no_fast_select,
    )
    print(dataset.describe())
    print(f"capture: {spec.model}   solver: {solver.name}   "
          f"k = {args.k}   k_rival = {args.k_rival or args.k}\n")
    rows = [
        {"phase": "leader (uncontested)",
         "selected": ",".join(map(str, report.leader_initial)),
         "objective": report.leader_objective},
        {"phase": "rival best response",
         "selected": ",".join(map(str, report.rival_selected)),
         "objective": report.rival_objective},
        {"phase": "leader (eroded)",
         "selected": ",".join(map(str, report.leader_initial)),
         "objective": report.eroded_objective},
        {"phase": "leader (re-solved)",
         "selected": ",".join(map(str, report.leader_adapted)),
         "objective": report.adapted_objective},
    ]
    print(format_table(rows))
    print(f"\ncapture erosion = {report.erosion:.4f} "
          f"({report.erosion_fraction:.1%} of uncontested)   "
          f"recovered by re-solving = {report.recovered:.4f}")
    return 0


def _cmd_record(args: argparse.Namespace) -> int:
    from .tuning import record_canned

    trace = record_canned(
        args.workload,
        args.out,
        n_users=args.users,
        n_candidates=args.candidates,
        n_facilities=args.facilities,
        seed=args.seed,
        solver=args.solver,
    )
    n_queries = sum(1 for _ in trace.query_events())
    print(f"recorded {args.workload!r}: {len(trace)} events "
          f"({n_queries} queries) -> {args.out}")
    return 0


def _load_engine_config(path: Optional[str]):
    import json

    from .exceptions import TuningError
    from .tuning import EngineConfig

    if not path:
        return EngineConfig()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            spec = json.load(fh)
    except (OSError, ValueError) as exc:
        raise TuningError(f"cannot read engine config {path}: {exc}") from exc
    # Accept both a bare config and the tuner's recommendation output.
    if "recommended" in spec:
        spec = spec["recommended"]
    return EngineConfig.from_dict(spec)


def _cmd_replay(args: argparse.Namespace) -> int:
    from .tuning import TraceReplayer, WorkloadTrace

    trace = WorkloadTrace.load(args.trace)
    config = _load_engine_config(args.config)
    report = TraceReplayer(trace).replay(config, pacing=args.pacing)
    summary = report.as_dict()
    rows = [{k: summary[k] for k in
             ("queries", "ok", "p50_s", "p95_s", "mean_s",
              "result_hits", "prepared_hits", "wall_s")}]
    print(f"trace {trace.name!r} replayed with pacing={args.pacing} "
          f"(exact={config.exact})")
    print(format_table(rows))
    if args.check:
        mismatches = report.selection_mismatches(trace)
        if mismatches:
            print(f"\nERROR: {mismatches} replayed selections differ from "
                  f"the recording", file=sys.stderr)
            return 1
        print("\nall replayed selections match the recording")
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json

    from .tuning import CostModel, KnobTuner, WorkloadTrace

    trace = WorkloadTrace.load(args.trace)
    cost_model = CostModel.calibrate(repeats=args.calibrate_repeats)
    tuner = KnobTuner(trace, cost_model=cost_model)
    recommendation = tuner.tune(validate_top=args.validate_top)
    payload = recommendation.as_dict()
    text = json.dumps(payload, indent=2)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote recommendation to {args.out}")
    print(text)
    print(f"\nmeasured P50 speedup over defaults: "
          f"{recommendation.speedup_p50:.2f}x "
          f"({payload['candidates_scored']} configs screened)",
          file=sys.stderr)
    return 0


def _campaign_spec(name_or_path: str):
    from .campaign import CampaignSpec, get_spec

    if name_or_path.endswith(".json"):
        return CampaignSpec.from_json(name_or_path)
    return get_spec(name_or_path)


def _campaign_store(args: argparse.Namespace, spec):
    from pathlib import Path

    from .campaign import ResultStore

    return ResultStore(Path(args.store) / spec.name)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import CampaignRunner

    spec = _campaign_spec(args.spec)
    store = _campaign_store(args, spec)
    runner = CampaignRunner(
        spec, store, workers=args.workers, timeout_s=args.timeout
    )
    report = runner.run(resume=not args.no_resume, progress=print)
    print(f"\ncampaign {spec.name!r}: {report.executed} executed, "
          f"{report.cached} cached, {len(report.failed)} failed "
          f"of {report.total} points in {report.wall_s:.1f}s "
          f"(store: {store.root})")
    return 0 if report.ok else 1


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    from .campaign import Aggregator

    spec = _campaign_spec(args.spec)
    store = _campaign_store(args, spec)
    agg = Aggregator(spec, store)
    completion = agg.completion()
    rows = []
    for grid in spec.grids:
        counts = completion[grid.name]
        rows.append({
            "grid": grid.name,
            "points": counts["total"],
            "complete": counts["complete"],
            "missing": counts["total"] - counts["complete"],
            "pct": (counts["complete"] / counts["total"] * 100.0
                    if counts["total"] else 100.0),
        })
    total = sum(r["points"] for r in rows)
    complete = sum(r["complete"] for r in rows)
    print(f"campaign {spec.name!r} at {store.root}:")
    print(format_table(rows))
    print(f"\n{complete}/{total} points complete")
    if args.list_missing:
        for grid_name, key in agg.missing_keys():
            print(f"missing  {grid_name}  {key}")
    return 0 if complete == total else 1


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    from .campaign import Aggregator

    spec = _campaign_spec(args.spec)
    store = _campaign_store(args, spec)
    rendered = Aggregator(spec, store).report(
        results_dir=args.results_dir, svg=not args.no_svg
    )
    if not rendered:
        print("no completed points to report; run `campaign run` first",
              file=sys.stderr)
        return 1
    for grid_name, table in rendered.items():
        print(f"\n== {grid_name} ==")
        print(table)
    print(f"\nwrote {len(rendered)} table(s) to {args.results_dir}")
    return 0


def _cmd_campaign_clean(args: argparse.Namespace) -> int:
    spec = _campaign_spec(args.spec)
    store = _campaign_store(args, spec)
    dropped = store.clean()
    print(f"dropped {dropped} stored point(s) from {store.root}")
    return 0


def _cmd_campaign_smoke(args: argparse.Namespace) -> int:
    """Run the smoke grid twice; the second pass must be pure cache."""
    import tempfile
    from pathlib import Path

    from .campaign import CampaignRunner, ResultStore, smoke_spec

    spec = smoke_spec()
    if args.store:
        root = Path(args.store) / spec.name
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-campaign-smoke-")
        root = Path(cleanup.name) / spec.name
    try:
        store = ResultStore(root)
        store.clean()
        first = CampaignRunner(spec, store, workers=args.workers).run(
            progress=print
        )
        second = CampaignRunner(spec, store, workers=args.workers).run(
            progress=print
        )
        print(f"first pass: {first.executed} executed / {first.total} points; "
              f"second pass: {second.cached} cached, "
              f"{second.executed} executed")
        if not first.ok or first.executed != first.total:
            print("ERROR: first smoke pass did not execute every point",
                  file=sys.stderr)
            return 1
        if second.executed != 0 or second.cached != first.total:
            print("ERROR: second smoke pass was not 100% cache hits",
                  file=sys.stderr)
            return 1
        print("campaign smoke ok: second pass was 100% cache hits")
        return 0
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    print(format_table([compute_stats(dataset).as_row()]))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .data.io import write_checkin_file

    n = write_checkin_file(
        args.output, n_users=args.users, seed=args.seed, clustered=args.dataset == "n"
    )
    print(f"wrote {n} check-ins to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MC2LS: collective location selection in competition",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one instance")
    _add_dataset_args(solve)
    _add_kernel_args(solve)
    solve.add_argument("--k", type=int, default=5)
    solve.add_argument("--tau", type=float, default=0.7)
    solve.add_argument("--solver", choices=sorted(_SOLVERS), default="iqt")
    _add_capture_args(solve)
    solve.set_defaults(func=_cmd_solve)

    compare = sub.add_parser("compare", help="run all algorithms and compare")
    _add_dataset_args(compare)
    _add_kernel_args(compare)
    compare.add_argument("--k", type=int, default=5)
    compare.add_argument("--tau", type=float, default=0.7)
    compare.add_argument("--skip-baseline", action="store_true",
                         help="skip the slow exhaustive baseline")
    _add_capture_args(compare)
    compare.set_defaults(func=_cmd_compare)

    serve = sub.add_parser(
        "serve", help="run a what-if query batch through the serving engine")
    _add_dataset_args(serve)
    _add_kernel_args(serve)
    serve.add_argument("--solver", choices=sorted(_SOLVERS), default="iqt")
    serve.add_argument("--k-max", type=int, default=8,
                       help="queries sweep k = 1 .. k-max (default: 8)")
    serve.add_argument("--taus", default="0.6,0.7",
                       help="comma-separated tau values (default: 0.6,0.7)")
    serve.add_argument("--threads", type=int, default=2,
                       help="scheduler worker threads (default: 2)")
    serve.add_argument("--repeat", type=int, default=2,
                       help="passes over the query batch; later passes "
                            "exercise the warm caches (default: 2)")
    serve.add_argument("--churn", type=int, default=0, metavar="N",
                       help="move N users and republish between passes "
                            "(streaming write traffic; default: 0)")
    serve.add_argument("--no-incremental", action="store_true",
                       help="drop prepared instances on republish instead "
                            "of delta-patching them (ablation; results are "
                            "identical)")
    serve.add_argument("--execution", choices=("threaded", "sharded"),
                       default="threaded",
                       help="run kernels in-process (threaded) or fan "
                            "resolve+select out over worker processes "
                            "with shared-memory arrays (sharded; results "
                            "are bit-identical)")
    serve.add_argument("--shard-workers", type=int, default=2, metavar="N",
                       help="worker processes for --execution sharded; "
                            "N < 2 falls back to the in-process path "
                            "(default: 2)")
    _add_capture_args(serve)
    serve.set_defaults(func=_cmd_serve)

    compete = sub.add_parser(
        "compete",
        help="two-player best-response round: leader, rival, erosion")
    _add_dataset_args(compete)
    _add_kernel_args(compete)
    compete.add_argument("--k", type=int, default=5,
                         help="leader cardinality (default: 5)")
    compete.add_argument("--k-rival", type=int, default=None, metavar="K",
                         help="rival cardinality (default: same as --k)")
    compete.add_argument("--tau", type=float, default=0.7)
    compete.add_argument("--solver", choices=sorted(_SOLVERS), default="iqt")
    _add_capture_args(compete)
    compete.set_defaults(func=_cmd_compete)

    record = sub.add_parser(
        "record", help="record a canned workload trace for replay/tuning")
    record.add_argument("workload", choices=("bursty", "churn", "cold-start"),
                        help="canned workload: bursty what-if sweep, "
                             "streaming churn, or cold-start storm")
    record.add_argument("--out", required=True, metavar="FILE",
                        help="output trace path (JSONL)")
    record.add_argument("--users", type=int, default=160,
                        help="synthetic user count (default: 160)")
    record.add_argument("--candidates", type=int, default=20)
    record.add_argument("--facilities", type=int, default=40)
    record.add_argument("--seed", type=int, default=0)
    record.add_argument("--solver", choices=sorted(_SOLVERS), default="iqt")
    record.set_defaults(func=_cmd_record)

    replay = sub.add_parser(
        "replay", help="replay a recorded trace under an engine config")
    replay.add_argument("--trace", required=True, metavar="FILE",
                        help="recorded trace (JSONL, from `record`)")
    replay.add_argument("--config", metavar="FILE",
                        help="engine config JSON (accepts `tune` output; "
                             "default: all engine defaults)")
    replay.add_argument("--pacing", choices=("asap", "open-loop"),
                        default="asap",
                        help="asap = sequential deterministic replay; "
                             "open-loop = submit at recorded arrival offsets "
                             "(default: asap)")
    replay.add_argument("--check", action="store_true",
                        help="fail unless every replayed selection matches "
                             "the recording")
    replay.set_defaults(func=_cmd_replay)

    tune = sub.add_parser(
        "tune", help="recommend engine knobs for a recorded trace")
    tune.add_argument("--trace", required=True, metavar="FILE",
                      help="recorded trace to optimise for")
    tune.add_argument("--out", metavar="FILE",
                      help="also write the recommendation JSON here")
    tune.add_argument("--validate-top", type=int, default=2, metavar="N",
                      help="replay the N best predicted configs plus the "
                           "baseline to confirm (default: 2)")
    tune.add_argument("--calibrate-repeats", type=int, default=2, metavar="N",
                      help="timing repeats per cost-model calibration point "
                           "(default: 2)")
    tune.set_defaults(func=_cmd_tune)

    campaign = sub.add_parser(
        "campaign",
        help="declarative grid sweeps: memoized, resumable experiment runs")
    campaign_sub = campaign.add_subparsers(dest="action", required=True)

    def _campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--spec", default="smoke", metavar="NAME|FILE",
                       help="shipped campaign name (fig-runtime-sweep, "
                            "capture-duel, smoke) or a spec JSON path "
                            "(default: smoke)")
        p.add_argument("--store", default="campaigns", metavar="DIR",
                       help="store root; points live under "
                            "DIR/<campaign-name>/ (default: campaigns)")

    c_run = campaign_sub.add_parser(
        "run", help="execute every point missing from the store")
    _campaign_common(c_run)
    c_run.add_argument("--workers", type=int, default=0, metavar="N",
                       help="worker processes; 0 runs points inline "
                            "(default: 0)")
    c_run.add_argument("--no-resume", action="store_true",
                       help="re-execute every point, overwriting stored "
                            "records (resume is the default)")
    c_run.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-point timeout in seconds (workers >= 1 "
                            "only); overrides grid timeouts")
    c_run.set_defaults(func=_cmd_campaign_run)

    c_status = campaign_sub.add_parser(
        "status", help="per-grid completion counts (exit 1 if incomplete)")
    _campaign_common(c_status)
    c_status.add_argument("--list-missing", action="store_true",
                          help="also print every missing point key")
    c_status.set_defaults(func=_cmd_campaign_status)

    c_report = campaign_sub.add_parser(
        "report", help="aggregate stored points into row tables + SVGs")
    _campaign_common(c_report)
    c_report.add_argument("--results-dir", default="benchmarks/results",
                          metavar="DIR",
                          help="where tables/figures land "
                               "(default: benchmarks/results)")
    c_report.add_argument("--no-svg", action="store_true",
                          help="skip SVG chart rendering")
    c_report.set_defaults(func=_cmd_campaign_report)

    c_clean = campaign_sub.add_parser(
        "clean", help="drop every stored point for the campaign")
    _campaign_common(c_clean)
    c_clean.set_defaults(func=_cmd_campaign_clean)

    c_smoke = campaign_sub.add_parser(
        "smoke",
        help="CI check: run the tiny smoke grid twice, assert the second "
             "pass is 100%% cache hits")
    c_smoke.add_argument("--store", default=None, metavar="DIR",
                         help="persist the smoke store here instead of a "
                              "temporary directory")
    c_smoke.add_argument("--workers", type=int, default=0, metavar="N")
    c_smoke.set_defaults(func=_cmd_campaign_smoke)

    stats = sub.add_parser("stats", help="dataset distribution statistics")
    _add_dataset_args(stats)
    stats.set_defaults(func=_cmd_stats)

    generate = sub.add_parser("generate", help="write a synthetic check-in file")
    _add_dataset_args(generate)
    generate.add_argument("output", help="output path (SNAP check-in format)")
    generate.set_defaults(func=_cmd_generate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
