"""Competition layer: evenly-split model (paper) and extensions."""

from .evenly_split import cinf_candidate, cinf_group, cinf_user, covered_users
from .models import CompetitionModel, DistanceWeightedModel, EvenlySplitModel
from .table import InfluenceTable

__all__ = [
    "CompetitionModel",
    "DistanceWeightedModel",
    "EvenlySplitModel",
    "InfluenceTable",
    "cinf_candidate",
    "cinf_group",
    "cinf_user",
    "covered_users",
]
