"""Influence relationship tables shared by the competition model and solvers.

Once the (expensive) influence relationships are resolved, every solver
works off the same two mappings:

* ``omega_c`` — for each candidate id, the set of user ids it influences
  (the paper's ``Ω_c``).
* ``f_o`` — for each user id, the set of existing-facility ids that
  influence it (the paper's ``F_o``).

:class:`InfluenceTable` packages the two with consistency checks and the
bookkeeping queries (candidate coverage, per-user competitor counts) that
the greedy phase needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Set

from ..exceptions import SolverError


@dataclass
class InfluenceTable:
    """Resolved influence relationships of one MC²LS instance.

    Attributes:
        omega_c: ``candidate id -> set of influenced user ids`` (``Ω_c``).
        f_o: ``user id -> set of competing facility ids`` (``F_o``).  Users
            that appear in no candidate's ``Ω_c`` may be omitted: the
            competitive influence of a candidate only ever reads ``F_o`` for
            users it influences (Algorithm 1, line 10 optimisation).
    """

    omega_c: Dict[int, Set[int]] = field(default_factory=dict)
    f_o: Dict[int, Set[int]] = field(default_factory=dict)

    def competitor_count(self, uid: int) -> int:
        """Return ``|F_o|`` for a user (0 when untracked)."""
        fo = self.f_o.get(uid)
        return len(fo) if fo else 0

    def influenced_users(self) -> FrozenSet[int]:
        """Return ``Ω_C`` — users influenced by at least one candidate."""
        out: Set[int] = set()
        for users in self.omega_c.values():
            out |= users
        return frozenset(out)

    def restricted(self, candidate_ids: Set[int]) -> "InfluenceTable":
        """A view limited to a candidate subset (user sets are shared).

        The serving engine answers candidate-mask queries by restricting
        the fully resolved table instead of re-resolving: dropping a
        candidate's ``Ω_c`` row changes no other row and no ``F_o``
        entry, so greedy selection over the restricted view is identical
        to solving the instance whose candidate set *is* the subset.
        The returned table shares the underlying sets — treat it as
        read-only.
        """
        return InfluenceTable(
            {cid: users for cid, users in self.omega_c.items()
             if cid in candidate_ids},
            self.f_o,
        )

    def validate_against(self, candidate_ids: Set[int]) -> None:
        """Check every tracked candidate id is a known candidate."""
        unknown = set(self.omega_c) - candidate_ids
        if unknown:
            raise SolverError(f"influence table references unknown candidates {unknown}")

    @staticmethod
    def from_mappings(
        omega_c: Mapping[int, Set[int]], f_o: Mapping[int, Set[int]]
    ) -> "InfluenceTable":
        """Build a table from plain mappings (copies are taken)."""
        return InfluenceTable(
            {cid: set(users) for cid, users in omega_c.items()},
            {uid: set(fids) for uid, fids in f_o.items()},
        )
