"""The evenly-split competition model (Definitions 3–6 of the paper).

Every facility (existing or newly selected) that influences a user captures
an equal share of that user's demand.  A candidate ``c`` influencing user
``o`` therefore captures ``cinf(c, o) = 1 / (|F_o| + 1)``, and a candidate
*set* ``G`` captures each influenced user exactly once:
``cinf(G) = Σ_{o ∈ Ω_G} 1 / (|F_o| + 1)``.
"""

from __future__ import annotations

import math
from typing import Iterable, Set

from .table import InfluenceTable


def cinf_user(table: InfluenceTable, uid: int) -> float:
    """Return ``cinf(c, o) = 1 / (|F_o| + 1)`` for any candidate influencing ``o``.

    Under the evenly-split model the captured share depends only on the
    user's competitor count, not on which candidate captures it.
    """
    return 1.0 / (table.competitor_count(uid) + 1)


def cinf_candidate(table: InfluenceTable, cid: int, excluded: Set[int] | None = None) -> float:
    """Return ``cinf(c)`` — Definition 4 — optionally over ``Ω_c \\ excluded``.

    ``excluded`` carries the users already captured by previously selected
    candidates; passing it implements the greedy marginal-gain computation
    without mutating the table.
    """
    users = table.omega_c.get(cid)
    if not users:
        return 0.0
    if excluded:
        users = users - excluded
    # fsum: correctly rounded, hence independent of set iteration order —
    # solvers building equal sets in different orders must tie exactly.
    return math.fsum(1.0 / (table.competitor_count(uid) + 1) for uid in users)


def cinf_group(table: InfluenceTable, cids: Iterable[int]) -> float:
    """Return ``cinf(G)`` — Definition 6 — for a set of candidate ids.

    Users influenced by several selected candidates are counted once, which
    is exactly the "no overlapping accumulation" semantics of Definition 6.
    """
    covered: Set[int] = set()
    for cid in cids:
        covered |= table.omega_c.get(cid, set())
    return math.fsum(1.0 / (table.competitor_count(uid) + 1) for uid in covered)


def covered_users(table: InfluenceTable, cids: Iterable[int]) -> Set[int]:
    """Return ``Ω_G`` — Definition 5 — for a set of candidate ids."""
    covered: Set[int] = set()
    for cid in cids:
        covered |= table.omega_c.get(cid, set())
    return covered
