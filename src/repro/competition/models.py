"""Pluggable competition models.

The paper commits to the evenly-split model (Revelle's "sphere of
influence"; Aboolian et al.; Plastria).  For ablation we also provide a
distance-weighted (Huff-style) split in which nearer facilities capture a
proportionally larger share of a contested user.  All models expose the
same interface: the share of user ``o`` a *new* candidate would capture
given the user's competitor context.

The solvers are written against :class:`CompetitionModel`, with
:class:`EvenlySplitModel` as the default, so swapping models changes only
the objective weighting — the pruning and greedy machinery is unaffected
(both models are monotone submodular in the selected set, because a user's
weight does not depend on which or how many *candidates* cover it).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Set

import numpy as np

from ..entities import AbstractFacility, MovingUser
from ..influence import ProbabilityFunction
from .table import InfluenceTable


class CompetitionModel(ABC):
    """Maps a user's competitor context to the share a candidate captures."""

    @abstractmethod
    def user_share(self, table: InfluenceTable, uid: int) -> float:
        """Share of user ``uid`` captured by any one covering candidate."""

    def group_value(self, table: InfluenceTable, cids: Iterable[int]) -> float:
        """Objective value ``cinf(G)`` of a candidate-id set under this model.

        Scalar, set-walking reference path — kept as the differential-test
        oracle.  Hot reporting call sites use the bit-equal vectorized
        :func:`~repro.solvers.coverage.group_objective` /
        :meth:`~repro.solvers.CoverageMatrix.objective_of` instead.
        """
        covered: Set[int] = set()
        for cid in cids:
            covered |= table.omega_c.get(cid, set())
        return math.fsum(self.user_share(table, uid) for uid in covered)

    def candidate_value(
        self, table: InfluenceTable, cid: int, excluded: Set[int] | None = None
    ) -> float:
        """Marginal value of candidate ``cid`` given already-covered users."""
        users = table.omega_c.get(cid)
        if not users:
            return 0.0
        if excluded:
            users = users - excluded
        # fsum: correctly rounded, hence independent of set iteration order.
        return math.fsum(self.user_share(table, uid) for uid in users)


class EvenlySplitModel(CompetitionModel):
    """The paper's model: ``share = 1 / (|F_o| + 1)`` (Equation 1)."""

    def user_share(self, table: InfluenceTable, uid: int) -> float:
        return 1.0 / (table.competitor_count(uid) + 1)

    def __repr__(self) -> str:
        return "EvenlySplitModel()"


class DistanceWeightedModel(CompetitionModel):
    """Huff-style split: shares proportional to facility utility.

    The utility a facility ``v`` derives from user ``o`` is the cumulative
    influence probability ``Pr_v(o)``; a new candidate with utility ``u_c``
    competing against facilities with utilities ``u_f`` captures
    ``u_c / (u_c + Σ u_f)``.  Because per-user utilities must be known, the
    model precomputes them from the raw entities at construction time.

    This model is an *extension* (ablation A-competition); it is not part
    of the paper's evaluation but demonstrates the pluggability of the
    competition layer.
    """

    def __init__(
        self,
        users: Dict[int, MovingUser],
        facilities: Dict[int, AbstractFacility],
        pf: ProbabilityFunction,
        candidate_utility: float = 0.5,
    ) -> None:
        self._users = users
        self._facilities = facilities
        self._pf = pf
        self._candidate_utility = candidate_utility
        self._cache: Dict[int, float] = {}

    def _facility_utility(self, fid: int, user: MovingUser) -> float:
        facility = self._facilities[fid]
        dx = user.positions[:, 0] - facility.x
        dy = user.positions[:, 1] - facility.y
        d = np.sqrt(dx * dx + dy * dy)
        survival = 1.0 - self._pf(d)
        return float(1.0 - np.prod(survival))

    def user_share(self, table: InfluenceTable, uid: int) -> float:
        if uid in self._cache:
            return self._cache[uid]
        competitors = table.f_o.get(uid, set())
        user = self._users[uid]
        total = self._candidate_utility + sum(
            self._facility_utility(fid, user) for fid in competitors
        )
        share = self._candidate_utility / total if total > 0 else 0.0
        self._cache[uid] = share
        return share

    def __repr__(self) -> str:
        return f"DistanceWeightedModel(candidate_utility={self._candidate_utility})"
