"""The probability-based multi-point influence model (paper §III-A).

Exports the distance-decay probability family, the cumulative influence
evaluator with the PINOCCHIO early-stopping strategy, and the radius /
position-count threshold math that powers every pruning rule.
"""

from .batch import BatchInfluenceEvaluator, PositionArena
from .model import (
    EvaluationStats,
    InfluenceEvaluator,
    cumulative_probability,
    survival_powers,
)
from .probability import (
    ExponentialPF,
    LinearPF,
    PowerLawPF,
    ProbabilityFunction,
    SigmoidPF,
    paper_default_pf,
    pf_from_dict,
    pf_to_dict,
)
from .radius import (
    min_max_radius,
    non_influence_radius,
    position_count_threshold,
    position_count_threshold_int,
)

__all__ = [
    "BatchInfluenceEvaluator",
    "EvaluationStats",
    "ExponentialPF",
    "InfluenceEvaluator",
    "LinearPF",
    "PositionArena",
    "PowerLawPF",
    "ProbabilityFunction",
    "SigmoidPF",
    "cumulative_probability",
    "min_max_radius",
    "non_influence_radius",
    "paper_default_pf",
    "pf_from_dict",
    "pf_to_dict",
    "position_count_threshold",
    "position_count_threshold_int",
    "survival_powers",
]
