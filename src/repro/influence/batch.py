"""Batched influence verification — one facility against many users.

The verification phase (Algorithm 2, line 14) decides thousands of
surviving ``(facility, user)`` pairs, and the scalar
:class:`~repro.influence.model.InfluenceEvaluator` pays Python-call and
small-array overhead on every one of them.  This module packs all users'
position multisets into one CSR-style arena (a flat ``(N, 2)`` float64
array plus segment offsets) and decides an entire batch in a handful of
large numpy passes: distances, survival factors, segmented products via
``np.multiply.reduceat`` for the exact path, and a padded per-segment
cumulative product for the early-stopping path.

**Bit-identity contract.**  Every decision (and probability) the batch
kernel emits is bit-identical to the scalar evaluator's corrected
boundary call:

* survival factors are computed with the same elementwise expression
  ``1 − PF(sqrt(dx² + dy²))``;
* sequential products come from ``np.cumprod`` (1-D, 2-D rows, and
  reduceat segments all perform the same left-to-right chain, which the
  test suite verifies bitwise against the scalar path);
* decisions are made on the survival product ``q <= 1 − τ``, never the
  complement;
* the negative-certificate bound multiplies by powers read from the
  shared :func:`~repro.influence.model.survival_powers` table, exactly
  as the scalar path does.

**Stats-equivalence contract.**  :class:`EvaluationStats` counters are
computed from the per-segment cumulative certificates — the position at
which a left-to-right scanner would have stopped — not from the work the
vectorised kernel actually performs, so Figs. 15–16 cost accounting is
unchanged whether a solver verifies pair-by-pair or in batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..exceptions import DataError, ProbabilityError
from .model import EvaluationStats, survival_powers
from .probability import ProbabilityFunction

# Padded (rows x r_max) work matrices are processed in chunks of at most
# this many elements so one batch over long histories cannot blow memory.
_CHUNK_ELEMENTS = 1 << 22


class PositionArena:
    """CSR-style packing of many users' position multisets.

    Attributes:
        positions: ``(N, 2)`` float64 array — every user's positions,
            concatenated in arena row order.
        offsets: ``(n_users + 1,)`` int64 array; user in row ``i`` owns
            ``positions[offsets[i]:offsets[i + 1]]``.
        uids: ``(n_users,)`` int64 array of user ids in arena row order.
    """

    __slots__ = ("positions", "offsets", "uids", "_row_of")

    def __init__(self, positions: np.ndarray, offsets: np.ndarray, uids: np.ndarray):
        self.positions = positions
        self.offsets = offsets
        self.uids = uids
        # uid -> row dict, built lazily on first id lookup: the batched
        # kernels address rows by index, and shard workers mapping a
        # million-user arena out of shared memory never need it.
        self._row_of: Optional[Dict[int, int]] = None
        if offsets.shape[0] != uids.shape[0] + 1:
            raise DataError("arena offsets must have one entry per user plus one")

    def __len__(self) -> int:
        return self.uids.shape[0]

    @property
    def n_positions(self) -> int:
        """Total number of packed positions."""
        return self.positions.shape[0]

    def lengths(self) -> np.ndarray:
        """Per-row position counts."""
        return np.diff(self.offsets)

    def _index(self) -> Dict[int, int]:
        if self._row_of is None:
            self._row_of = {int(u): i for i, u in enumerate(self.uids)}
        return self._row_of

    def row_of(self, uid: int) -> int:
        """Arena row index of a user id."""
        return self._index()[uid]

    def rows_for(self, uids: Iterable[int]) -> np.ndarray:
        """Arena row indices for an iterable of user ids."""
        index = self._index()
        return np.fromiter(
            (index[u] for u in uids), dtype=np.int64
        )

    def gather(self, rows: Optional[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(flat_positions, lengths)`` for a row subset.

        ``rows=None`` selects every user without copying.  Otherwise the
        selected segments are gathered into a fresh contiguous array in
        ``rows`` order (the standard CSR repeat/arange trick).
        """
        if rows is None:
            return self.positions, self.lengths()
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return self.positions[:0], np.zeros(0, dtype=np.int64)
        starts = self.offsets[rows]
        lens = self.offsets[rows + 1] - starts
        out_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        idx = np.repeat(starts - out_starts, lens) + np.arange(int(lens.sum()))
        return self.positions[idx], lens

    @staticmethod
    def from_users(users: Sequence) -> "PositionArena":
        """Pack objects exposing ``.uid`` and ``.positions`` (``(r, 2)``)."""
        users = list(users)
        if not users:
            raise DataError("cannot build an arena over zero users")
        lens = np.array([u.positions.shape[0] for u in users], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(lens)))
        flat = np.concatenate([np.asarray(u.positions, dtype=np.float64) for u in users])
        flat = np.ascontiguousarray(flat)
        flat.setflags(write=False)
        uids = np.array([u.uid for u in users], dtype=np.int64)
        return PositionArena(flat, offsets, uids)


@dataclass
class BatchInfluenceEvaluator:
    """Vectorised influence decisions for a fixed ``(PF, τ)`` configuration.

    Mirrors :class:`~repro.influence.model.InfluenceEvaluator` semantics
    exactly — same boundary call, same early-stopping certificates, same
    :class:`EvaluationStats` accounting — but decides whole batches per
    numpy pass.  Pass the scalar evaluator's ``stats`` object to keep one
    combined set of counters for a solver run.

    Args:
        pf: Distance-decay probability function.
        tau: Influence threshold in ``(0, 1)``.
        early_stopping: Account (and decide) with the PINOCCHIO
            per-position certificates; when ``False`` the exact full-scan
            path is used, as in the baseline solvers.
        stats: Counter object to accumulate into (fresh by default).
    """

    pf: ProbabilityFunction
    tau: float
    early_stopping: bool = True
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def __post_init__(self) -> None:
        if not 0.0 < self.tau < 1.0:
            raise ProbabilityError(f"tau must be in (0, 1), got {self.tau}")
        self._min_survival = 1.0 - self.pf.max_probability
        self._pow_table = survival_powers(self._min_survival, 1)

    def _powers(self, n: int) -> np.ndarray:
        """Cached ``min_survival ** [0..n)`` table (grown geometrically)."""
        if self._pow_table.shape[0] < n:
            self._pow_table = survival_powers(
                self._min_survival, max(n, 2 * self._pow_table.shape[0])
            )
        return self._pow_table

    # ------------------------------------------------------------------
    # One facility vs. many users
    # ------------------------------------------------------------------
    def influences_users(
        self,
        vx: float,
        vy: float,
        arena: PositionArena,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Decide one facility against a set of arena rows.

        Args:
            vx, vy: Facility coordinates.
            arena: The packed user positions.
            rows: Arena row indices to decide (``None`` = every user).

        Returns:
            Boolean array of influence decisions, one per requested row,
            in ``rows`` order.
        """
        flat, lens = arena.gather(rows)
        if lens.size == 0:
            return np.zeros(0, dtype=bool)
        survival = self._survival(flat, vx, vy)
        if self.early_stopping:
            return self._decide_early_stop(survival, lens)
        return self._decide_exact(survival, lens)

    def probabilities_users(
        self,
        vx: float,
        vy: float,
        arena: PositionArena,
        rows: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Exact ``Pr_v(o)`` per requested row (counts full evaluations)."""
        flat, lens = arena.gather(rows)
        if lens.size == 0:
            return np.zeros(0, dtype=np.float64)
        survival = self._survival(flat, vx, vy)
        seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        q = np.multiply.reduceat(survival, seg_starts)
        self.stats.full_evaluations += lens.size
        self.stats.positions_touched += int(survival.shape[0])
        return 1.0 - q

    # ------------------------------------------------------------------
    # One user vs. many facilities
    # ------------------------------------------------------------------
    def influences_facilities(
        self, xy: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Decide many facilities against one user's positions.

        Args:
            xy: ``(n, 2)`` facility coordinate array.
            positions: The user's ``(r, 2)`` position array.

        Returns:
            Boolean influence decision per facility row.
        """
        xy = np.asarray(xy, dtype=np.float64)
        if xy.size == 0:
            return np.zeros(0, dtype=bool)
        n = xy.shape[0]
        r = positions.shape[0]
        dx = positions[None, :, 0] - xy[:, 0, None]
        dy = positions[None, :, 1] - xy[:, 1, None]
        survival = 1.0 - self.pf(np.sqrt(dx * dx + dy * dy))
        target = 1.0 - self.tau
        chain = np.cumprod(survival, axis=1)
        if not self.early_stopping:
            self.stats.full_evaluations += n
            self.stats.positions_touched += n * r
            return chain[:, -1] <= target
        pos_hit = chain <= target
        neg_hit = chain * self._powers(r)[r - 1 :: -1] > target
        first = (pos_hit | neg_hit).argmax(axis=1)
        decisions = pos_hit[np.arange(n), first]
        touched = first + 1
        self._account_early_stop(decisions, touched, np.full(n, r, dtype=np.int64))
        return decisions

    # ------------------------------------------------------------------
    # Kernel internals
    # ------------------------------------------------------------------
    def _survival(self, flat: np.ndarray, vx: float, vy: float) -> np.ndarray:
        dx = flat[:, 0] - vx
        dy = flat[:, 1] - vy
        return 1.0 - self.pf(np.sqrt(dx * dx + dy * dy))

    def _decide_exact(self, survival: np.ndarray, lens: np.ndarray) -> np.ndarray:
        seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
        q = np.multiply.reduceat(survival, seg_starts)
        self.stats.full_evaluations += lens.size
        self.stats.positions_touched += int(survival.shape[0])
        return q <= 1.0 - self.tau

    def _decide_early_stop(self, survival: np.ndarray, lens: np.ndarray) -> np.ndarray:
        """Early-stop decisions + accounting over packed segments.

        Segments are scattered into padded ``(rows, width)`` matrices; the
        row-wise cumprod of a padded row equals the 1-D cumprod of the
        segment bitwise, and the first index where either certificate
        fires yields the decision and the touched count, exactly as the
        scalar scanner would.  Rows are grouped into power-of-two length
        bands (further bounded by ``_CHUNK_ELEMENTS``) so padding waste
        stays under 2× even when a few long histories share a batch with
        many short ones; grouping only reorders independent rows, so the
        per-row arithmetic — and therefore every decision and counter —
        is unchanged.
        """
        n = lens.size
        target = 1.0 - self.tau
        offsets = np.concatenate(([0], np.cumsum(lens)))
        decisions = np.empty(n, dtype=bool)
        touched = np.empty(n, dtype=np.int64)
        order = np.argsort(lens, kind="stable")
        sorted_lens = lens[order]
        max_len = int(sorted_lens[-1])
        band_edges = np.unique(
            np.concatenate(
                (
                    [0, n],
                    np.searchsorted(sorted_lens, 2 ** np.arange(1, max_len.bit_length())),
                )
            )
        )
        for band_a, band_b in zip(band_edges[:-1], band_edges[1:]):
            width = int(sorted_lens[band_b - 1])
            rows_per_chunk = max(1, _CHUNK_ELEMENTS // width)
            for a in range(band_a, band_b, rows_per_chunk):
                b = min(band_b, a + rows_per_chunk)
                rows = order[a:b]
                ls = lens[rows]
                starts = offsets[rows]
                out_starts = np.concatenate(([0], np.cumsum(ls)[:-1]))
                idx = np.repeat(starts - out_starts, ls) + np.arange(int(ls.sum()))
                cols = np.arange(width)
                valid = cols[None, :] < ls[:, None]
                mat = np.ones((b - a, width))
                mat[valid] = survival[idx]
                chain = np.cumprod(mat, axis=1)
                rem = ls[:, None] - 1 - cols[None, :]
                bound = chain * self._powers(width)[np.where(rem >= 0, rem, 0)]
                pos_hit = (chain <= target) & valid
                hit = pos_hit | ((bound > target) & valid)
                first = hit.argmax(axis=1)
                decisions[rows] = pos_hit[np.arange(b - a), first]
                touched[rows] = first + 1
        self._account_early_stop(decisions, touched, lens)
        return decisions

    def _account_early_stop(
        self, decisions: np.ndarray, touched: np.ndarray, lens: np.ndarray
    ) -> None:
        self.stats.early_stop_evaluations += decisions.size
        self.stats.positions_touched += int(touched.sum())
        early = touched < lens
        self.stats.early_stops_positive += int(np.count_nonzero(decisions & early))
        self.stats.early_stops_negative += int(np.count_nonzero(~decisions & early))
