"""Influence radii and position-count thresholds.

Three quantities drive all pruning in the paper:

* ``mMR(τ, r)`` — the *minMaxRadius* of PINOCCHIO: the circle radius such
  that a user with ``r`` positions all inside the circle is necessarily
  influenced (Corollary 1), and a user with *no* position inside cannot be
  influenced (Corollary 2).
* ``η(τ, PF, d̂)`` — the *position count threshold* (Definition 8): the
  number of positions within distance ``d̂`` that suffices to guarantee
  influence.  ``η`` and ``mMR`` are inverses of one another:
  ``η(τ, PF, mMR(τ, r)) == r``.
* ``NIR`` — the *non-influence radius*: ``mMR(τ, r_max)`` over all users,
  i.e. an upper bound on every user's ``mMR``, used by Lemma 3.
"""

from __future__ import annotations

import math

from ..exceptions import ProbabilityError
from .probability import ProbabilityFunction


def _check_tau(tau: float) -> None:
    if not 0.0 < tau < 1.0:
        raise ProbabilityError(f"tau must be in (0, 1), got {tau}")


def min_max_radius(tau: float, r: int, pf: ProbabilityFunction) -> float:
    """Return ``mMR(τ, r) = PF⁻¹(1 − (1 − τ)^{1/r})``.

    Returns ``0.0`` when the per-position probability needed to reach ``τ``
    with ``r`` positions exceeds ``PF``'s maximum — i.e. no positive radius
    can guarantee influence, so the guaranteed-influence circle is empty and
    the "cannot influence" circle degenerates to the facility itself.
    """
    _check_tau(tau)
    if r < 1:
        raise ProbabilityError(f"position count r must be >= 1, got {r}")
    per_position = 1.0 - (1.0 - tau) ** (1.0 / r)
    return pf.inverse(per_position)


def position_count_threshold(tau: float, pf: ProbabilityFunction, d_hat: float) -> float:
    """Return ``η(τ, PF, d̂) = 1 / log_{1−τ}(1 − PF(d̂))`` (Definition 8).

    ``η`` is the (real-valued) number of positions at distance exactly
    ``d̂`` needed for the cumulative probability to reach ``τ``; callers
    take ``ceil(η)``.  Returns ``math.inf`` when ``PF(d̂)`` is zero (or
    numerically underflows), meaning no finite count of positions at that
    distance can ever reach the threshold.
    """
    _check_tau(tau)
    if d_hat < 0:
        raise ProbabilityError(f"distance must be non-negative, got {d_hat}")
    p = float(pf(d_hat))
    if p <= 0.0:
        return math.inf
    if p >= 1.0:
        return 1.0
    # log_{1-tau}(1 - p) = ln(1 - p) / ln(1 - tau); both logs are negative,
    # so the ratio is positive.  log1p keeps precision when p is tiny
    # (1 - p would round to exactly 1.0 and divide by zero).
    eta = math.log(1.0 - tau) / math.log1p(-p)
    return eta if math.isfinite(eta) else math.inf


def position_count_threshold_int(tau: float, pf: ProbabilityFunction, d_hat: float) -> int:
    """Return ``⌈η(τ, PF, d̂)⌉`` or a sentinel of ``2**62`` when infinite.

    The integer form is what the IS rule and the IQuad-tree hash store; the
    sentinel keeps comparisons cheap (an ``int`` beats ``math.inf`` checks
    in the hot loop) while remaining unreachably large for real data.
    """
    eta = position_count_threshold(tau, pf, d_hat)
    if math.isinf(eta) or eta >= 2**62:
        return 2**62
    return max(1, math.ceil(eta - 1e-12))


def non_influence_radius(tau: float, r_max: int, pf: ProbabilityFunction) -> float:
    """Return ``NIR = mMR(τ, r_max)`` — the paper's non-influence radius.

    ``r_max`` is the maximum position count over all users in the dataset;
    since ``mMR`` is non-decreasing in ``r``, ``NIR`` upper-bounds every
    user's ``mMR`` and Lemma 3's rounded-square prune is sound for all of
    them at once.
    """
    return min_max_radius(tau, r_max, pf)
