"""Distance-decay probability (utility) functions ``PF``.

The influence model says a facility at distance ``d`` from one of a user's
positions influences that position with probability ``PF(d)``, where ``PF``
is monotonically decreasing in ``d``.  The paper's experiments use the
logistic form ``PF(d) = ρ / (1 + e^d)`` with ``ρ = 1``; this module provides
that function plus a family of alternatives with the same interface so the
model can be exercised under different decay behaviours (cf. Liu et al.,
"Learning geographical preferences for point-of-interest recommendation").

Every function supports scalar and vectorised evaluation, and exposes an
exact inverse, which the pruning machinery needs to turn probability
thresholds back into distances (``mMR``) and position counts (``η``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Union

import numpy as np

from ..exceptions import ProbabilityError

ArrayLike = Union[float, np.ndarray]


class ProbabilityFunction(ABC):
    """A monotonically decreasing map from distance (km) to probability.

    Implementations must satisfy, for all ``0 <= d1 <= d2``:
    ``0 <= PF(d2) <= PF(d1) <= max_probability <= 1``.
    """

    @abstractmethod
    def __call__(self, d: ArrayLike) -> ArrayLike:
        """Evaluate ``PF(d)`` for a scalar or an array of distances."""

    @abstractmethod
    def inverse(self, p: float) -> float:
        """Return the distance at which ``PF`` equals ``p``.

        When ``p`` exceeds the function's maximum (its value at distance 0)
        there is no such distance; implementations return ``0.0`` in that
        case, which makes the derived ``mMR`` radius collapse to a point —
        the correct "this threshold is unreachable" semantics for pruning.
        """

    @property
    @abstractmethod
    def max_probability(self) -> float:
        """The supremum of ``PF``, attained at distance 0."""

    def _check_probability(self, p: float) -> None:
        if not 0.0 < p <= 1.0:
            raise ProbabilityError(f"probability must be in (0, 1], got {p}")

    def cache_key(self) -> str:
        """Canonical identity of this function for cache keying.

        Two instances with equal keys must evaluate identically for all
        distances.  Every provided family's ``repr`` spells out its class
        and full parameterisation, so the default suffices; custom
        subclasses whose ``repr`` omits parameters must override this
        before being used with the serving engine's caches.
        """
        return repr(self)


class SigmoidPF(ProbabilityFunction):
    """The paper's probability function ``PF(d) = ρ / (1 + e^d)``.

    With the default ``ρ = 1`` the probability at distance zero is 0.5 and
    decays with an e-folding scale of roughly one kilometre.
    """

    def __init__(self, rho: float = 1.0) -> None:
        if not 0.0 < rho <= 2.0:
            # rho > 2 would push PF(0) above 1 and break the probability
            # semantics; the paper uses rho = 1.
            raise ProbabilityError(f"rho must be in (0, 2], got {rho}")
        self.rho = rho

    def __call__(self, d: ArrayLike) -> ArrayLike:
        if isinstance(d, np.ndarray):
            # exp overflows around d ~ 709; the result is 0 either way, so
            # clamp to keep the computation warning-free.
            return self.rho / (1.0 + np.exp(np.minimum(d, 700.0)))
        return self.rho / (1.0 + math.exp(min(d, 700.0)))

    def inverse(self, p: float) -> float:
        self._check_probability(p)
        if p >= self.max_probability:
            return 0.0
        return math.log(self.rho / p - 1.0)

    @property
    def max_probability(self) -> float:
        return self.rho / 2.0

    def __repr__(self) -> str:
        return f"SigmoidPF(rho={self.rho})"


class ExponentialPF(ProbabilityFunction):
    """Exponential decay ``PF(d) = p0 * exp(-d / scale)``."""

    def __init__(self, p0: float = 0.9, scale: float = 1.0) -> None:
        if not 0.0 < p0 <= 1.0:
            raise ProbabilityError(f"p0 must be in (0, 1], got {p0}")
        if scale <= 0:
            raise ProbabilityError(f"scale must be positive, got {scale}")
        self.p0 = p0
        self.scale = scale

    def __call__(self, d: ArrayLike) -> ArrayLike:
        if isinstance(d, np.ndarray):
            return self.p0 * np.exp(-d / self.scale)
        return self.p0 * math.exp(-d / self.scale)

    def inverse(self, p: float) -> float:
        self._check_probability(p)
        if p >= self.p0:
            return 0.0
        return -self.scale * math.log(p / self.p0)

    @property
    def max_probability(self) -> float:
        return self.p0

    def __repr__(self) -> str:
        return f"ExponentialPF(p0={self.p0}, scale={self.scale})"


class LinearPF(ProbabilityFunction):
    """Linear decay to zero at ``cutoff``: ``PF(d) = p0 * max(0, 1 - d/cutoff)``."""

    def __init__(self, p0: float = 0.9, cutoff: float = 5.0) -> None:
        if not 0.0 < p0 <= 1.0:
            raise ProbabilityError(f"p0 must be in (0, 1], got {p0}")
        if cutoff <= 0:
            raise ProbabilityError(f"cutoff must be positive, got {cutoff}")
        self.p0 = p0
        self.cutoff = cutoff

    def __call__(self, d: ArrayLike) -> ArrayLike:
        if isinstance(d, np.ndarray):
            return self.p0 * np.clip(1.0 - d / self.cutoff, 0.0, None)
        return self.p0 * max(0.0, 1.0 - d / self.cutoff)

    def inverse(self, p: float) -> float:
        self._check_probability(p)
        if p >= self.p0:
            return 0.0
        return self.cutoff * (1.0 - p / self.p0)

    @property
    def max_probability(self) -> float:
        return self.p0

    def __repr__(self) -> str:
        return f"LinearPF(p0={self.p0}, cutoff={self.cutoff})"


class PowerLawPF(ProbabilityFunction):
    """Power-law decay ``PF(d) = p0 / (1 + d/scale)^alpha``.

    A heavy-tailed alternative matching the distance-preference curves fit
    on check-in data in the POI-recommendation literature.
    """

    def __init__(self, p0: float = 0.9, scale: float = 1.0, alpha: float = 2.0) -> None:
        if not 0.0 < p0 <= 1.0:
            raise ProbabilityError(f"p0 must be in (0, 1], got {p0}")
        if scale <= 0 or alpha <= 0:
            raise ProbabilityError("scale and alpha must be positive")
        self.p0 = p0
        self.scale = scale
        self.alpha = alpha

    def __call__(self, d: ArrayLike) -> ArrayLike:
        if isinstance(d, np.ndarray):
            return self.p0 / np.power(1.0 + d / self.scale, self.alpha)
        return self.p0 / (1.0 + d / self.scale) ** self.alpha

    def inverse(self, p: float) -> float:
        self._check_probability(p)
        if p >= self.p0:
            return 0.0
        return self.scale * ((self.p0 / p) ** (1.0 / self.alpha) - 1.0)

    @property
    def max_probability(self) -> float:
        return self.p0

    def __repr__(self) -> str:
        return f"PowerLawPF(p0={self.p0}, scale={self.scale}, alpha={self.alpha})"


def paper_default_pf() -> SigmoidPF:
    """Return the probability function used throughout the paper (ρ = 1)."""
    return SigmoidPF(rho=1.0)


#: The named decay families and their constructor parameters, in the
#: order :func:`pf_to_dict` serialises them.  Custom subclasses are not
#: portable and are rejected rather than silently mis-serialised.
_PF_FAMILIES = {
    "sigmoid": (SigmoidPF, ("rho",)),
    "exponential": (ExponentialPF, ("p0", "scale")),
    "linear": (LinearPF, ("p0", "cutoff")),
    "power-law": (PowerLawPF, ("p0", "scale", "alpha")),
}


def pf_to_dict(pf: ProbabilityFunction) -> dict:
    """JSON-portable form of a provided-family ``PF``.

    The inverse of :func:`pf_from_dict`; round-tripping preserves
    :meth:`ProbabilityFunction.cache_key`, which is what makes recorded
    query traces replayable against equal caches on another process.
    """
    for family, (cls, params) in _PF_FAMILIES.items():
        if type(pf) is cls:
            return {"family": family, **{p: getattr(pf, p) for p in params}}
    raise ProbabilityError(
        f"{type(pf).__name__} is not a serialisable PF family; "
        f"known families: {', '.join(_PF_FAMILIES)}"
    )


def pf_from_dict(spec: dict) -> ProbabilityFunction:
    """Rebuild a ``PF`` serialised by :func:`pf_to_dict`."""
    family = spec.get("family")
    if family not in _PF_FAMILIES:
        raise ProbabilityError(
            f"unknown PF family {family!r}; "
            f"known families: {', '.join(_PF_FAMILIES)}"
        )
    cls, params = _PF_FAMILIES[family]
    return cls(**{p: spec[p] for p in params if p in spec})
