"""Cumulative influence probability over moving users (Definitions 1–2).

The probability that an abstract facility ``v`` influences a moving user
``o = {p_1 .. p_r}`` is ``Pr_v(o) = 1 − Π_i (1 − PF(d(v, p_i)))``; ``v``
*influences* ``o`` iff ``Pr_v(o) >= τ``.

Two evaluation strategies are provided:

* :func:`cumulative_probability` — exact, vectorised over all positions.
* :class:`InfluenceEvaluator.influences_early_stop` — the PINOCCHIO
  *early stopping strategy*: scan positions one at a time, stop as soon as
  the running product of survival probabilities already certifies the
  decision in either direction.

The evaluator also keeps counters (full evaluations, early stops, positions
touched) because the paper's Figs. 15–16 report *verification computation
cost*, which the benchmark harness reads off these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..exceptions import ProbabilityError
from .probability import ProbabilityFunction


def cumulative_probability(
    vx: float, vy: float, positions: np.ndarray, pf: ProbabilityFunction
) -> float:
    """Return ``Pr_v(o)`` for a facility at ``(vx, vy)`` exactly.

    ``positions`` is the user's ``(r, 2)`` coordinate array.  The product of
    survival probabilities is evaluated in log-space-free form because ``r``
    is small (tens of positions) and ``1 − PF(d)`` is bounded away from 0
    for d > 0 under every provided ``PF``.
    """
    dx = positions[:, 0] - vx
    dy = positions[:, 1] - vy
    d = np.sqrt(dx * dx + dy * dy)
    survival = 1.0 - pf(d)
    return float(1.0 - np.prod(survival))


@dataclass
class EvaluationStats:
    """Counters describing how much verification work an evaluator did."""

    full_evaluations: int = 0
    early_stop_evaluations: int = 0
    early_stops_positive: int = 0
    early_stops_negative: int = 0
    positions_touched: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.full_evaluations = 0
        self.early_stop_evaluations = 0
        self.early_stops_positive = 0
        self.early_stops_negative = 0
        self.positions_touched = 0

    @property
    def total_evaluations(self) -> int:
        """Total number of (facility, user) probability checks performed."""
        return self.full_evaluations + self.early_stop_evaluations

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another stats object into this one."""
        self.full_evaluations += other.full_evaluations
        self.early_stop_evaluations += other.early_stop_evaluations
        self.early_stops_positive += other.early_stops_positive
        self.early_stops_negative += other.early_stops_negative
        self.positions_touched += other.positions_touched


@dataclass
class InfluenceEvaluator:
    """Decides influence relationships for a fixed ``(PF, τ)`` configuration.

    Args:
        pf: Distance-decay probability function.
        tau: Influence threshold in ``(0, 1)``.
        early_stopping: When ``True`` (default), the per-pair decision scans
            positions sorted by proximity-free order and stops as soon as the
            decision is certified; when ``False`` the exact vectorised path
            is always used (ablation A1).
    """

    pf: ProbabilityFunction
    tau: float
    early_stopping: bool = True
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def __post_init__(self) -> None:
        if not 0.0 < self.tau < 1.0:
            raise ProbabilityError(f"tau must be in (0, 1), got {self.tau}")
        # Survival floor: the largest possible per-position influence
        # probability is PF(0), so each remaining position can shrink the
        # survival product by at most (1 - PF(0)).
        self._min_survival = 1.0 - self.pf.max_probability

    # ------------------------------------------------------------------
    # Exact path
    # ------------------------------------------------------------------
    def probability(self, vx: float, vy: float, positions: np.ndarray) -> float:
        """Return ``Pr_v(o)`` exactly (vectorised); counts a full evaluation."""
        self.stats.full_evaluations += 1
        self.stats.positions_touched += positions.shape[0]
        return cumulative_probability(vx, vy, positions, self.pf)

    def influences(self, vx: float, vy: float, positions: np.ndarray) -> bool:
        """Return whether the facility influences the user (Definition 2).

        Both paths decide on the *survival product* ``q <= 1 − τ`` (never
        on the complement ``1 − q >= τ``): the two are equivalent in exact
        arithmetic but can differ by one ulp in floats, and every solver
        must make the identical boundary call.
        """
        if self.early_stopping:
            return self.influences_early_stop(vx, vy, positions)
        self.stats.full_evaluations += 1
        self.stats.positions_touched += positions.shape[0]
        dx = positions[:, 0] - vx
        dy = positions[:, 1] - vy
        survival = 1.0 - self.pf(np.sqrt(dx * dx + dy * dy))
        return float(np.prod(survival)) <= 1.0 - self.tau

    # ------------------------------------------------------------------
    # Early stopping path (PINOCCHIO)
    # ------------------------------------------------------------------
    def influences_early_stop(self, vx: float, vy: float, positions: np.ndarray) -> bool:
        """Early-stopped influence decision.

        Maintains the survival product ``q = Π (1 − PF(d_i))`` over blocks
        of positions and stops when

        * ``q <= 1 − τ`` — influence is already certain (the product can
          only shrink further), or
        * ``q · (1 − PF(0))^{remaining} > 1 − τ`` — influence is impossible
          even if every remaining position sat on top of the facility.

        Positions are consumed in small vectorised blocks: the decision
        usually falls out after the first block, and block evaluation keeps
        the per-position cost at numpy speed instead of scalar-loop speed.
        """
        self.stats.early_stop_evaluations += 1
        r = positions.shape[0]
        target = 1.0 - self.tau
        if r <= 128:
            # One vectorised pass; the running survival product is read off
            # the cumulative product, and the stop point gives the honest
            # r' <= r cost accounting the paper's Figs. 15-16 report.  The
            # common negative case needs only the final product.
            dx = positions[:, 0] - vx
            dy = positions[:, 1] - vy
            survival = np.cumprod(1.0 - self.pf(np.sqrt(dx * dx + dy * dy)))
            if survival[-1] > target:
                self.stats.positions_touched += r
                return False
            touched = int(np.argmax(survival <= target)) + 1
            self.stats.positions_touched += touched
            if touched < r:
                self.stats.early_stops_positive += 1
            return True
        # Very long histories: consume in blocks so a decision early in the
        # sequence skips the bulk of the distance computations.
        q = 1.0
        block = 64
        for start in range(0, r, block):
            chunk = positions[start : start + block]
            dx = chunk[:, 0] - vx
            dy = chunk[:, 1] - vy
            survival = q * np.cumprod(1.0 - self.pf(np.sqrt(dx * dx + dy * dy)))
            hit = survival <= target
            if hit.any():
                self.stats.positions_touched += int(np.argmax(hit)) + 1
                self.stats.early_stops_positive += 1
                return True
            q = float(survival[-1])
            self.stats.positions_touched += chunk.shape[0]
            remaining = r - start - chunk.shape[0]
            if remaining and q * self._min_survival**remaining > target:
                self.stats.early_stops_negative += 1
                return False
        return q <= target

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def decision_with_probability(
        self, vx: float, vy: float, positions: np.ndarray
    ) -> Tuple[bool, float]:
        """Return ``(influences, Pr_v(o))`` using the exact path."""
        p = self.probability(vx, vy, positions)
        return p >= self.tau, p
