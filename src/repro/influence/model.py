"""Cumulative influence probability over moving users (Definitions 1–2).

The probability that an abstract facility ``v`` influences a moving user
``o = {p_1 .. p_r}`` is ``Pr_v(o) = 1 − Π_i (1 − PF(d(v, p_i)))``; ``v``
*influences* ``o`` iff ``Pr_v(o) >= τ``.

Two evaluation strategies are provided:

* :func:`cumulative_probability` — exact, vectorised over all positions.
* :class:`InfluenceEvaluator.influences_early_stop` — the PINOCCHIO
  *early stopping strategy*: scan positions one at a time, stop as soon as
  the running product of survival probabilities already certifies the
  decision in either direction.

The evaluator also keeps counters (full evaluations, early stops, positions
touched) because the paper's Figs. 15–16 report *verification computation
cost*, which the benchmark harness reads off these counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..exceptions import ProbabilityError
from .probability import ProbabilityFunction


def survival_powers(min_survival: float, n: int) -> np.ndarray:
    """Table of ``min_survival ** e`` for ``e = 0 .. n − 1``.

    Both the scalar early-stopping path and the batched kernel read the
    negative-certificate bound off this table (never a scalar ``**``),
    so the two produce bit-identical comparisons against ``1 − τ``.
    """
    return np.power(min_survival, np.arange(n, dtype=np.float64))


def cumulative_probability(
    vx: float, vy: float, positions: np.ndarray, pf: ProbabilityFunction
) -> float:
    """Return ``Pr_v(o)`` for a facility at ``(vx, vy)`` exactly.

    ``positions`` is the user's ``(r, 2)`` coordinate array.  The product of
    survival probabilities is evaluated in log-space-free form because ``r``
    is small (tens of positions) and ``1 − PF(d)`` is bounded away from 0
    for d > 0 under every provided ``PF``.
    """
    dx = positions[:, 0] - vx
    dy = positions[:, 1] - vy
    d = np.sqrt(dx * dx + dy * dy)
    survival = 1.0 - pf(d)
    return float(1.0 - np.prod(survival))


@dataclass
class EvaluationStats:
    """Counters describing how much verification work an evaluator did."""

    full_evaluations: int = 0
    early_stop_evaluations: int = 0
    early_stops_positive: int = 0
    early_stops_negative: int = 0
    positions_touched: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.full_evaluations = 0
        self.early_stop_evaluations = 0
        self.early_stops_positive = 0
        self.early_stops_negative = 0
        self.positions_touched = 0

    @property
    def total_evaluations(self) -> int:
        """Total number of (facility, user) probability checks performed."""
        return self.full_evaluations + self.early_stop_evaluations

    def merge(self, other: "EvaluationStats") -> None:
        """Accumulate another stats object into this one."""
        self.full_evaluations += other.full_evaluations
        self.early_stop_evaluations += other.early_stop_evaluations
        self.early_stops_positive += other.early_stops_positive
        self.early_stops_negative += other.early_stops_negative
        self.positions_touched += other.positions_touched


@dataclass
class InfluenceEvaluator:
    """Decides influence relationships for a fixed ``(PF, τ)`` configuration.

    Args:
        pf: Distance-decay probability function.
        tau: Influence threshold in ``(0, 1)``.
        early_stopping: When ``True`` (default), the per-pair decision scans
            positions sorted by proximity-free order and stops as soon as the
            decision is certified; when ``False`` the exact vectorised path
            is always used (ablation A1).
    """

    pf: ProbabilityFunction
    tau: float
    early_stopping: bool = True
    stats: EvaluationStats = field(default_factory=EvaluationStats)

    def __post_init__(self) -> None:
        if not 0.0 < self.tau < 1.0:
            raise ProbabilityError(f"tau must be in (0, 1), got {self.tau}")
        # Survival floor: the largest possible per-position influence
        # probability is PF(0), so each remaining position can shrink the
        # survival product by at most (1 - PF(0)).
        self._min_survival = 1.0 - self.pf.max_probability
        self._pow_table = survival_powers(self._min_survival, 1)

    def _powers(self, n: int) -> np.ndarray:
        """Cached ``min_survival ** [0..n)`` table (grown geometrically)."""
        if self._pow_table.shape[0] < n:
            self._pow_table = survival_powers(
                self._min_survival, max(n, 2 * self._pow_table.shape[0])
            )
        return self._pow_table

    # ------------------------------------------------------------------
    # Exact path
    # ------------------------------------------------------------------
    def probability(self, vx: float, vy: float, positions: np.ndarray) -> float:
        """Return ``Pr_v(o)`` exactly (vectorised); counts a full evaluation."""
        self.stats.full_evaluations += 1
        self.stats.positions_touched += positions.shape[0]
        return cumulative_probability(vx, vy, positions, self.pf)

    def influences(self, vx: float, vy: float, positions: np.ndarray) -> bool:
        """Return whether the facility influences the user (Definition 2).

        Both paths decide on the *survival product* ``q <= 1 − τ`` (never
        on the complement ``1 − q >= τ``): the two are equivalent in exact
        arithmetic but can differ by one ulp in floats, and every solver
        must make the identical boundary call.
        """
        if self.early_stopping:
            return self.influences_early_stop(vx, vy, positions)
        self.stats.full_evaluations += 1
        self.stats.positions_touched += positions.shape[0]
        dx = positions[:, 0] - vx
        dy = positions[:, 1] - vy
        survival = 1.0 - self.pf(np.sqrt(dx * dx + dy * dy))
        return float(np.prod(survival)) <= 1.0 - self.tau

    # ------------------------------------------------------------------
    # Early stopping path (PINOCCHIO)
    # ------------------------------------------------------------------
    def influences_early_stop(self, vx: float, vy: float, positions: np.ndarray) -> bool:
        """Early-stopped influence decision.

        Maintains the survival product ``q = Π (1 − PF(d_i))`` over the
        positions and stops at the first index certifying either way:

        * ``q <= 1 − τ`` — influence is already certain (the product can
          only shrink further), or
        * ``q · (1 − PF(0))^{remaining} > 1 − τ`` — influence is impossible
          even if every remaining position sat on top of the facility.

        At the last position exactly one of the two certificates fires, so
        the decision and the touched-position count are both defined by the
        first hit.  Both the short-history fast path and the blocked path
        for long histories apply *both* certificates at per-position
        granularity, so the Figs. 15–16 cost counters mean the same thing
        on either side of the ``r = 128`` cutoff; the blocked path chains
        the running product through ``cumprod`` (never a scalar
        re-multiplication) so every intermediate ``q`` is bit-identical to
        a single full cumulative product — the contract the batched kernel
        (:mod:`repro.influence.batch`) relies on.
        """
        self.stats.early_stop_evaluations += 1
        r = positions.shape[0]
        target = 1.0 - self.tau
        if r <= 128:
            # One vectorised pass; the stop point is read off the cumulative
            # product and gives the honest r' <= r cost accounting the
            # paper's Figs. 15-16 report.
            dx = positions[:, 0] - vx
            dy = positions[:, 1] - vy
            chain = np.cumprod(1.0 - self.pf(np.sqrt(dx * dx + dy * dy)))
            pos_hit = chain <= target
            neg_hit = chain * self._powers(r)[r - 1 :: -1] > target
            first = int(np.argmax(pos_hit | neg_hit))
            touched = first + 1
            self.stats.positions_touched += touched
            decided = bool(pos_hit[first])
            if touched < r:
                if decided:
                    self.stats.early_stops_positive += 1
                else:
                    self.stats.early_stops_negative += 1
            return decided
        # Very long histories: consume in blocks so a decision early in the
        # sequence skips the bulk of the distance computations.
        q = 1.0
        block = 64
        powers = self._powers(r)
        for start in range(0, r, block):
            chunk = positions[start : start + block]
            b = chunk.shape[0]
            dx = chunk[:, 0] - vx
            dy = chunk[:, 1] - vy
            chain = np.cumprod(
                np.concatenate(((q,), 1.0 - self.pf(np.sqrt(dx * dx + dy * dy))))
            )[1:]
            rem = np.arange(r - 1 - start, r - 1 - start - b, -1)
            pos_hit = chain <= target
            neg_hit = chain * powers[rem] > target
            hit = pos_hit | neg_hit
            if hit.any():
                first = int(np.argmax(hit))
                self.stats.positions_touched += first + 1
                decided = bool(pos_hit[first])
                if start + first + 1 < r:
                    if decided:
                        self.stats.early_stops_positive += 1
                    else:
                        self.stats.early_stops_negative += 1
                return decided
            q = float(chain[-1])
            self.stats.positions_touched += b
        return q <= target  # unreachable: the last position always certifies

    # ------------------------------------------------------------------
    # Derived helpers
    # ------------------------------------------------------------------
    def decision_with_probability(
        self, vx: float, vy: float, positions: np.ndarray
    ) -> Tuple[bool, float]:
        """Return ``(influences, Pr_v(o))`` using the exact path.

        The decision is made on the survival product ``q <= 1 − τ`` — the
        identical boundary call :meth:`influences` makes — never on the
        complement ``1 − q >= τ``, which can disagree by one ulp when
        ``1 − q`` rounds onto the threshold.
        """
        self.stats.full_evaluations += 1
        self.stats.positions_touched += positions.shape[0]
        dx = positions[:, 0] - vx
        dy = positions[:, 1] - vy
        q = float(np.prod(1.0 - self.pf(np.sqrt(dx * dx + dy * dy))))
        return q <= 1.0 - self.tau, 1.0 - q
