"""Campaign runner: declarative grid sweeps, memoized and resumable.

The campaign layer turns the repo's one-shot benchmark protocols into
incremental experiments:

* :class:`CampaignSpec` / :class:`CampaignGrid` / :class:`DatasetAxis`
  — a declarative parameter grid (dataset spec × solver × capture
  model × kernel knobs × τ × k × repeats), JSON-portable;
* :class:`RunPoint` — one pinned combination, keyed by the realized
  dataset content hash plus a canonical hash of the run parameters;
* :class:`ResultStore` — atomic per-point JSON records on disk, so a
  kill can never lose a completed point or persist a partial one;
* :class:`CampaignRunner` — plans the missing points and fans them out
  over persistent worker processes with per-point timeout and crash
  isolation (``--resume`` semantics fall out of the store);
* :class:`Aggregator` — median/spread row tables per grid, rendered
  through :mod:`repro.bench.reporting` and
  :mod:`repro.bench.svg_charts` like every committed benchmark;
* :mod:`~repro.campaign.shipped` — the standing campaigns
  (``fig-runtime-sweep``, ``capture-duel``, ``smoke``).

CLI: ``python -m repro campaign run|status|report|clean|smoke``.
"""

from .aggregate import Aggregator
from .points import SOLVER_FACTORIES, build_solver, execute_point
from .runner import CampaignPlan, CampaignRunner, PointTask, RunReport, plan_campaign
from .shipped import (
    SHIPPED_SPECS,
    capture_duel_spec,
    fig_runtime_sweep_spec,
    get_spec,
    smoke_spec,
)
from .spec import (
    CAMPAIGN_SOLVERS,
    CampaignGrid,
    CampaignSpec,
    DatasetAxis,
    RunPoint,
    canonical_capture,
    canonical_json,
    grid,
)
from .store import ResultStore

__all__ = [
    "Aggregator",
    "CAMPAIGN_SOLVERS",
    "CampaignGrid",
    "CampaignPlan",
    "CampaignRunner",
    "CampaignSpec",
    "DatasetAxis",
    "PointTask",
    "ResultStore",
    "RunPoint",
    "RunReport",
    "SHIPPED_SPECS",
    "SOLVER_FACTORIES",
    "build_solver",
    "canonical_capture",
    "canonical_json",
    "capture_duel_spec",
    "execute_point",
    "fig_runtime_sweep_spec",
    "get_spec",
    "grid",
    "plan_campaign",
    "smoke_spec",
]
