"""Aggregation: stored points → the repo's row tables and SVG figures.

The :class:`Aggregator` groups a grid's completed points by the grid's
``x`` axis, pivots the ``series`` axis (solver or capture model) into
columns, and reports the **median over repeats** with its min–max
spread — the same discipline :mod:`repro.bench.timing` enforces on the
benchmark scripts, now fed by persisted campaign points instead of
one-shot runs.  Row schemas line up with the ``bench_fig*`` tables:
a solve grid with ``series="solver"`` produces exactly the
``{solver}_s`` runtime columns the figure scripts record (plus
``{solver}_spread`` jitter bands), so
:func:`repro.bench.svg_charts.save_runtime_figure` renders campaign
output unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..bench.reporting import record_table
from ..bench.svg_charts import save_runtime_figure
from ..exceptions import CampaignError
from .spec import CampaignGrid, CampaignSpec
from .store import ResultStore
from .runner import plan_campaign


class Aggregator:
    """Group one campaign's stored points into per-grid row tables."""

    def __init__(self, spec: CampaignSpec, store: ResultStore) -> None:
        self.spec = spec
        self.store = store

    # ------------------------------------------------------------------
    def _grid_records(self, grid: CampaignGrid) -> List[Tuple[Dict, Dict]]:
        """(point params, stored record) pairs for completed grid points."""
        out = []
        for point in grid.points():
            dataset_hash = self.store.dataset_hash(point.dataset)
            key = point.key(dataset_hash)
            if self.store.has(key):
                out.append((point, self.store.get(key)))
        return out

    def rows(self, grid: CampaignGrid) -> List[Dict[str, Any]]:
        """Aggregated rows for one grid (sorted by x; may be partial).

        One row per combination of the grid's non-series axes; the
        series axis (solver or capture model) pivots into ``*_s`` /
        ``*_spread`` columns.  Axes with a single declared value are
        folded out of the row key (they are constants of the grid).
        """
        multi_ds = len(grid.datasets) > 1
        multi_tau = len(grid.taus) > 1 and grid.x != "tau"
        multi_k = len(grid.ks) > 1 and grid.x != "k"
        groups: Dict[Any, Dict[str, Any]] = {}
        selections: Dict[Any, Dict[str, Any]] = {}
        for point, record in self._grid_records(grid):
            x_value = record["x"].get(grid.x)
            if x_value is None:
                raise CampaignError(
                    f"grid {grid.name!r} pivots on x={grid.x!r} but record "
                    f"{record['key'][:12]} carries no such value"
                )
            base: Dict[str, Any] = {"dataset": point.dataset.kind}
            if multi_ds and grid.x not in ("users", "candidates",
                                           "facilities", "r"):
                base["dataset"] = point.dataset.label()
            if multi_tau:
                base["tau"] = point.tau
            if multi_k:
                base["k"] = point.k
            base[grid.x] = x_value
            group_key = (x_value,) + tuple(
                base[c] for c in ("dataset", "tau", "k") if c in base
            )
            row = groups.setdefault(
                group_key, {**base, "repeats": record["timing"]["repeats"]}
            )
            series = point.series_value(grid.series)
            row[f"{series}_s"] = record["timing"]["median_s"]
            row[f"{series}_spread"] = record["timing"]["spread_s"]
            row["repeats"] = min(row["repeats"], record["timing"]["repeats"])
            if grid.workload == "compete":
                row[f"{series}_erosion"] = record["result"]["erosion"]
                row[f"{series}_recovered"] = record["result"]["recovered"]
            elif grid.series == "solver":
                # All solvers must return one selection per row — the
                # same agreement check the figure sweeps assert inline.
                selections.setdefault(group_key, {})[series] = tuple(
                    record["result"]["selected"]
                )
        for group_key, by_series in selections.items():
            if len(by_series) > 1:
                agree = len(set(by_series.values())) == 1
                groups[group_key]["agree"] = "yes" if agree else "NO"
        return [groups[gk] for gk in sorted(groups)]

    def tables(self) -> Dict[str, List[Dict[str, Any]]]:
        """Rows for every grid, keyed by grid name."""
        return {grid.name: self.rows(grid) for grid in self.spec.grids}

    # ------------------------------------------------------------------
    def completion(self) -> Dict[str, Dict[str, int]]:
        """Per-grid point completion counts (the `status` payload)."""
        plan = plan_campaign(self.spec, self.store, resume=True)
        by_grid: Dict[str, Dict[str, int]] = {
            g.name: {"total": 0, "complete": 0} for g in self.spec.grids
        }
        for task in plan.cached:
            by_grid[task.grid]["total"] += 1
            by_grid[task.grid]["complete"] += 1
        for task in plan.tasks:
            by_grid[task.grid]["total"] += 1
        return by_grid

    def missing_keys(self) -> List[Tuple[str, str]]:
        """(grid, key) for every point not yet in the store."""
        plan = plan_campaign(self.spec, self.store, resume=True)
        return [(t.grid, t.key) for t in plan.tasks]

    # ------------------------------------------------------------------
    def report(
        self,
        results_dir: str = "benchmarks/results",
        svg: bool = True,
    ) -> Dict[str, str]:
        """Render every non-empty grid via the bench reporting registry.

        Returns the rendered text tables keyed by grid name; runtime
        grids with a numeric x additionally get a log-scale SVG next to
        the row tables (best-effort, like the bench scripts).
        """
        rendered: Dict[str, str] = {}
        for grid in self.spec.grids:
            rows = self.rows(grid)
            if not rows:
                continue
            title = grid.title or f"Campaign {self.spec.name} - {grid.name}"
            rendered[grid.name] = record_table(
                title, rows, results_dir=results_dir
            )
            if svg and isinstance(rows[0][grid.x], (int, float)):
                chart_rows = [
                    {k: v for k, v in row.items()
                     if not k.endswith("_spread")}
                    for row in rows
                ]
                try:
                    save_runtime_figure(
                        chart_rows, grid.x, title,
                        f"Campaign_{self.spec.name}_{grid.name}.svg",
                        results_dir=results_dir,
                    )
                except Exception:
                    pass  # charts are secondary to the row tables
        return rendered
