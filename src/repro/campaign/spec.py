"""Declarative campaign specs: parameter grids expanded into run points.

A :class:`CampaignSpec` is the portable description of one experiment
campaign — a named list of :class:`CampaignGrid`\\ s, each a cartesian
parameter grid (dataset spec × solver × capture model × kernel knobs ×
τ × k, with a repeats count and an optional per-point timeout).  A grid
expands deterministically into :class:`RunPoint`\\ s, the memoization
unit of the campaign layer: one point = one workload executed
``repeats`` times under one fully pinned parameter combination.

The hash-key contract (what the on-disk result store keys on):

* the **dataset** enters the key through its realized
  :func:`~repro.service.dataset_content_hash` — *not* through the axis
  parameters that generated it.  Two axis specs that generate identical
  data share one cached point; any change that alters a coordinate
  (scale env vars, generator edits, seeds) changes the key and forces a
  re-run.
* the **run parameters** enter through a canonical JSON hash of
  ``(workload, solver, capture, τ, k, k_rival, repeats, batch_verify,
  fast_select)``.  Capture params are canonicalised first
  (:func:`canonical_capture`): parameters foreign to the named model are
  dropped, exactly like :meth:`~repro.capture.CaptureSpec.cache_key`,
  so an ``evenly-split`` point never re-runs because an ignored
  ``mnl_beta`` changed.

Keys are therefore stable across processes, hosts and axis orderings —
the property the resumability tests pin.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from ..capture import REGISTERED_MODELS, CaptureSpec
from ..exceptions import CampaignError

#: Solver names a campaign point may run (the CLI's solver registry).
CAMPAIGN_SOLVERS: Tuple[str, ...] = (
    "baseline", "k-cifp", "iqt", "iqt-c", "iqt-pino"
)

#: Workloads a grid can declare: a plain resolve+select solve, or one
#: two-player best-response round (the capture-duel protocol).
WORKLOADS: Tuple[str, ...] = ("solve", "compete")

#: Axis names an aggregation can use as the table's x column.
X_AXES: Tuple[str, ...] = ("users", "candidates", "facilities", "r", "tau", "k")

SPEC_VERSION = 1


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable floats."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_capture(params: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    """A capture-param dict reduced to its objective-relevant fields.

    Mirrors :meth:`~repro.capture.CaptureSpec.cache_key`: the returned
    dict carries exactly the parameters the named model reads, so two
    declarations differing only in foreign params hash identically.
    Unknown model names raise the registry's actionable error.
    """
    spec = CaptureSpec(**(params or {}))
    key = spec.cache_key()
    canonical: Dict[str, Any] = {"model": key[0]}
    if spec.model == "huff":
        canonical["huff_utility"] = float(spec.huff_utility)
    elif spec.model == "mnl":
        canonical["mnl_beta"] = float(spec.mnl_beta)
    elif spec.model == "fixed-worlds":
        canonical["mnl_beta"] = float(spec.mnl_beta)
        canonical["worlds"] = int(spec.worlds)
        canonical["world_seed"] = int(spec.world_seed)
    return canonical


@dataclass(frozen=True)
class DatasetAxis:
    """One declarative dataset point: a benchmark population + sampling.

    Builds through :mod:`repro.bench.datasets`, so campaign points run
    on byte-identical data to the ``bench_fig*`` scripts (same cached
    populations, same candidate/facility sampling seed, same
    ``REPRO_BENCH_USERS_*`` scale knobs).  ``users_frac`` subsamples
    users (Fig. 10 protocol, seed 3); ``r`` subsamples positions per
    user (Figs. 15–16 protocol, seed 4).
    """

    kind: str = "C"
    n_candidates: Optional[int] = None
    n_facilities: Optional[int] = None
    users_frac: Optional[float] = None
    r: Optional[int] = None
    sample_seed: int = 1
    users_seed: int = 3
    r_seed: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ("C", "N"):
            raise CampaignError(
                f"dataset kind must be 'C' or 'N', got {self.kind!r}"
            )
        if self.users_frac is not None and not 0.0 < self.users_frac <= 1.0:
            raise CampaignError(
                f"users_frac must be in (0, 1], got {self.users_frac}"
            )
        if self.r is not None and self.r < 1:
            raise CampaignError(f"r must be >= 1, got {self.r}")

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for key in ("n_candidates", "n_facilities", "users_frac", "r"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        for key, default in (
            ("sample_seed", 1), ("users_seed", 3), ("r_seed", 4)
        ):
            if getattr(self, key) != default:
                out[key] = getattr(self, key)
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "DatasetAxis":
        known = {
            "kind", "n_candidates", "n_facilities", "users_frac", "r",
            "sample_seed", "users_seed", "r_seed",
        }
        unknown = set(spec) - known
        if unknown:
            raise CampaignError(
                f"unknown dataset axis fields: {sorted(unknown)}"
            )
        return cls(**spec)

    def build(self):
        """Materialise the dataset (cached populations; deterministic)."""
        from ..bench import datasets as bench_datasets

        kwargs: Dict[str, Any] = {"seed": self.sample_seed}
        if self.n_candidates is not None:
            kwargs["n_candidates"] = self.n_candidates
        if self.n_facilities is not None:
            kwargs["n_facilities"] = self.n_facilities
        ds = bench_datasets.dataset(self.kind, **kwargs)
        if self.users_frac is not None and self.users_frac < 1.0:
            n = max(1, int(len(ds.users) * self.users_frac))
            if n < len(ds.users):
                ds = ds.subsample_users(n, seed=self.users_seed)
        if self.r is not None:
            ds = ds.subsample_positions(self.r, seed=self.r_seed)
        return ds

    def label(self) -> str:
        parts = [self.kind]
        if self.users_frac is not None:
            parts.append(f"u{self.users_frac:g}")
        if self.n_candidates is not None:
            parts.append(f"c{self.n_candidates}")
        if self.n_facilities is not None:
            parts.append(f"f{self.n_facilities}")
        if self.r is not None:
            parts.append(f"r{self.r}")
        return "-".join(parts)


@dataclass(frozen=True)
class RunPoint:
    """One fully pinned parameter combination — the memoization unit."""

    grid: str
    workload: str
    dataset: DatasetAxis
    solver: str
    capture: Tuple[Tuple[str, Any], ...]  # canonical capture params, sorted
    tau: float
    k: int
    repeats: int
    batch_verify: bool = True
    fast_select: bool = True
    k_rival: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise CampaignError(
                f"unknown workload {self.workload!r}; one of {WORKLOADS}"
            )
        if self.solver not in CAMPAIGN_SOLVERS:
            raise CampaignError(
                f"unknown solver {self.solver!r}; one of {CAMPAIGN_SOLVERS}"
            )
        if self.repeats < 1:
            raise CampaignError(f"repeats must be >= 1, got {self.repeats}")
        if self.k < 1:
            raise CampaignError(f"k must be >= 1, got {self.k}")

    # ------------------------------------------------------------------
    @property
    def capture_params(self) -> Dict[str, Any]:
        return dict(self.capture)

    def series_value(self, axis: str) -> str:
        """This point's value along a grid's series axis."""
        return self.solver if axis == "solver" else self.capture_params["model"]

    def run_params(self) -> Dict[str, Any]:
        """The key-relevant run parameters (dataset handled separately)."""
        params: Dict[str, Any] = {
            "workload": self.workload,
            "solver": self.solver,
            "capture": self.capture_params,
            "tau": float(self.tau),
            "k": int(self.k),
            "repeats": int(self.repeats),
            "batch_verify": bool(self.batch_verify),
            "fast_select": bool(self.fast_select),
        }
        if self.workload == "compete":
            params["k_rival"] = self.k_rival
        return params

    def params(self) -> Dict[str, Any]:
        """Everything the executor needs, JSON-portable."""
        params = self.run_params()
        params["dataset"] = self.dataset.as_dict()
        return params

    def key(self, dataset_hash: str) -> str:
        """Content-hash key binding run params to the realized dataset.

        ``dataset_hash`` is the dataset's
        :func:`~repro.service.dataset_content_hash`; the run params are
        hashed in canonical JSON form.  Stable across processes, hosts
        and axis orderings.
        """
        payload = canonical_json(
            {"dataset_hash": dataset_hash, "params": self.run_params()}
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    @classmethod
    def from_params(cls, grid: str, params: Dict[str, Any]) -> "RunPoint":
        """Rebuild a point from its serialised :meth:`params` form."""
        return cls(
            grid=grid,
            workload=params["workload"],
            dataset=DatasetAxis.from_dict(params["dataset"]),
            solver=params["solver"],
            capture=tuple(sorted(canonical_capture(params["capture"]).items())),
            tau=float(params["tau"]),
            k=int(params["k"]),
            repeats=int(params["repeats"]),
            batch_verify=bool(params.get("batch_verify", True)),
            fast_select=bool(params.get("fast_select", True)),
            k_rival=params.get("k_rival"),
        )


@dataclass(frozen=True)
class CampaignGrid:
    """One cartesian grid within a campaign.

    Axes (each a sequence; singletons are fine): ``datasets``,
    ``solvers``, ``captures``, ``taus``, ``ks``, plus scalar knobs
    ``batch_verify`` / ``fast_select`` and the per-point ``repeats``.
    ``x`` names the aggregation's x column (one of :data:`X_AXES`);
    ``series`` names the pivoted axis (``solver`` or ``capture``).
    """

    name: str
    datasets: Tuple[DatasetAxis, ...]
    solvers: Tuple[str, ...] = ("iqt",)
    captures: Tuple[Tuple[Tuple[str, Any], ...], ...] = (
        (("model", "evenly-split"),),
    )
    taus: Tuple[float, ...] = (0.7,)
    ks: Tuple[int, ...] = (10,)
    workload: str = "solve"
    x: str = "k"
    series: str = "solver"
    repeats: int = 3
    batch_verify: bool = True
    fast_select: bool = True
    k_rival: Optional[int] = None
    timeout_s: Optional[float] = None
    title: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("grid name must be non-empty")
        if self.x not in X_AXES:
            raise CampaignError(f"unknown x axis {self.x!r}; one of {X_AXES}")
        if self.series not in ("solver", "capture"):
            raise CampaignError(
                f"series must be 'solver' or 'capture', got {self.series!r}"
            )
        if not self.datasets:
            raise CampaignError(f"grid {self.name!r} declares no datasets")

    def points(self) -> Iterator[RunPoint]:
        """Expand the grid in deterministic declaration order."""
        for dataset in self.datasets:
            for solver in self.solvers:
                for capture in self.captures:
                    for tau in self.taus:
                        for k in self.ks:
                            yield RunPoint(
                                grid=self.name,
                                workload=self.workload,
                                dataset=dataset,
                                solver=solver,
                                capture=capture,
                                tau=float(tau),
                                k=int(k),
                                repeats=self.repeats,
                                batch_verify=self.batch_verify,
                                fast_select=self.fast_select,
                                k_rival=self.k_rival,
                            )

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "workload": self.workload,
            "x": self.x,
            "series": self.series,
            "repeats": self.repeats,
            "datasets": [d.as_dict() for d in self.datasets],
            "solvers": list(self.solvers),
            "captures": [dict(c) for c in self.captures],
            "taus": list(self.taus),
            "ks": list(self.ks),
            "batch_verify": self.batch_verify,
            "fast_select": self.fast_select,
        }
        if self.k_rival is not None:
            out["k_rival"] = self.k_rival
        if self.timeout_s is not None:
            out["timeout_s"] = self.timeout_s
        if self.title:
            out["title"] = self.title
        return out

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "CampaignGrid":
        known = {
            "name", "workload", "x", "series", "repeats", "datasets",
            "solvers", "captures", "taus", "ks", "batch_verify",
            "fast_select", "k_rival", "timeout_s", "title",
        }
        unknown = set(spec) - known
        if unknown:
            raise CampaignError(
                f"unknown grid fields in {spec.get('name', '?')!r}: "
                f"{sorted(unknown)}"
            )
        return cls(
            name=spec["name"],
            datasets=tuple(
                DatasetAxis.from_dict(d) for d in spec["datasets"]
            ),
            solvers=tuple(spec.get("solvers", ("iqt",))),
            captures=tuple(
                tuple(sorted(canonical_capture(c).items()))
                for c in spec.get("captures", ({"model": "evenly-split"},))
            ),
            taus=tuple(float(t) for t in spec.get("taus", (0.7,))),
            ks=tuple(int(k) for k in spec.get("ks", (10,))),
            workload=spec.get("workload", "solve"),
            x=spec.get("x", "k"),
            series=spec.get("series", "solver"),
            repeats=int(spec.get("repeats", 3)),
            batch_verify=bool(spec.get("batch_verify", True)),
            fast_select=bool(spec.get("fast_select", True)),
            k_rival=spec.get("k_rival"),
            timeout_s=spec.get("timeout_s"),
            title=spec.get("title", ""),
        )


def grid(
    name: str,
    datasets: Sequence[DatasetAxis],
    captures: Sequence[Dict[str, Any]] = ({"model": "evenly-split"},),
    **kwargs: Any,
) -> CampaignGrid:
    """Convenience constructor taking plain dicts for capture axes."""
    return CampaignGrid(
        name=name,
        datasets=tuple(datasets),
        captures=tuple(
            tuple(sorted(canonical_capture(c).items())) for c in captures
        ),
        **kwargs,
    )


@dataclass(frozen=True)
class CampaignSpec:
    """A named list of grids — the unit `campaign run` executes."""

    name: str
    grids: Tuple[CampaignGrid, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign name must be non-empty")
        names = [g.name for g in self.grids]
        if len(names) != len(set(names)):
            raise CampaignError(f"duplicate grid names in {self.name!r}")

    def points(self) -> List[Tuple[CampaignGrid, RunPoint]]:
        return [(g, p) for g in self.grids for p in g.points()]

    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        return {
            "version": SPEC_VERSION,
            "name": self.name,
            "description": self.description,
            "grids": [g.as_dict() for g in self.grids],
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "CampaignSpec":
        version = int(spec.get("version", SPEC_VERSION))
        if version > SPEC_VERSION:
            raise CampaignError(
                f"campaign spec version {version} is newer than supported "
                f"({SPEC_VERSION})"
            )
        return cls(
            name=spec["name"],
            grids=tuple(CampaignGrid.from_dict(g) for g in spec["grids"]),
            description=spec.get("description", ""),
        )

    @classmethod
    def from_json(cls, path: str | Path) -> "CampaignSpec":
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError) as exc:
            raise CampaignError(
                f"cannot read campaign spec {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)

    def save_json(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"
        )
