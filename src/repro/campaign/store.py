"""On-disk result store: atomic, content-hash-keyed point records.

Layout under one campaign root::

    <root>/
      spec.json            # the spec that last ran here (audit)
      points/<key>.json    # one atomic record per completed point
      dataset_hashes.json  # axis-param hash -> dataset content hash memo
      failures.jsonl       # append-only log of failed/timed-out attempts

Records are written with ``tmp + os.replace`` so a killed run can never
leave a half-written point behind: a key either resolves to a complete
record or to nothing, which is exactly the property ``--resume`` leans
on.  Record files are serialised with sorted keys and a fixed indent,
so two runs that compute the same result write byte-identical files.

The dataset-hash memo exists because point keys embed the *realized*
dataset content hash (see :mod:`repro.campaign.spec`): computing a key
requires generating the dataset once.  The memo caches
``axis params -> content hash`` so `status` and re-runs skip
regeneration; executors re-derive the hash from the data they actually
built and refuse to store a record under a contradicting key.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from ..exceptions import CampaignError
from .spec import DatasetAxis, canonical_json

RECORD_SCHEMA = 1


def _atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write ``payload`` to ``path`` atomically (tmp + rename)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


class ResultStore:
    """Directory-backed store of completed campaign points."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.points_dir = self.root / "points"
        self._dataset_memo_path = self.root / "dataset_hashes.json"
        self._failures_path = self.root / "failures.jsonl"
        self._dataset_memo: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    def point_path(self, key: str) -> Path:
        return self.points_dir / f"{key}.json"

    def has(self, key: str) -> bool:
        return self.point_path(key).is_file()

    def get(self, key: str) -> Dict[str, Any]:
        path = self.point_path(key)
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CampaignError(f"cannot read point record {path}: {exc}") from exc
        if record.get("key") != key:
            raise CampaignError(
                f"point record {path} claims key {record.get('key')!r}"
            )
        return record

    def put(self, record: Dict[str, Any]) -> Path:
        """Persist one completed point atomically.

        The record must carry its own ``key``; an existing record under
        the same key is replaced wholesale (same-key records are
        interchangeable by construction).
        """
        key = record.get("key")
        if not key:
            raise CampaignError("point record has no key")
        path = self.point_path(key)
        _atomic_write_json(path, record)
        return path

    def keys(self) -> List[str]:
        if not self.points_dir.is_dir():
            return []
        return sorted(p.stem for p in self.points_dir.glob("*.json"))

    def records(self) -> Iterator[Dict[str, Any]]:
        for key in self.keys():
            yield self.get(key)

    def clean(self) -> int:
        """Drop every stored point, memo and failure log; return #points."""
        dropped = 0
        if self.points_dir.is_dir():
            for path in self.points_dir.glob("*.json"):
                path.unlink()
                dropped += 1
        for path in (self._dataset_memo_path, self._failures_path,
                     self.root / "spec.json"):
            if path.is_file():
                path.unlink()
        self._dataset_memo = None
        return dropped

    # ------------------------------------------------------------------
    def save_spec(self, spec_dict: Dict[str, Any]) -> None:
        _atomic_write_json(self.root / "spec.json", spec_dict)

    def log_failure(self, key: str, grid: str, reason: str) -> None:
        """Append one failed/timed-out attempt (best-effort)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self._failures_path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps({
                    "key": key,
                    "grid": grid,
                    "reason": reason,
                    "at": time.time(),
                }) + "\n")
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Dataset content-hash memo
    # ------------------------------------------------------------------
    @staticmethod
    def axis_param_hash(axis: DatasetAxis) -> str:
        """Hash of the axis *parameters* (the memo's lookup key)."""
        payload = canonical_json(axis.as_dict())
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]

    def _load_memo(self) -> Dict[str, str]:
        if self._dataset_memo is None:
            try:
                self._dataset_memo = json.loads(
                    self._dataset_memo_path.read_text()
                )
            except (OSError, ValueError):
                self._dataset_memo = {}
        return self._dataset_memo

    def dataset_hash(self, axis: DatasetAxis) -> str:
        """The realized content hash for an axis, memoized on disk.

        First request per distinct axis generates the dataset (cached in
        process by :mod:`repro.bench.datasets`) and records its
        :func:`~repro.service.dataset_content_hash`; later requests —
        including from later runs — read the memo.  The memo is an
        optimisation only: executors always re-derive the hash from the
        data they built, so a stale memo entry surfaces as a loud
        key-contradiction failure rather than a silently wrong reuse.
        """
        memo = self._load_memo()
        param_key = self.axis_param_hash(axis)
        cached = memo.get(param_key)
        if cached is not None:
            return cached
        from ..service import dataset_content_hash

        content = dataset_content_hash(axis.build())
        memo[param_key] = content
        _atomic_write_json(self._dataset_memo_path, memo)
        return content
