"""Shipped campaign specs: the repo's standing experiment protocols.

Three campaigns ship with the repo:

* ``fig-runtime-sweep`` — the paper's Fig. 10–16 runtime sweeps (vary
  users / candidates / facilities / τ / k / r on both dataset kinds,
  all four algorithms), expressed as one declarative campaign.  Point
  for point it matches the ``bench_fig10``–``bench_fig16`` protocols —
  same cached populations, same subsampling seeds, same solver set —
  but each point carries ``repeats >= 3`` with median/spread instead of
  the scripts' single samples, and re-runs are incremental.
* ``capture-duel`` — the two-player best-response round under every
  registered capture model as k grows (the ``compete`` protocol from
  PR 8, now with repeats and resumability).
* ``smoke`` — a 2×2 (τ × k) grid on a tiny population; the CI job runs
  it twice and asserts the second pass is 100% cache hits.

Use :func:`get_spec` to resolve a name (the CLI accepts these names or
a path to a spec JSON).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from ..bench.datasets import K_SWEEP, R_SWEEP, SIZE_SWEEP, TAU_SWEEP
from ..exceptions import CampaignError
from .spec import CampaignSpec, DatasetAxis, grid

#: The four algorithms every runtime figure compares (Figs. 10–16).
FIG_SOLVERS: Tuple[str, ...] = ("baseline", "k-cifp", "iqt-c", "iqt")

#: User-count fractions of the Fig. 10 protocol.
USER_FRACTIONS: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.0)


def fig_runtime_sweep_spec(repeats: int = 3) -> CampaignSpec:
    """Figs. 10–16 as one campaign (both dataset kinds, 4 solvers)."""
    grids = []
    for kind in ("C", "N"):
        grids.append(grid(
            f"fig10-{kind}",
            [DatasetAxis(kind=kind, users_frac=f) for f in USER_FRACTIONS],
            solvers=FIG_SOLVERS, x="users", repeats=repeats,
            title=f"Fig 10 - runtime vs users ({kind}-like, campaign)",
        ))
        grids.append(grid(
            f"fig11-{kind}",
            [DatasetAxis(kind=kind, n_candidates=n) for n in SIZE_SWEEP],
            solvers=FIG_SOLVERS, x="candidates", repeats=repeats,
            title=f"Fig 11 - runtime vs candidates ({kind}-like, campaign)",
        ))
        grids.append(grid(
            f"fig12-{kind}",
            [DatasetAxis(kind=kind, n_facilities=n) for n in SIZE_SWEEP],
            solvers=FIG_SOLVERS, x="facilities", repeats=repeats,
            title=f"Fig 12 - runtime vs facilities ({kind}-like, campaign)",
        ))
        grids.append(grid(
            f"fig13-{kind}",
            [DatasetAxis(kind=kind)],
            solvers=FIG_SOLVERS, taus=TAU_SWEEP, x="tau", repeats=repeats,
            title=f"Fig 13 - runtime vs tau ({kind}-like, campaign)",
        ))
        grids.append(grid(
            f"fig14-{kind}",
            [DatasetAxis(kind=kind)],
            solvers=FIG_SOLVERS, ks=K_SWEEP, x="k", repeats=repeats,
            title=f"Fig 14 - runtime vs k ({kind}-like, campaign)",
        ))
    grids.append(grid(
        "fig15-C",
        [DatasetAxis(kind="C", r=r) for r in R_SWEEP],
        solvers=FIG_SOLVERS, x="r", repeats=repeats,
        title="Fig 15 - runtime vs r (C-like, campaign)",
    ))
    grids.append(grid(
        "fig16-N",
        [DatasetAxis(kind="N", r=r) for r in R_SWEEP],
        solvers=FIG_SOLVERS, x="r", repeats=repeats,
        title="Fig 16 - runtime vs r (N-like, campaign)",
    ))
    return CampaignSpec(
        name="fig-runtime-sweep",
        grids=tuple(grids),
        description="Paper Figs. 10-16 runtime sweeps with repeats/spread",
    )


def capture_duel_spec(repeats: int = 3) -> CampaignSpec:
    """Best-response duel across every registered capture model."""
    captures = (
        {"model": "evenly-split"},
        {"model": "huff", "huff_utility": 0.5},
        {"model": "mnl", "mnl_beta": 2.0},
        {"model": "fixed-worlds", "mnl_beta": 2.0, "worlds": 16,
         "world_seed": 0},
    )
    duel = grid(
        "duel-C",
        [DatasetAxis(kind="C", users_frac=0.4)],
        captures=captures,
        solvers=("iqt",),
        ks=(3, 5, 8),
        workload="compete",
        x="k",
        series="capture",
        repeats=repeats,
        title="Capture duel - erosion and round time vs k (C-like)",
    )
    return CampaignSpec(
        name="capture-duel",
        grids=(duel,),
        description="Two-player best-response round per capture model",
    )


def smoke_spec(repeats: int = 2) -> CampaignSpec:
    """A 2×2 (τ × k) grid on a tiny population — seconds, not minutes."""
    tiny = grid(
        "smoke-2x2",
        [DatasetAxis(kind="C", users_frac=0.05, n_candidates=12,
                     n_facilities=24)],
        solvers=("iqt",),
        taus=(0.6, 0.7),
        ks=(2, 3),
        x="k",
        repeats=repeats,
        title="Campaign smoke - 2x2 grid",
    )
    return CampaignSpec(
        name="smoke",
        grids=(tiny,),
        description="Tiny 2x2 grid for CI cache-hit verification",
    )


SHIPPED_SPECS: Dict[str, Callable[[], CampaignSpec]] = {
    "fig-runtime-sweep": fig_runtime_sweep_spec,
    "capture-duel": capture_duel_spec,
    "smoke": smoke_spec,
}


def get_spec(name: str) -> CampaignSpec:
    """Resolve a shipped campaign spec by name."""
    try:
        return SHIPPED_SPECS[name]()
    except KeyError:
        raise CampaignError(
            f"unknown campaign {name!r}; shipped campaigns: "
            + ", ".join(sorted(SHIPPED_SPECS))
        ) from None
