"""Campaign execution: plan the missing points, fan them out, persist.

The runner turns a :class:`~repro.campaign.CampaignSpec` plus a
:class:`~repro.campaign.ResultStore` into a completed campaign:

1. **Plan** — every grid point is expanded and keyed (dataset content
   hash + canonical run params); keys already present in the store are
   *cached* and never re-executed.  This is what makes re-runs after an
   edit, a kill or a grid extension incremental: the plan is recomputed
   from scratch every run, the store decides what is left.
2. **Execute** — missing points run inline (``workers=0``) or across a
   pool of persistent worker processes (``workers>=1``), each point
   isolated: a worker crash or a per-point timeout kills and respawns
   only that worker, logs the failure, and the run continues.  Workers
   write records into the store themselves (atomic rename), so a
   SIGKILL of the whole process group can never lose a completed point
   or persist a partial one.

Worker protocol: one duplex pipe per worker; the parent sends one task
dict at a time and multiplexes completions with
:func:`multiprocessing.connection.wait`, enforcing per-point deadlines
against its own clock.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as conn_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..exceptions import CampaignError
from .points import execute_point
from .spec import CampaignSpec
from .store import ResultStore

ProgressFn = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class PointTask:
    """One planned unit of work, fully serialisable to a worker."""

    key: str
    grid: str
    params: Dict[str, Any]
    campaign: str
    timeout_s: Optional[float] = None

    def as_message(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "grid": self.grid,
            "params": self.params,
            "campaign": self.campaign,
        }


@dataclass
class CampaignPlan:
    """The run's work split: what is cached, what still needs executing."""

    tasks: List[PointTask]
    cached: List[PointTask]

    @property
    def total(self) -> int:
        return len(self.tasks) + len(self.cached)


@dataclass
class RunReport:
    """What one ``run`` invocation did."""

    total: int = 0
    executed: int = 0
    cached: int = 0
    failed: List[Tuple[str, str, str]] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": [
                {"key": k, "grid": g, "reason": r} for k, g, r in self.failed
            ],
            "wall_s": self.wall_s,
        }


def plan_campaign(
    spec: CampaignSpec, store: ResultStore, resume: bool = True
) -> CampaignPlan:
    """Expand the spec into keyed tasks, split by store completion.

    With ``resume=False`` every point is planned for execution (stored
    records are overwritten when the fresh results land).
    """
    tasks: List[PointTask] = []
    cached: List[PointTask] = []
    for grid, point in spec.points():
        dataset_hash = store.dataset_hash(point.dataset)
        task = PointTask(
            key=point.key(dataset_hash),
            grid=grid.name,
            params=point.params(),
            campaign=spec.name,
            timeout_s=grid.timeout_s,
        )
        if resume and store.has(task.key):
            cached.append(task)
        else:
            tasks.append(task)
    return CampaignPlan(tasks=tasks, cached=cached)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(conn, store_root: str) -> None:  # pragma: no cover - subprocess
    """Worker loop: receive a task, execute, persist, acknowledge."""
    store = ResultStore(store_root)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        key = message["key"]
        try:
            record = execute_point(
                message["grid"],
                message["params"],
                campaign=message["campaign"],
                expected_key=key,
            )
            store.put(record)
            reply = ("ok", key)
        except BaseException as exc:  # crash isolation: report, keep serving
            reply = ("error", key, f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break


class _Worker:
    """Parent-side handle on one worker process."""

    def __init__(self, ctx, store_root: str) -> None:
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, store_root),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.task: Optional[PointTask] = None
        self.started: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task is not None

    def assign(self, task: PointTask) -> None:
        self.task = task
        self.started = time.perf_counter()
        self.conn.send(task.as_message())

    def timed_out(self) -> bool:
        return (
            self.task is not None
            and self.task.timeout_s is not None
            and time.perf_counter() - self.started > self.task.timeout_s
        )

    def kill(self) -> None:
        try:
            self.proc.kill()
        except (OSError, AttributeError):  # pragma: no cover - defensive
            pass
        self.proc.join(timeout=5)
        self.conn.close()

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(timeout=5)
        if self.proc.is_alive():  # pragma: no cover - defensive
            self.proc.kill()
            self.proc.join(timeout=5)
        self.conn.close()


class CampaignRunner:
    """Drive one campaign against one store.

    Args:
        spec: The campaign to execute.
        store: Result store (one campaign per root).
        workers: ``0`` runs points inline in this process (no crash
            isolation — test/smoke mode); ``>= 1`` uses that many
            persistent worker processes.
        timeout_s: Per-point timeout overriding every grid's own.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        store: ResultStore,
        workers: int = 0,
        timeout_s: Optional[float] = None,
    ) -> None:
        if workers < 0:
            raise CampaignError(f"workers must be >= 0, got {workers}")
        self.spec = spec
        self.store = store
        self.workers = workers
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def run(self, resume: bool = True, progress: ProgressFn = None) -> RunReport:
        """Execute the campaign; return what was done.

        ``resume=True`` (the default everywhere) executes only points
        missing from the store; ``resume=False`` re-executes everything.
        """
        t0 = time.perf_counter()
        say = progress or (lambda _msg: None)
        plan = plan_campaign(self.spec, self.store, resume=resume)
        self.store.save_spec(self.spec.as_dict())
        report = RunReport(total=plan.total, cached=len(plan.cached))
        tasks = list(plan.tasks)
        if self.timeout_s is not None:
            tasks = [
                PointTask(
                    key=t.key, grid=t.grid, params=t.params,
                    campaign=t.campaign, timeout_s=self.timeout_s,
                )
                for t in tasks
            ]
        say(f"campaign {self.spec.name!r}: {len(tasks)} to run, "
            f"{len(plan.cached)} cached")
        if not tasks:
            report.wall_s = time.perf_counter() - t0
            return report
        if self.workers == 0:
            self._run_inline(tasks, report, say)
        else:
            self._run_pool(tasks, report, say)
        report.wall_s = time.perf_counter() - t0
        return report

    # ------------------------------------------------------------------
    def _run_inline(
        self, tasks: List[PointTask], report: RunReport, say: Callable[[str], None]
    ) -> None:
        for i, task in enumerate(tasks, 1):
            try:
                record = execute_point(
                    task.grid, task.params,
                    campaign=task.campaign, expected_key=task.key,
                )
                self.store.put(record)
                report.executed += 1
                say(f"[{i}/{len(tasks)}] {task.grid} {task.key[:12]} ok")
            except Exception as exc:
                reason = f"{type(exc).__name__}: {exc}"
                report.failed.append((task.key, task.grid, reason))
                self.store.log_failure(task.key, task.grid, reason)
                say(f"[{i}/{len(tasks)}] {task.grid} {task.key[:12]} "
                    f"FAILED: {reason}")

    # ------------------------------------------------------------------
    def _run_pool(
        self, tasks: List[PointTask], report: RunReport, say: Callable[[str], None]
    ) -> None:
        ctx = multiprocessing.get_context()
        pending = list(reversed(tasks))  # pop() serves declaration order
        n_workers = min(self.workers, len(tasks))
        pool: List[_Worker] = [
            _Worker(ctx, str(self.store.root)) for _ in range(n_workers)
        ]
        done = 0
        total = len(tasks)

        def fail(task: PointTask, reason: str) -> None:
            nonlocal done
            done += 1
            report.failed.append((task.key, task.grid, reason))
            self.store.log_failure(task.key, task.grid, reason)
            say(f"[{done}/{total}] {task.grid} {task.key[:12]} "
                f"FAILED: {reason}")

        try:
            while done < total:
                for worker in list(pool):
                    if not worker.busy and pending:
                        task = pending.pop()
                        try:
                            worker.assign(task)
                        except (BrokenPipeError, OSError):
                            # Worker died between points: respawn, requeue.
                            pending.append(task)
                            worker.task = None
                            worker.kill()
                            pool.remove(worker)
                            pool.append(_Worker(ctx, str(self.store.root)))
                busy = [w for w in pool if w.busy]
                if not busy:
                    break  # nothing in flight and nothing assignable
                ready = conn_wait([w.conn for w in busy], timeout=0.2)
                for worker in list(pool):
                    if worker.conn not in ready:
                        continue
                    task = worker.task
                    try:
                        reply = worker.conn.recv()
                    except (EOFError, OSError):
                        # Worker died mid-point: isolate and respawn.
                        fail(task, "worker process died")
                        worker.kill()
                        pool.remove(worker)
                        if pending:
                            pool.append(_Worker(ctx, str(self.store.root)))
                        continue
                    worker.task = None
                    if reply[0] == "ok":
                        done += 1
                        report.executed += 1
                        say(f"[{done}/{total}] {task.grid} "
                            f"{task.key[:12]} ok")
                    else:
                        fail(task, reply[2])
                for worker in list(pool):
                    if worker.timed_out():
                        fail(worker.task, f"timeout after {worker.task.timeout_s}s")
                        worker.kill()
                        pool.remove(worker)
                        pool.append(_Worker(ctx, str(self.store.root)))
        finally:
            for worker in pool:
                if worker.busy:
                    worker.kill()
                else:
                    worker.stop()
