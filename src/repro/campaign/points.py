"""Point execution: one pinned parameter combination, repeats-timed.

:func:`execute_point` is the function campaign workers run.  It builds
the point's dataset, re-derives the dataset content hash from the data
it actually built (refusing to proceed under a contradicting key — the
guard against a stale dataset-hash memo), runs the declared workload
``repeats`` times, and returns the JSON-ready record the store
persists.

Records split cleanly into a **deterministic** part (``params``,
``dataset_hash``, ``x``, ``result``) and a **measured** part
(``timing``, ``meta``).  The deterministic part is byte-identical
across runs, hosts and interleavings — the resumability tests compare
it directly; the timing part follows the repeats/median/spread
discipline of :mod:`repro.bench.timing`.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional

from ..bench.timing import TimingSample
from ..capture import CaptureSpec, best_response_round
from ..exceptions import CampaignError
from ..influence import paper_default_pf
from ..solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
    Solver,
)
from .spec import DatasetAxis, RunPoint

#: Solver factories keyed by campaign solver name; knobs are the two
#: kernel toggles (results are identical either way — the repo's
#: bit-identity invariant).
SOLVER_FACTORIES: Dict[str, Callable[[bool, bool], Solver]] = {
    "baseline": lambda bv, fs: BaselineGreedySolver(
        batch_verify=bv, fast_select=fs
    ),
    "k-cifp": lambda bv, fs: AdaptedKCIFPSolver(fast_select=fs),
    "iqt": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT, batch_verify=bv, fast_select=fs
    ),
    "iqt-c": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT_C, batch_verify=bv, fast_select=fs
    ),
    "iqt-pino": lambda bv, fs: IQTSolver(
        variant=IQTVariant.IQT_PINO, batch_verify=bv, fast_select=fs
    ),
}


def build_solver(name: str, batch_verify: bool, fast_select: bool) -> Solver:
    try:
        factory = SOLVER_FACTORIES[name]
    except KeyError:
        raise CampaignError(
            f"unknown solver {name!r}; one of {sorted(SOLVER_FACTORIES)}"
        ) from None
    return factory(batch_verify, fast_select)


def _x_values(dataset, point: RunPoint) -> Dict[str, Any]:
    """Realized axis values the aggregator can pivot on."""
    x: Dict[str, Any] = {
        "users": len(dataset.users),
        "candidates": len(dataset.candidates),
        "facilities": len(dataset.facilities),
        "tau": point.tau,
        "k": point.k,
    }
    if point.dataset.r is not None:
        x["r"] = point.dataset.r
    return x


def _solve_workload(dataset, point: RunPoint, pf) -> tuple[Dict, tuple]:
    """Resolve+select ``repeats`` times; assert the outcome is stable."""
    capture_spec = CaptureSpec(**point.capture_params)
    problem = MC2LSProblem(
        dataset,
        k=point.k,
        tau=point.tau,
        capture=None if capture_spec.is_default
        else capture_spec.build(dataset, pf),
    )
    solver = build_solver(point.solver, point.batch_verify, point.fast_select)
    times = []
    outcome = None
    for _ in range(point.repeats):
        result = solver.solve(problem)
        times.append(result.total_time)
        snapshot = (result.selected, tuple(result.gains), result.objective)
        if outcome is None:
            outcome = (result, snapshot)
        elif snapshot != outcome[1]:
            raise CampaignError(
                f"nondeterministic solve for {point.solver!r}: "
                f"{snapshot[0]} != {outcome[1][0]}"
            )
    result = outcome[0]
    payload = {
        "selected": list(result.selected),
        "gains": list(result.gains),
        "objective": result.objective,
        "evaluations": result.evaluation.total_evaluations,
        "positions_touched": result.evaluation.positions_touched,
    }
    return payload, tuple(times)


def _compete_workload(dataset, point: RunPoint, pf) -> tuple[Dict, tuple]:
    """One best-response round per repeat over a shared resolution."""
    capture_spec = CaptureSpec(**point.capture_params)
    solver = build_solver(point.solver, point.batch_verify, point.fast_select)
    resolved = solver.resolve(dataset, point.tau, pf)
    model = capture_spec.build(dataset, pf)
    cids = [c.fid for c in dataset.candidates]
    times = []
    report = None
    for _ in range(point.repeats):
        t0 = time.perf_counter()
        report = best_response_round(
            resolved.table,
            cids,
            point.k,
            model,
            k_rival=point.k_rival,
            fast=point.fast_select,
        )
        times.append(time.perf_counter() - t0)
    payload = {
        "leader_initial": list(report.leader_initial),
        "leader_objective": report.leader_objective,
        "rival_selected": list(report.rival_selected),
        "rival_objective": report.rival_objective,
        "eroded_objective": report.eroded_objective,
        "erosion": report.erosion,
        "erosion_fraction": report.erosion_fraction,
        "leader_adapted": list(report.leader_adapted),
        "adapted_objective": report.adapted_objective,
        "recovered": report.recovered,
    }
    return payload, tuple(times)


def execute_point(
    grid: str,
    params: Dict[str, Any],
    campaign: str = "",
    expected_key: Optional[str] = None,
) -> Dict[str, Any]:
    """Run one point and return its store record.

    When ``expected_key`` is given, the key re-derived from the built
    dataset's content hash must match it — a mismatch means the store's
    dataset-hash memo has gone stale against the generator (or the
    population-scale env vars changed) and the record must not be
    stored under the old key.
    """
    point = RunPoint.from_params(grid, params)
    dataset = point.dataset.build()
    from ..service import dataset_content_hash

    dataset_hash = dataset_content_hash(dataset)
    key = point.key(dataset_hash)
    if expected_key is not None and key != expected_key:
        raise CampaignError(
            f"point key mismatch for grid {grid!r}: expected {expected_key}, "
            f"realized {key} — the dataset generated now differs from the "
            "one the campaign was planned against (stale dataset-hash memo "
            "or changed population scale); run `campaign clean`"
        )
    pf = paper_default_pf()
    if point.workload == "compete":
        result, times = _compete_workload(dataset, point, pf)
    else:
        result, times = _solve_workload(dataset, point, pf)
    timing = TimingSample(times, None).summary()
    return {
        "schema": 1,
        "key": key,
        "campaign": campaign,
        "grid": grid,
        "params": point.params(),
        "dataset_hash": dataset_hash,
        "x": _x_values(dataset, point),
        "result": result,
        "timing": timing,
        "meta": {"completed_at": time.time(), "pid": os.getpid()},
    }
