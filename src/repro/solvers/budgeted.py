"""Budget-constrained MC²LS: opening costs replace the cardinality k.

The paper's introduction notes that *budget* is what actually determines
``k`` in practice.  This variant makes the budget explicit: candidate
``c`` costs ``cost[c]`` to open, the constraint is ``Σ cost ≤ B``, and
the objective is unchanged.  This is budgeted maximum coverage
(Khuller–Moss–Naor): the cost-effectiveness greedy (pick the best
gain/cost ratio that still fits) compared against the best single
affordable candidate guarantees a ``(1 − 1/e)/2`` approximation; the
implementation returns whichever of the two is better.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from ..competition import EvenlySplitModel, InfluenceTable
from ..exceptions import SolverError
from .base import (
    MC2LSProblem,
    PhaseTimer,
    Solver,
    SolverResult,
    require_default_capture,
)
from .coverage import CoverageMatrix
from .iqt import IQTSolver


class BudgetedGreedySolver(Solver):
    """Cost-effectiveness greedy under an opening budget.

    Args:
        costs: ``candidate id -> opening cost`` (positive).
        budget: Total budget ``B``.
        base_solver: Relationship-resolution solver (defaults to IQT).
        fast_select: Evaluate each round's gain/cost ratios for all
            affordable candidates in one vectorized CSR pass, with the
            round winner confirmed at exact (``fsum``) precision —
            identical selection to the scalar ratio greedy; ``False``
            restores the scalar loop.

    The problem's ``k`` is ignored (the budget is the binding
    constraint); it must still be a valid value for problem construction.
    """

    name = "budgeted"

    def __init__(
        self,
        costs: Dict[int, float],
        budget: float,
        base_solver: Optional[Solver] = None,
        fast_select: bool = True,
    ):
        if budget <= 0:
            raise SolverError(f"budget must be positive, got {budget}")
        if any(c <= 0 for c in costs.values()):
            raise SolverError("all opening costs must be positive")
        self.costs = dict(costs)
        self.budget = budget
        self.base_solver = base_solver or IQTSolver()
        self.fast_select = fast_select

    # ------------------------------------------------------------------
    def solve(self, problem: MC2LSProblem) -> SolverResult:
        require_default_capture(problem, self.name)
        timer = PhaseTimer()
        with timer.mark("resolve"):
            base = self.base_solver.solve(problem)
        table = base.table
        model = EvenlySplitModel()
        candidate_ids = sorted(c.fid for c in problem.dataset.candidates)
        missing = [cid for cid in candidate_ids if cid not in self.costs]
        if missing:
            raise SolverError(f"no cost given for candidates {missing[:5]}")

        with timer.mark("greedy"):
            if self.fast_select:
                cover = CoverageMatrix(table, candidate_ids, model=model)
                ratio_sel, ratio_gains = self._ratio_greedy_fast(cover)
                single = self._best_single_fast(cover)
                # Objective reporting through the matrix's vectorized
                # union — fsum over the identical covered-weight multiset,
                # bit-equal to the scalar group_value it replaces.
                ratio_value = cover.objective_of(ratio_sel)
                single_value = (
                    cover.objective_of([single]) if single is not None else None
                )
            else:
                ratio_sel, ratio_gains = self._ratio_greedy(
                    table, model, candidate_ids
                )
                single = self._best_single(table, model, candidate_ids)
                ratio_value = model.group_value(table, ratio_sel)
                single_value = (
                    model.group_value(table, [single])
                    if single is not None
                    else None
                )
            if single_value is not None and single_value > ratio_value:
                selected: List[int] = [single]
                gains = (single_value,)
                objective = gains[0]
            else:
                selected = ratio_sel
                gains = tuple(ratio_gains)
                objective = ratio_value

        return SolverResult(
            selected=tuple(selected),
            objective=objective,
            table=table,
            timings=timer.finish(),
            evaluation=base.evaluation,
            pruning=base.pruning,
            gains=gains,
        )

    # ------------------------------------------------------------------
    def _ratio_greedy(
        self,
        table: InfluenceTable,
        model: EvenlySplitModel,
        candidate_ids: Sequence[int],
    ) -> tuple[List[int], List[float]]:
        selected: List[int] = []
        gains: List[float] = []
        covered: Set[int] = set()
        spent = 0.0
        remaining = [
            cid for cid in candidate_ids if self.costs[cid] <= self.budget
        ]
        while remaining:
            best_cid = None
            best_ratio = -1.0
            best_gain = 0.0
            for cid in remaining:
                gain = model.candidate_value(table, cid, excluded=covered)
                ratio = gain / self.costs[cid]
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_gain = gain
                    best_cid = cid
            if best_cid is None or best_gain <= 0.0:
                break
            selected.append(best_cid)
            gains.append(best_gain)
            covered |= table.omega_c.get(best_cid, set())
            spent += self.costs[best_cid]
            remaining = [
                cid
                for cid in remaining
                if cid != best_cid and spent + self.costs[cid] <= self.budget
            ]
        return selected, gains

    # ------------------------------------------------------------------
    def _ratio_greedy_fast(
        self, cover: CoverageMatrix
    ) -> tuple[List[int], List[float]]:
        """Vectorized ratio greedy, selection-identical to the scalar one.

        Screened gains bound each candidate's exact gain/cost ratio from
        both sides (the 1e-12 slack swallows the division rounding);
        only candidates whose upper edge reaches the best lower edge are
        confirmed with exact ``fsum`` gains, scanned in ascending id with
        the scalar loop's strict-``>`` rule.
        """
        cand = cover.candidate_ids
        costs = np.array([self.costs[int(cid)] for cid in cand], dtype=np.float64)
        covered = cover.new_covered_mask()
        remaining = np.flatnonzero(costs <= self.budget)
        selected: List[int] = []
        gains: List[float] = []
        spent = 0.0
        while remaining.size:
            g, t = cover.screened_gains(remaining, covered)
            c = costs[remaining]
            ub = (g + t) / c * (1.0 + 1e-12)
            lb = (g - t) / c * (1.0 - 1e-12)
            near = remaining[ub >= lb.max()]
            best_j = None
            best_ratio = -1.0
            best_gain = 0.0
            for j in near.tolist():  # ascending index == ascending cid
                gain = cover.exact_gain(j, covered)
                ratio = gain / costs[j]
                if ratio > best_ratio:
                    best_ratio = ratio
                    best_gain = gain
                    best_j = j
            if best_j is None or best_gain <= 0.0:
                break
            selected.append(int(cand[best_j]))
            gains.append(best_gain)
            cover.cover(best_j, covered)
            spent += costs[best_j]
            remaining = remaining[
                (remaining != best_j) & (spent + costs[remaining] <= self.budget)
            ]
        return selected, gains

    def _best_single_fast(self, cover: CoverageMatrix) -> Optional[int]:
        costs = np.array(
            [self.costs[int(cid)] for cid in cover.candidate_ids],
            dtype=np.float64,
        )
        affordable = np.flatnonzero(costs <= self.budget)
        if affordable.size == 0:
            return None
        covered = cover.new_covered_mask()
        g, t = cover.screened_gains(affordable, covered)
        near = affordable[(g + t) >= (g - t).max()]
        best = None
        best_value = -1.0
        for j in near.tolist():
            value = cover.exact_gain(j, covered)
            if value > best_value:
                best_value = value
                best = int(cover.candidate_ids[j])
        return best

    def _best_single(
        self,
        table: InfluenceTable,
        model: EvenlySplitModel,
        candidate_ids: Sequence[int],
    ) -> Optional[int]:
        affordable = [cid for cid in candidate_ids if self.costs[cid] <= self.budget]
        if not affordable:
            return None
        return max(affordable, key=lambda cid: (model.candidate_value(table, cid), -cid))

    def total_cost(self, selected: Sequence[int]) -> float:
        """Opening cost of a selection under this solver's cost map."""
        return sum(self.costs[cid] for cid in selected)
