"""The adapted k-CIFP solver (paper §IV-B, Algorithm 1).

Prunes *abstract facilities* per user with the PINOCCHIO IA/NIB regions
over two R-trees (``RT_C`` for candidates, ``RT_F`` for competitors),
verifies the interstitial pairs exactly, and runs the shared greedy.

Per Algorithm 1, line 10, the competitor relationships ``F_o`` are only
resolved for users already influenced by at least one candidate — users
no candidate can reach never contribute to any ``cinf`` and are skipped.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..competition import InfluenceTable
from ..entities import SpatialDataset
from ..influence import InfluenceEvaluator, ProbabilityFunction, paper_default_pf
from ..pruning import PinocchioPruner, PruningStats
from .base import (
    MC2LSProblem,
    PhaseTimer,
    ResolvedInstance,
    Solver,
    SolverResult,
)
from .selection import run_selection


class AdaptedKCIFPSolver(Solver):
    """IA/NIB facility pruning + exact verification + greedy selection.

    Args:
        early_stopping: Algorithm 1 verifies with the plain cumulative
            probability (Definition 2), so the default is ``False``; pass
            ``True`` to give the baseline competitor the PINOCCHIO early
            stopping as well (an ablation knob).
        fast_select: Run the greedy phase through the vectorized CSR
            selection kernel (identical selection); ``False`` restores
            the scalar greedy.
    """

    name = "k-cifp"

    def __init__(self, early_stopping: bool = False, fast_select: bool = True):
        self.early_stopping = early_stopping
        self.fast_select = fast_select

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        timer = PhaseTimer()
        resolved = self._resolve(timer, problem.dataset, problem.tau, problem.pf)
        with timer.mark("greedy"):
            outcome = run_selection(
                resolved.table,
                [c.fid for c in problem.dataset.candidates],
                problem.k,
                fast_select=self.fast_select,
                capture=problem.capture,
            )
        return SolverResult(
            selected=outcome.selected,
            objective=outcome.objective,
            table=resolved.table,
            timings=timer.finish(),
            evaluation=resolved.evaluation,
            pruning=resolved.pruning,
            gains=outcome.gains,
        )

    def resolve(
        self,
        dataset: SpatialDataset,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
    ) -> ResolvedInstance:
        """IA/NIB pruning + verification only: the influence table."""
        timer = PhaseTimer()
        resolved = self._resolve(timer, dataset, tau, pf or paper_default_pf())
        resolved.timings = timer.finish()
        return resolved

    def _resolve(
        self,
        timer: PhaseTimer,
        dataset: SpatialDataset,
        tau: float,
        pf: ProbabilityFunction,
    ) -> ResolvedInstance:
        evaluator = InfluenceEvaluator(pf, tau, early_stopping=self.early_stopping)
        pruning = PruningStats()

        with timer.mark("index"):
            pruner_c = PinocchioPruner(dataset.candidates, tau, pf)
            pruner_f = PinocchioPruner(dataset.facilities, tau, pf)

        omega_c: Dict[int, Set[int]] = {c.fid: set() for c in dataset.candidates}
        f_o: Dict[int, Set[int]] = {}

        # Lines 3–9: resolve candidate relationships for every user.
        with timer.mark("candidates"):
            for user in dataset.users:
                result = pruner_c.classify_user(user)
                for c in result.confirmed:
                    omega_c[c.fid].add(user.uid)
                for c in result.verify:
                    if evaluator.influences(c.x, c.y, user.positions):
                        omega_c[c.fid].add(user.uid)

        # Lines 10–15: resolve competitor relationships, but only for users
        # influenced by at least one candidate.
        influenced_uids: Set[int] = set()
        for users in omega_c.values():
            influenced_uids |= users
        users_by_uid = {u.uid: u for u in dataset.users}
        with timer.mark("facilities"):
            for uid in influenced_uids:
                user = users_by_uid[uid]
                fo: Set[int] = set()
                result = pruner_f.classify_user(user)
                for f in result.confirmed:
                    fo.add(f.fid)
                for f in result.verify:
                    if evaluator.influences(f.x, f.y, user.positions):
                        fo.add(f.fid)
                f_o[uid] = fo

        pruning.merge(pruner_c.stats)
        pruning.merge(pruner_f.stats)

        return ResolvedInstance(
            table=InfluenceTable(omega_c, f_o),
            evaluation=evaluator.stats,
            pruning=pruning,
        )
