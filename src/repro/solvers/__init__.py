"""MC²LS solvers: exact, baseline greedy, adapted k-CIFP and IQT variants."""

from .base import (
    MC2LSProblem,
    PhaseTimer,
    ResolvedInstance,
    Solver,
    SolverResult,
    patch_resolution,
    require_default_capture,
)
from .baseline import BaselineGreedySolver
from .budgeted import BudgetedGreedySolver
from .capacitated import CapacitatedGreedySolver, CapacitatedOutcome
from .coverage import (
    CoverageMatrix,
    coverage_select,
    group_objective,
    merged_exact_gain,
)
from .exact import ExactSolver
from .iqt import IQTSolver, IQTVariant
from .kcifp import AdaptedKCIFPSolver
from .selection import (
    GreedyOutcome,
    greedy_select,
    lazy_greedy_select,
    run_selection,
)

__all__ = [
    "AdaptedKCIFPSolver",
    "BaselineGreedySolver",
    "BudgetedGreedySolver",
    "CapacitatedGreedySolver",
    "CapacitatedOutcome",
    "CoverageMatrix",
    "ExactSolver",
    "GreedyOutcome",
    "IQTSolver",
    "IQTVariant",
    "MC2LSProblem",
    "PhaseTimer",
    "ResolvedInstance",
    "Solver",
    "SolverResult",
    "coverage_select",
    "greedy_select",
    "group_objective",
    "lazy_greedy_select",
    "merged_exact_gain",
    "patch_resolution",
    "require_default_capture",
    "run_selection",
]
