"""Exact (exhaustive) solver — the ground truth for small instances.

Enumerates every size-``k`` candidate combination and returns the one
maximising ``cinf(G)``.  Exponential in ``k`` (the problem is NP-hard), so
this exists for correctness testing and the approximation-ratio benchmark,
not for real workloads; a guard refuses instances with too many
combinations rather than silently burning hours.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import List, Sequence, Tuple

import numpy as np

from ..competition import InfluenceTable, cinf_group
from ..exceptions import SolverError
from ..influence import InfluenceEvaluator
from .base import (
    MC2LSProblem,
    PhaseTimer,
    Solver,
    SolverResult,
    require_default_capture,
    resolve_all_pairs,
)


class ExactSolver(Solver):
    """Brute-force enumeration of all k-subsets.

    Args:
        max_combinations: Safety cap on ``C(n, k)``; exceeding it raises
            :class:`SolverError` instead of running forever.
        batch_verify: Resolve the influence table through the batched
            kernel (default) or the pair-at-a-time scalar loop.
        fast_select: Enumerate with vectorised coverage masks — prefix
            unions shared across the lexicographic recursion, one
            boolean OR plus one dot product per combination — instead of
            Python set unions; screened values only ever *shortlist*
            combinations, and every shortlisted one is re-scored with
            the exact ``cinf_group`` in lexicographic order, so the
            returned group is identical to the scalar enumeration.
    """

    name = "exact"

    def __init__(
        self,
        max_combinations: int = 2_000_000,
        batch_verify: bool = True,
        fast_select: bool = True,
    ):
        self.max_combinations = max_combinations
        self.batch_verify = batch_verify
        self.fast_select = fast_select

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        require_default_capture(problem, self.name)
        dataset = problem.dataset
        n = len(dataset.candidates)
        n_combos = comb(n, problem.k)
        if n_combos > self.max_combinations:
            raise SolverError(
                f"C({n}, {problem.k}) = {n_combos} combinations exceed the "
                f"{self.max_combinations} cap; the exact solver is for small "
                "instances only"
            )
        timer = PhaseTimer()
        evaluator = InfluenceEvaluator(problem.pf, problem.tau, early_stopping=False)

        with timer.mark("influence"):
            omega_c, f_o = resolve_all_pairs(
                dataset, evaluator, batch_verify=self.batch_verify
            )
        table = InfluenceTable(omega_c, f_o)

        with timer.mark("enumeration"):
            cids = sorted(c.fid for c in dataset.candidates)
            table.validate_against(set(cids))
            if self.fast_select:
                best_group, best_value = self._enumerate_fast(
                    table, cids, problem.k
                )
            else:
                best_group, best_value = self._enumerate_scalar(
                    table, cids, problem.k
                )

        return SolverResult(
            selected=best_group,
            objective=best_value,
            table=table,
            timings=timer.finish(),
            evaluation=evaluator.stats,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _enumerate_scalar(
        table: InfluenceTable, cids: Sequence[int], k: int
    ) -> Tuple[Tuple[int, ...], float]:
        best_group: Tuple[int, ...] = ()
        best_value = -1.0
        for group in combinations(cids, k):
            value = cinf_group(table, group)
            if value > best_value:
                best_value = value
                best_group = group
        return best_group, best_value

    @staticmethod
    def _enumerate_fast(
        table: InfluenceTable, cids: Sequence[int], k: int
    ) -> Tuple[Tuple[int, ...], float]:
        """Two-pass vectorised enumeration, identical to the scalar scan.

        Pass 1 finds the maximum *screened* value (dot products carry a
        bounded rounding error); pass 2 re-walks the combinations and
        scores every one whose screened value reaches the maximum minus
        that bound with the exact ``cinf_group``, applying the scalar
        loop's first-strictly-greater rule in the same lexicographic
        order.  The winner therefore matches the scalar enumeration
        exactly, ties included.
        """
        from .coverage import CoverageMatrix

        cover = CoverageMatrix(table, cids)
        n = cover.n_candidates
        n_users = cover.n_users
        w = cover.weights
        masks = np.zeros((n, max(n_users, 1)), dtype=bool)
        for j in range(n):
            masks[j, cover.col[cover.indptr[j] : cover.indptr[j + 1]]] = True
        # Worst-case dot-product error over a combo: n_users · ulp · Σw,
        # doubled for slack; any combo within it of the screened maximum
        # is shortlisted for exact rescoring.
        tol = 2.0 * n_users * (2.0 ** -52) * float(w.sum()) if n_users else 0.0
        root = np.zeros(masks.shape[1], dtype=bool)

        best_screened = -np.inf

        def scan(start: int, depth: int, prefix: np.ndarray) -> None:
            nonlocal best_screened
            for j in range(start, n - (k - depth) + 1):
                union = prefix | masks[j]
                if depth + 1 == k:
                    value = float(union @ w)
                    if value > best_screened:
                        best_screened = value
                else:
                    scan(j + 1, depth + 1, union)

        scan(0, 0, root)

        best_group: Tuple[int, ...] = ()
        best_value = -1.0
        path: List[int] = []

        def confirm(start: int, depth: int, prefix: np.ndarray) -> None:
            nonlocal best_group, best_value
            for j in range(start, n - (k - depth) + 1):
                union = prefix | masks[j]
                path.append(j)
                if depth + 1 == k:
                    if float(union @ w) >= best_screened - tol:
                        group = tuple(cover.candidate_ids[i] for i in path)
                        value = cinf_group(table, group)
                        if value > best_value:
                            best_value = value
                            best_group = group
                else:
                    confirm(j + 1, depth + 1, union)
                path.pop()

        confirm(0, 0, root)
        return best_group, best_value
