"""Exact (exhaustive) solver — the ground truth for small instances.

Enumerates every size-``k`` candidate combination and returns the one
maximising ``cinf(G)``.  Exponential in ``k`` (the problem is NP-hard), so
this exists for correctness testing and the approximation-ratio benchmark,
not for real workloads; a guard refuses instances with too many
combinations rather than silently burning hours.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

from ..competition import InfluenceTable, cinf_group
from ..exceptions import SolverError
from ..influence import InfluenceEvaluator
from .base import MC2LSProblem, PhaseTimer, Solver, SolverResult, resolve_all_pairs


class ExactSolver(Solver):
    """Brute-force enumeration of all k-subsets.

    Args:
        max_combinations: Safety cap on ``C(n, k)``; exceeding it raises
            :class:`SolverError` instead of running forever.
        batch_verify: Resolve the influence table through the batched
            kernel (default) or the pair-at-a-time scalar loop.
    """

    name = "exact"

    def __init__(self, max_combinations: int = 2_000_000, batch_verify: bool = True):
        self.max_combinations = max_combinations
        self.batch_verify = batch_verify

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        dataset = problem.dataset
        n = len(dataset.candidates)
        n_combos = comb(n, problem.k)
        if n_combos > self.max_combinations:
            raise SolverError(
                f"C({n}, {problem.k}) = {n_combos} combinations exceed the "
                f"{self.max_combinations} cap; the exact solver is for small "
                "instances only"
            )
        timer = PhaseTimer()
        evaluator = InfluenceEvaluator(problem.pf, problem.tau, early_stopping=False)

        with timer.mark("influence"):
            omega_c, f_o = resolve_all_pairs(
                dataset, evaluator, batch_verify=self.batch_verify
            )
        table = InfluenceTable(omega_c, f_o)

        best_group: tuple[int, ...] = ()
        best_value = -1.0
        with timer.mark("enumeration"):
            cids = sorted(c.fid for c in dataset.candidates)
            for group in combinations(cids, problem.k):
                value = cinf_group(table, group)
                if value > best_value:
                    best_value = value
                    best_group = group

        return SolverResult(
            selected=best_group,
            objective=best_value,
            table=table,
            timings=timer.finish(),
            evaluation=evaluator.stats,
        )
