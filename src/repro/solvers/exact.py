"""Exact (exhaustive) solver — the ground truth for small instances.

Enumerates every size-``k`` candidate combination and returns the one
maximising ``cinf(G)``.  Exponential in ``k`` (the problem is NP-hard), so
this exists for correctness testing and the approximation-ratio benchmark,
not for real workloads; a guard refuses instances with too many
combinations rather than silently burning hours.
"""

from __future__ import annotations

from itertools import combinations
from math import comb
from typing import Dict, Set

from ..competition import InfluenceTable, cinf_group
from ..exceptions import SolverError
from ..influence import InfluenceEvaluator
from .base import MC2LSProblem, PhaseTimer, Solver, SolverResult


class ExactSolver(Solver):
    """Brute-force enumeration of all k-subsets.

    Args:
        max_combinations: Safety cap on ``C(n, k)``; exceeding it raises
            :class:`SolverError` instead of running forever.
    """

    name = "exact"

    def __init__(self, max_combinations: int = 2_000_000):
        self.max_combinations = max_combinations

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        dataset = problem.dataset
        n = len(dataset.candidates)
        n_combos = comb(n, problem.k)
        if n_combos > self.max_combinations:
            raise SolverError(
                f"C({n}, {problem.k}) = {n_combos} combinations exceed the "
                f"{self.max_combinations} cap; the exact solver is for small "
                "instances only"
            )
        timer = PhaseTimer()
        evaluator = InfluenceEvaluator(problem.pf, problem.tau, early_stopping=False)

        omega_c: Dict[int, Set[int]] = {c.fid: set() for c in dataset.candidates}
        f_o: Dict[int, Set[int]] = {u.uid: set() for u in dataset.users}
        with timer.mark("influence"):
            for user in dataset.users:
                for c in dataset.candidates:
                    if evaluator.influences(c.x, c.y, user.positions):
                        omega_c[c.fid].add(user.uid)
                for f in dataset.facilities:
                    if evaluator.influences(f.x, f.y, user.positions):
                        f_o[user.uid].add(f.fid)
        table = InfluenceTable(omega_c, f_o)

        best_group: tuple[int, ...] = ()
        best_value = -1.0
        with timer.mark("enumeration"):
            cids = sorted(c.fid for c in dataset.candidates)
            for group in combinations(cids, problem.k):
                value = cinf_group(table, group)
                if value > best_value:
                    best_value = value
                    best_group = group

        return SolverResult(
            selected=best_group,
            objective=best_value,
            table=table,
            timings=timer.finish(),
            evaluation=evaluator.stats,
        )
