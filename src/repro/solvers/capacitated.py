"""Capacitated MC²LS: selected sites can each serve at most ``L`` users.

Warehouses, clinics and parcel lockers saturate (the capacitated CLS
variants in the paper's related work, e.g. Chen et al.'s warehouse
placement).  With a per-site capacity ``L`` the value of a selection is
an *assignment*: every covered user may be served by at most one selected
site, every site serves at most ``L`` users, and the objective is the
total evenly-split weight of the served users.

For a fixed selection the optimal assignment is a maximum-weight
b-matching; because every user has the same weight at every site that
covers them, the greedy "serve the heaviest unserved users first" rule
is exact per site set *given an order*, and the overall selection uses
the standard greedy over the capacitated marginal gain.  The objective
remains monotone submodular (it is a weighted matroid-rank-style
coverage), so the greedy keeps a constant-factor guarantee; the exact
assignment for the final set is recomputed globally for reporting.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..exceptions import SolverError
from .base import (
    MC2LSProblem,
    PhaseTimer,
    Solver,
    SolverResult,
    require_default_capture,
)
from .coverage import CoverageMatrix
from .iqt import IQTSolver


@dataclass(frozen=True)
class CapacitatedOutcome:
    """Selection with the serving assignment realised at the end."""

    selected: Tuple[int, ...]
    objective: float
    gains: Tuple[float, ...]
    assignment: Dict[int, Tuple[int, ...]]  # cid -> served user ids


def _assignment_value(
    table: InfluenceTable,
    cids: Sequence[int],
    capacity: int,
    weight: Dict[int, float],
) -> Tuple[float, Dict[int, List[int]]]:
    """Optimal maximum-weight assignment of users to capacitated sites.

    A user's weight is the same at every covering site, so the servable
    user sets form a transversal matroid: processing users in decreasing
    weight and admitting each one iff an *augmenting path* exists (move
    already-served users between their covering sites to free a slot)
    yields the maximum-weight b-matching exactly.  Ties break by user id
    then site id for determinism.
    """
    served: Dict[int, List[int]] = {cid: [] for cid in cids}
    assigned_to: Dict[int, int] = {}  # uid -> cid currently serving it
    coverers: Dict[int, List[int]] = {}
    for cid in cids:
        for uid in table.omega_c.get(cid, ()):
            coverers.setdefault(uid, []).append(cid)
    for sites in coverers.values():
        sites.sort()

    def try_serve(uid: int, blocked_sites: Set[int]) -> bool:
        """DFS for an augmenting path admitting ``uid``."""
        for cid in coverers[uid]:
            if cid in blocked_sites:
                continue
            blocked_sites.add(cid)
            if len(served[cid]) < capacity:
                served[cid].append(uid)
                assigned_to[uid] = cid
                return True
            # Full: try to relocate one of its users to another site.
            for other in served[cid]:
                if try_serve_move(other, blocked_sites):
                    served[cid].remove(other)
                    served[cid].append(uid)
                    assigned_to[uid] = cid
                    return True
        return False

    def try_serve_move(uid: int, blocked_sites: Set[int]) -> bool:
        """Find an alternative slot for an already-served user."""
        for cid in coverers[uid]:
            if cid in blocked_sites:
                continue
            blocked_sites.add(cid)
            if len(served[cid]) < capacity:
                served[cid].append(uid)
                assigned_to[uid] = cid
                return True
            for other in served[cid]:
                if other == uid:
                    continue
                if try_serve_move(other, blocked_sites):
                    served[cid].remove(other)
                    served[cid].append(uid)
                    assigned_to[uid] = cid
                    return True
        return False

    total = 0.0
    for uid in sorted(coverers, key=lambda u: (-weight[u], u)):
        if try_serve(uid, set()):
            total += weight[uid]
    for uids in served.values():
        uids.sort()
    return total, served


class CapacitatedGreedySolver(Solver):
    """Greedy site selection under per-site capacity ``L``.

    Args:
        capacity: Maximum users one selected site can serve.
        base_solver: Relationship-resolution solver (defaults to IQT);
            only its influence table is used.
        fast_select: Run the greedy lazily (CELF) with initial upper
            bounds from the vectorized CSR coverage kernel — the
            uncapacitated coverage gain bounds the capacitated marginal
            (``f(S ∪ c) − f(S) ≤ f({c}) ≤ Σ_{o ∈ Ω_c} w_o``), and the
            capacitated objective is submodular, so stale marginals are
            valid bounds across rounds.  Identical selection; ``False``
            restores the evaluate-everything scalar loop.
    """

    name = "capacitated"

    def __init__(
        self,
        capacity: int,
        base_solver: Optional[Solver] = None,
        fast_select: bool = True,
    ):
        if capacity < 1:
            raise SolverError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.base_solver = base_solver or IQTSolver()
        self.fast_select = fast_select

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        require_default_capture(problem, self.name)
        timer = PhaseTimer()
        with timer.mark("resolve"):
            base = self.base_solver.solve(problem)
        table = base.table
        weight = {
            uid: 1.0 / (table.competitor_count(uid) + 1)
            for users in table.omega_c.values()
            for uid in users
        }
        candidate_ids = sorted(c.fid for c in problem.dataset.candidates)

        with timer.mark("greedy"):
            if self.fast_select:
                selected, gains = self._lazy_greedy(
                    table, weight, candidate_ids, problem.k
                )
            else:
                selected, gains = self._eager_greedy(
                    table, weight, candidate_ids, problem.k
                )
            final_value, assignment = _assignment_value(
                table, selected, self.capacity, weight
            )

        return SolverResult(
            selected=tuple(selected),
            objective=final_value,
            table=table,
            timings=timer.finish(),
            evaluation=base.evaluation,
            pruning=base.pruning,
            gains=tuple(gains),
        )

    # ------------------------------------------------------------------
    def _eager_greedy(
        self,
        table: InfluenceTable,
        weight: Dict[int, float],
        candidate_ids: Sequence[int],
        k: int,
    ) -> Tuple[List[int], List[float]]:
        """Evaluate every remaining candidate's marginal each round."""
        selected: List[int] = []
        gains: List[float] = []
        current_value = 0.0
        remaining = list(candidate_ids)
        for _ in range(k):
            best_cid = None
            best_value = current_value
            best_gain = -1.0
            for cid in remaining:
                value, _ = _assignment_value(
                    table, selected + [cid], self.capacity, weight
                )
                gain = value - current_value
                if gain > best_gain:
                    best_gain = gain
                    best_value = value
                    best_cid = cid
            assert best_cid is not None
            gains.append(best_gain)
            current_value = best_value
            selected.append(best_cid)
            remaining.remove(best_cid)
        return selected, gains

    def _lazy_greedy(
        self,
        table: InfluenceTable,
        weight: Dict[int, float],
        candidate_ids: Sequence[int],
        k: int,
    ) -> Tuple[List[int], List[float]]:
        """CELF over assignment marginals, seeded with CSR coverage bounds.

        The heap starts from one vectorized kernel pass (screened
        coverage gain + tolerance, an upper bound on any round's
        capacitated marginal) with stamp 0, so a candidate is only ever
        selected after an exact assignment evaluation in the current
        round; hopeless candidates are never assignment-evaluated at
        all.  Heap order ``(-gain, cid)`` reproduces the eager loop's
        smallest-id tie-break.
        """
        cover = CoverageMatrix(table, candidate_ids)
        g, t = cover.screened_gains(
            np.arange(cover.n_candidates), cover.new_covered_mask()
        )
        # Entries are (-gain, cid, stamp, value); cids are unique so the
        # comparison never reaches the stamp.
        heap: List[Tuple[float, int, int, float]] = [
            (-(gi + ti), int(cid), 0, 0.0)
            for gi, ti, cid in zip(g.tolist(), t.tolist(), cover.candidate_ids)
        ]
        heapq.heapify(heap)
        selected: List[int] = []
        gains: List[float] = []
        current_value = 0.0
        for round_no in range(1, k + 1):
            while True:
                neg_gain, cid, stamp, value = heapq.heappop(heap)
                if stamp == round_no:
                    gains.append(-neg_gain)
                    current_value = value
                    selected.append(cid)
                    break
                value, _ = _assignment_value(
                    table, selected + [cid], self.capacity, weight
                )
                heapq.heappush(
                    heap, (-(value - current_value), cid, round_no, value)
                )
        return selected, gains

    def outcome_details(
        self, problem: MC2LSProblem
    ) -> CapacitatedOutcome:
        """Solve and return the full per-site serving assignment."""
        result = self.solve(problem)
        weight = {
            uid: 1.0 / (result.table.competitor_count(uid) + 1)
            for users in result.table.omega_c.values()
            for uid in users
        }
        value, served = _assignment_value(
            result.table, list(result.selected), self.capacity, weight
        )
        return CapacitatedOutcome(
            selected=result.selected,
            objective=value,
            gains=result.gains,
            assignment={cid: tuple(uids) for cid, uids in served.items()},
        )
