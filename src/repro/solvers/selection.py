"""Greedy k-selection over a resolved influence table.

This is the phase shared by every solver (Algorithm 1, lines 16–24): pick
the candidate with the maximum competitive influence, remove its users,
repeat ``k`` times.  Two implementations:

* :func:`greedy_select` — the paper's recompute-every-round greedy.
* :func:`lazy_greedy_select` — CELF-style lazy evaluation exploiting
  submodularity; returns the identical selection with far fewer candidate
  evaluations on large candidate sets (ablation A2).
* :func:`run_selection` — dispatch between the scalar greedy and the
  vectorized CSR kernel (:mod:`repro.solvers.coverage`) behind the
  solvers' ``fast_select`` knob; all paths select identically.

Ties are broken toward the smallest candidate id so all solvers produce
exactly the same sequence, which the paper's Fig. 14 relies on ("all the
algorithms achieve identical k result candidates").

Every entry point validates the table against the candidate set up
front: a table referencing unknown candidate ids raises
:class:`~repro.exceptions.SolverError` instead of silently selecting
from a mismatched universe.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..competition import CompetitionModel, EvenlySplitModel, InfluenceTable
from ..exceptions import SolverError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..capture import CaptureModel

#: Cooperative cancellation hook: called at the top of every greedy round;
#: raises (e.g. :class:`~repro.exceptions.DeadlineExceededError`) to abort.
CancelCheck = Optional[Callable[[], None]]


@dataclass(frozen=True)
class GreedyOutcome:
    """Selection order, objective value and per-round marginal gains."""

    selected: Tuple[int, ...]
    objective: float
    gains: Tuple[float, ...]
    evaluations: int


def greedy_select(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CompetitionModel | None = None,
    cancel_check: CancelCheck = None,
) -> GreedyOutcome:
    """Paper-faithful greedy: recompute every candidate's gain each round."""
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    table.validate_against(set(candidate_ids))
    model = model or EvenlySplitModel()
    remaining = sorted(candidate_ids)
    covered: Set[int] = set()
    selected: List[int] = []
    gains: List[float] = []
    evaluations = 0
    for _ in range(k):
        if cancel_check is not None:
            cancel_check()
        best_cid = None
        best_gain = -1.0
        for cid in remaining:
            gain = model.candidate_value(table, cid, excluded=covered)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        gains.append(best_gain)
        remaining.remove(best_cid)
        covered |= table.omega_c.get(best_cid, set())
    return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)


def lazy_greedy_select(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CompetitionModel | None = None,
    cancel_check: CancelCheck = None,
) -> GreedyOutcome:
    """CELF lazy greedy: identical output, far fewer gain evaluations.

    Submodularity guarantees a candidate's marginal gain only shrinks as
    the selection grows, so a stale upper bound at the top of a max-heap
    that still beats every other bound is already the round winner.
    """
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    table.validate_against(set(candidate_ids))
    model = model or EvenlySplitModel()
    covered: Set[int] = set()
    evaluations = 0
    # Heap of (-gain, cid, round_when_computed); cid ordering in the tuple
    # gives the smallest-id tie-break for equal gains.
    heap: List[Tuple[float, int, int]] = []
    for cid in sorted(candidate_ids):
        gain = model.candidate_value(table, cid, excluded=covered)
        evaluations += 1
        heap.append((-gain, cid, 0))
    heapq.heapify(heap)
    selected: List[int] = []
    gains: List[float] = []
    for round_no in range(1, k + 1):
        if cancel_check is not None:
            cancel_check()
        while True:
            neg_gain, cid, computed_at = heapq.heappop(heap)
            if computed_at == round_no:
                selected.append(cid)
                gains.append(-neg_gain)
                covered |= table.omega_c.get(cid, set())
                break
            gain = model.candidate_value(table, cid, excluded=covered)
            evaluations += 1
            heapq.heappush(heap, (-gain, cid, round_no))
    return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)


def run_selection(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CompetitionModel | None = None,
    fast_select: bool = True,
    cancel_check: CancelCheck = None,
    capture: "CaptureModel | None" = None,
) -> GreedyOutcome:
    """Run the greedy phase through the CSR kernel or the scalar loop.

    The solvers' shared dispatch point for the ``fast_select`` knob: when
    on (the default), selection runs through
    :class:`~repro.solvers.coverage.CoverageMatrix`; off restores the
    scalar recompute-every-round greedy for ablations.  Both paths
    return the identical ``selected`` tuple and gains.  ``cancel_check``
    (when given) runs at the top of every greedy round on either path;
    the serving engine passes its deadline/cancellation probe here.

    ``capture`` selects the customer-choice capture model
    (:mod:`repro.capture`).  Set-independent models (evenly-split, Huff)
    reduce to a per-user weight model and keep both legacy kernels
    unchanged — passing ``capture=evenly_split_capture()`` is
    bit-identical to passing nothing.  Set-aware models (MNL,
    fixed-worlds) dispatch to the CELF loop of
    :func:`repro.capture.capture_select` instead; ``fast_select`` then
    chooses between the vectorized oracle state and the scalar
    reference oracle.  ``capture`` and ``model`` are mutually
    exclusive ways of naming the weights.
    """
    if capture is not None:
        if model is not None:
            raise SolverError(
                "pass either model= or capture=, not both; a capture "
                "model names its own per-user weights"
            )
        if capture.set_independent:
            model = capture.weight_model
        else:
            from ..capture.select import capture_select

            return capture_select(
                table,
                candidate_ids,
                k,
                capture,
                fast=fast_select,
                cancel_check=cancel_check,
            )
    if fast_select:
        from .coverage import coverage_select

        return coverage_select(
            table, candidate_ids, k, model=model, cancel_check=cancel_check
        )
    return greedy_select(
        table, candidate_ids, k, model=model, cancel_check=cancel_check
    )
