"""Solver interface and result types for the MC²LS problem.

An :class:`MC2LSProblem` fixes the instance (dataset, ``k``, ``τ``, ``PF``);
a :class:`Solver` turns it into a :class:`SolverResult`.  All solvers in
this package resolve the same influence relationships (soundly pruned,
exactly verified) and therefore return *identical* selections — they differ
only in how much work the resolution phase needs, which is what the
paper's evaluation measures.  The result object carries the timing
breakdown and work counters the benchmark harness reports.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..entities import SpatialDataset
from ..exceptions import SolverError
from ..influence import (
    BatchInfluenceEvaluator,
    EvaluationStats,
    InfluenceEvaluator,
    ProbabilityFunction,
    paper_default_pf,
)
from ..pruning import PruningStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..capture import CaptureModel


@dataclass(frozen=True)
class MC2LSProblem:
    """A fully specified MC²LS instance (Definition 7).

    Attributes:
        dataset: Users ``Ω``, competitors ``F`` and candidates ``C``.
        k: Number of locations to select.
        tau: Influence probability threshold.
        pf: Distance-decay probability function (paper default when ``None``).
        capture: Customer-choice capture model (:mod:`repro.capture`);
            ``None`` means the paper's evenly-split model.  Resolution is
            capture-agnostic — only the greedy phase consults it — so
            the iQT/baseline/k-CIFP solvers accept any registered model;
            structure-exploiting solvers (exact, budgeted, capacitated)
            reject set-aware models explicitly.
    """

    dataset: SpatialDataset
    k: int
    tau: float = 0.7
    pf: ProbabilityFunction = field(default_factory=paper_default_pf)
    capture: Optional["CaptureModel"] = None

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SolverError(f"k must be >= 1, got {self.k}")
        if self.k > len(self.dataset.candidates):
            raise SolverError(
                f"k={self.k} exceeds the {len(self.dataset.candidates)} candidates"
            )
        if not 0.0 < self.tau < 1.0:
            raise SolverError(f"tau must be in (0, 1), got {self.tau}")


@dataclass
class SolverResult:
    """Outcome of one solver run.

    Attributes:
        selected: Candidate ids in greedy selection order.
        objective: ``cinf(selected)`` under the evenly-split model.
        table: The resolved influence relationships (``Ω_c`` / ``F_o``).
        timings: Per-phase wall-clock seconds (keys are solver-specific;
            ``"total"`` is always present).
        evaluation: Probability-evaluation counters (verification cost).
        pruning: Pair-classification counters, when the solver prunes.
        gains: Marginal gain recorded at each greedy round.
    """

    selected: Tuple[int, ...]
    objective: float
    table: InfluenceTable
    timings: Dict[str, float]
    evaluation: EvaluationStats
    pruning: Optional[PruningStats] = None
    gains: Tuple[float, ...] = ()

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds, indexing plus querying."""
        return self.timings.get("total", 0.0)


@dataclass
class ResolvedInstance:
    """Everything a solver computes *before* the selection phase.

    The expensive part of every solver is resolving the influence
    relationships for a ``(dataset, PF, τ)`` configuration; the greedy
    phase that consumes them is cheap and parameterised only by ``k``
    (and optionally a candidate subset).  Splitting the two lets the
    serving engine (:mod:`repro.service`) resolve once and answer many
    queries against the same table.

    Attributes:
        table: The resolved influence relationships (``Ω_c`` / ``F_o``).
        evaluation: Probability-evaluation counters of the resolution.
        pruning: Pair-classification counters, when the solver prunes.
        timings: Per-phase wall-clock seconds of the resolution.
    """

    table: InfluenceTable
    evaluation: EvaluationStats
    pruning: Optional[PruningStats] = None
    timings: Dict[str, float] = field(default_factory=dict)


def patch_resolution(
    parent: ResolvedInstance,
    dataset: SpatialDataset,
    dirty_uids: Tuple[int, ...],
    removed_uids: Tuple[int, ...],
    tau: float,
    pf: ProbabilityFunction,
    batch_verify: bool = True,
    early_stopping: bool = True,
) -> Tuple[ResolvedInstance, Dict[int, Set[int]]]:
    """Re-resolve only the dirty user rows of a previously resolved table.

    ``parent`` resolved some earlier version of the population under the
    same ``(PF, τ)``; ``dataset`` is the mutated version, ``dirty_uids``
    the users whose rows must be verified afresh (added or re-positioned)
    and ``removed_uids`` the users that left.  Every other user's
    relationships are carried over untouched — sound because influence is
    decided per ``(facility, user)`` pair, so churn in one user's history
    cannot change any other user's row.

    Each dirty user is decided against *all* candidates and facilities
    through the batched kernel (or the scalar evaluator when
    ``batch_verify`` is off — decisions and counters are bit-identical
    either way).  The resulting ``omega_c`` therefore matches a fresh
    resolve of ``dataset`` exactly; ``f_o`` matches on every user a
    candidate influences, which is the subset selection ever reads.

    Returns:
        ``(resolved, added_cover)`` — the patched resolution (timings
        carry a ``"patch"`` phase; the evaluation counters cover only the
        dirty-row work) and the ``uid -> covering candidate ids`` map the
        CSR splice (:meth:`CoverageMatrix.patched`) consumes.

    Raises:
        SolverError: When a dirty uid is missing from ``dataset`` or a
            removed uid is still present — the delta does not describe
            this dataset.
    """
    timer = PhaseTimer()
    users_by_uid = {u.uid: u for u in dataset.users}
    present_removed = [uid for uid in removed_uids if uid in users_by_uid]
    if present_removed:
        raise SolverError(
            f"removed uids {present_removed} are still present in the dataset"
        )
    missing_dirty = [uid for uid in dirty_uids if uid not in users_by_uid]
    if missing_dirty:
        raise SolverError(
            f"dirty uids {missing_dirty} are absent from the dataset"
        )
    doomed = set(dirty_uids) | set(removed_uids)
    omega_c: Dict[int, Set[int]] = {
        cid: (users - doomed if users & doomed else set(users))
        for cid, users in parent.table.omega_c.items()
    }
    f_o: Dict[int, Set[int]] = {
        uid: set(fids)
        for uid, fids in parent.table.f_o.items()
        if uid not in doomed
    }

    evaluator = InfluenceEvaluator(pf, tau, early_stopping=early_stopping)
    added_cover: Dict[int, Set[int]] = {}
    with timer.mark("patch"):
        if batch_verify:
            batch = BatchInfluenceEvaluator(
                pf, tau, early_stopping=early_stopping, stats=evaluator.stats
            )
            cand_xy = np.array(
                [[c.x, c.y] for c in dataset.candidates], dtype=np.float64
            ).reshape(-1, 2)
            fac_xy = np.array(
                [[f.x, f.y] for f in dataset.facilities], dtype=np.float64
            ).reshape(-1, 2)
            for uid in dirty_uids:
                pos = users_by_uid[uid].positions
                hit = batch.influences_facilities(cand_xy, pos)
                covering = {c.fid for c, h in zip(dataset.candidates, hit) if h}
                hit = batch.influences_facilities(fac_xy, pos)
                f_o[uid] = {f.fid for f, h in zip(dataset.facilities, hit) if h}
                added_cover[uid] = covering
        else:
            for uid in dirty_uids:
                pos = users_by_uid[uid].positions
                covering = {
                    c.fid
                    for c in dataset.candidates
                    if evaluator.influences(c.x, c.y, pos)
                }
                f_o[uid] = {
                    f.fid
                    for f in dataset.facilities
                    if evaluator.influences(f.x, f.y, pos)
                }
                added_cover[uid] = covering
        for uid, covering in added_cover.items():
            for cid in covering:
                omega_c[cid].add(uid)
    resolved = ResolvedInstance(
        table=InfluenceTable(omega_c, f_o),
        evaluation=evaluator.stats,
        pruning=None,
        timings=timer.finish(),
    )
    return resolved, added_cover


def require_default_capture(problem: MC2LSProblem, solver_name: str) -> None:
    """Reject non-evenly-split capture on structure-exploiting solvers.

    The exact, budgeted and capacitated solvers exploit the evenly-split
    objective's structure (precomputed per-user weights, cost ratios,
    load-aware swaps); silently running them under another capture model
    would optimise the wrong objective, so they refuse loudly instead.
    """
    capture = problem.capture
    if capture is None:
        return
    from ..capture import DEFAULT_CAPTURE_KEY

    if capture.cache_key() != DEFAULT_CAPTURE_KEY:
        raise SolverError(
            f"solver {solver_name!r} supports only the evenly-split "
            f"capture model, got {capture.name!r}; use the iqt/baseline/"
            "k-cifp solvers for other capture models"
        )


class Solver(ABC):
    """Base class for MC²LS solvers.

    Thread-safety contract: a solver instance holds *configuration only*.
    Every mutable accumulator (:class:`~repro.influence.EvaluationStats`,
    :class:`~repro.pruning.PruningStats`, phase timers) is created inside
    :meth:`solve` / :meth:`resolve` per call, so one instance may serve
    concurrent calls from multiple threads and each returned result
    carries exactly its own query's counters.  Subclasses must not write
    to ``self`` during ``solve`` — the serving engine and its two-thread
    regression test rely on this.
    """

    name: str = "solver"

    @abstractmethod
    def solve(self, problem: MC2LSProblem) -> SolverResult:
        """Solve the instance and return the selection with its metrics."""

    def resolve(
        self,
        dataset: SpatialDataset,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
    ) -> ResolvedInstance:
        """Resolve the influence relationships without selecting.

        Solvers that separate resolution from selection override this;
        the serving engine only accepts those.  The returned timings
        include a ``"total"`` entry covering the resolution.
        """
        raise SolverError(
            f"solver {self.name!r} does not support resolution-only preparation"
        )


def resolve_all_pairs(
    dataset: SpatialDataset,
    evaluator: InfluenceEvaluator,
    batch_verify: bool = True,
) -> Tuple[Dict[int, Set[int]], Dict[int, Set[int]]]:
    """Brute-force resolution of every ``(facility, user)`` relationship.

    Shared by the baseline and exact solvers.  With ``batch_verify`` the
    probability evaluations run through the batched kernel (one vectorised
    pass per abstract facility over the dataset's position arena) instead
    of one scalar call per pair; decisions and ``evaluator.stats``
    accounting are bit-identical either way.

    Returns:
        ``(omega_c, f_o)`` — candidate coverage sets and per-user
        competitor sets, keyed by id.
    """
    omega_c: Dict[int, Set[int]] = {c.fid: set() for c in dataset.candidates}
    f_o: Dict[int, Set[int]] = {u.uid: set() for u in dataset.users}
    if batch_verify:
        arena = dataset.arena
        batch = BatchInfluenceEvaluator(
            evaluator.pf,
            evaluator.tau,
            early_stopping=evaluator.early_stopping,
            stats=evaluator.stats,
        )
        for c in dataset.candidates:
            hit = batch.influences_users(c.x, c.y, arena)
            omega_c[c.fid] = set(arena.uids[hit].tolist())
        for f in dataset.facilities:
            hit = batch.influences_users(f.x, f.y, arena)
            for uid in arena.uids[hit].tolist():
                f_o[uid].add(f.fid)
        return omega_c, f_o
    for user in dataset.users:
        pos = user.positions
        for c in dataset.candidates:
            if evaluator.influences(c.x, c.y, pos):
                omega_c[c.fid].add(user.uid)
        for f in dataset.facilities:
            if evaluator.influences(f.x, f.y, pos):
                f_o[user.uid].add(f.fid)
    return omega_c, f_o


class PhaseTimer:
    """Accumulates named wall-clock phases into a timings dict."""

    def __init__(self) -> None:
        self.timings: Dict[str, float] = {}
        self._start = time.perf_counter()

    def mark(self, name: str) -> "_Phase":
        """Return a context manager timing one named phase."""
        return _Phase(self, name)

    def finish(self) -> Dict[str, float]:
        """Record the total elapsed time and return the dict."""
        self.timings["total"] = time.perf_counter() - self._start
        return self.timings


class _Phase:
    def __init__(self, timer: PhaseTimer, name: str):
        self._timer = timer
        self._name = name

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        self._timer.timings[self._name] = (
            self._timer.timings.get(self._name, 0.0) + elapsed
        )
