"""The Baseline greedy solver (paper §IV-A).

Resolves every influence relationship by brute force — each of the
``(|C| + |F|) × |Ω|`` pairs is evaluated with the exact cumulative
probability over all of the user's positions — then runs the shared
greedy selection.  This is the yardstick the pruning solvers are measured
against: its cost is ``O((n + m)·u·r + 2kn)``.
"""

from __future__ import annotations

from typing import Optional

from ..competition import InfluenceTable
from ..entities import SpatialDataset
from ..influence import InfluenceEvaluator, ProbabilityFunction, paper_default_pf
from .base import (
    MC2LSProblem,
    PhaseTimer,
    ResolvedInstance,
    Solver,
    SolverResult,
    resolve_all_pairs,
)
from .selection import run_selection


class BaselineGreedySolver(Solver):
    """Exhaustive relationship resolution + greedy selection.

    Args:
        batch_verify: Evaluate each facility against the whole population
            through the batched kernel (default); ``False`` restores the
            pair-at-a-time scalar loop for ablations.  Decisions and
            counters are identical either way.
        fast_select: Run the greedy phase through the vectorized CSR
            selection kernel (identical selection); ``False`` restores
            the scalar greedy.
    """

    name = "baseline"

    def __init__(self, batch_verify: bool = True, fast_select: bool = True):
        self.batch_verify = batch_verify
        self.fast_select = fast_select

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        timer = PhaseTimer()
        resolved = self._resolve(timer, problem.dataset, problem.tau, problem.pf)
        with timer.mark("greedy"):
            outcome = run_selection(
                resolved.table,
                [c.fid for c in problem.dataset.candidates],
                problem.k,
                fast_select=self.fast_select,
                capture=problem.capture,
            )
        return SolverResult(
            selected=outcome.selected,
            objective=outcome.objective,
            table=resolved.table,
            timings=timer.finish(),
            evaluation=resolved.evaluation,
            gains=outcome.gains,
        )

    def resolve(
        self,
        dataset: SpatialDataset,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
    ) -> ResolvedInstance:
        """Brute-force resolution only: the full influence table."""
        timer = PhaseTimer()
        resolved = self._resolve(timer, dataset, tau, pf or paper_default_pf())
        resolved.timings = timer.finish()
        return resolved

    def _resolve(
        self,
        timer: PhaseTimer,
        dataset: SpatialDataset,
        tau: float,
        pf: ProbabilityFunction,
    ) -> ResolvedInstance:
        # The baseline deliberately skips early stopping: it represents the
        # no-optimisation yardstick of the paper's complexity analysis.
        evaluator = InfluenceEvaluator(pf, tau, early_stopping=False)
        with timer.mark("influence"):
            omega_c, f_o = resolve_all_pairs(
                dataset, evaluator, batch_verify=self.batch_verify
            )
        return ResolvedInstance(
            table=InfluenceTable(omega_c, f_o), evaluation=evaluator.stats
        )
