"""The Baseline greedy solver (paper §IV-A).

Resolves every influence relationship by brute force — each of the
``(|C| + |F|) × |Ω|`` pairs is evaluated with the exact cumulative
probability over all of the user's positions — then runs the shared
greedy selection.  This is the yardstick the pruning solvers are measured
against: its cost is ``O((n + m)·u·r + 2kn)``.
"""

from __future__ import annotations

from ..competition import InfluenceTable
from ..influence import InfluenceEvaluator
from .base import MC2LSProblem, PhaseTimer, Solver, SolverResult, resolve_all_pairs
from .selection import run_selection


class BaselineGreedySolver(Solver):
    """Exhaustive relationship resolution + greedy selection.

    Args:
        batch_verify: Evaluate each facility against the whole population
            through the batched kernel (default); ``False`` restores the
            pair-at-a-time scalar loop for ablations.  Decisions and
            counters are identical either way.
        fast_select: Run the greedy phase through the vectorized CSR
            selection kernel (identical selection); ``False`` restores
            the scalar greedy.
    """

    name = "baseline"

    def __init__(self, batch_verify: bool = True, fast_select: bool = True):
        self.batch_verify = batch_verify
        self.fast_select = fast_select

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        timer = PhaseTimer()
        dataset = problem.dataset
        # The baseline deliberately skips early stopping: it represents the
        # no-optimisation yardstick of the paper's complexity analysis.
        evaluator = InfluenceEvaluator(problem.pf, problem.tau, early_stopping=False)

        with timer.mark("influence"):
            omega_c, f_o = resolve_all_pairs(
                dataset, evaluator, batch_verify=self.batch_verify
            )

        table = InfluenceTable(omega_c, f_o)
        with timer.mark("greedy"):
            outcome = run_selection(
                table,
                [c.fid for c in dataset.candidates],
                problem.k,
                fast_select=self.fast_select,
            )

        return SolverResult(
            selected=outcome.selected,
            objective=outcome.objective,
            table=table,
            timings=timer.finish(),
            evaluation=evaluator.stats,
            gains=outcome.gains,
        )
