"""The Baseline greedy solver (paper §IV-A).

Resolves every influence relationship by brute force — each of the
``(|C| + |F|) × |Ω|`` pairs is evaluated with the exact cumulative
probability over all of the user's positions — then runs the shared
greedy selection.  This is the yardstick the pruning solvers are measured
against: its cost is ``O((n + m)·u·r + 2kn)``.
"""

from __future__ import annotations

from typing import Dict, Set

from ..competition import InfluenceTable
from ..influence import InfluenceEvaluator
from .base import MC2LSProblem, PhaseTimer, Solver, SolverResult
from .selection import greedy_select


class BaselineGreedySolver(Solver):
    """Exhaustive relationship resolution + greedy selection."""

    name = "baseline"

    def solve(self, problem: MC2LSProblem) -> SolverResult:
        timer = PhaseTimer()
        dataset = problem.dataset
        # The baseline deliberately skips early stopping: it represents the
        # no-optimisation yardstick of the paper's complexity analysis.
        evaluator = InfluenceEvaluator(problem.pf, problem.tau, early_stopping=False)

        omega_c: Dict[int, Set[int]] = {c.fid: set() for c in dataset.candidates}
        f_o: Dict[int, Set[int]] = {u.uid: set() for u in dataset.users}

        with timer.mark("influence"):
            for user in dataset.users:
                pos = user.positions
                for c in dataset.candidates:
                    if evaluator.influences(c.x, c.y, pos):
                        omega_c[c.fid].add(user.uid)
                for f in dataset.facilities:
                    if evaluator.influences(f.x, f.y, pos):
                        f_o[user.uid].add(f.fid)

        table = InfluenceTable(omega_c, f_o)
        with timer.mark("greedy"):
            outcome = greedy_select(table, [c.fid for c in dataset.candidates], problem.k)

        return SolverResult(
            selected=outcome.selected,
            objective=outcome.objective,
            table=table,
            timings=timer.finish(),
            evaluation=evaluator.stats,
            gains=outcome.gains,
        )
