"""Vectorized CSR selection kernel for the greedy phase.

:func:`greedy_select` walks Python sets candidate-by-candidate every
round; after PR 1 vectorised verification, that loop is the remaining
per-candidate-per-round hot path shared by every solver.  This module
densifies an :class:`InfluenceTable` once into CSR candidate→user index
arrays plus a per-user weight vector (``w_o = 1/(|F_o|+1)`` under the
evenly-split model) and computes a whole round's marginal gains as
segmented sums over the uncovered entries, layered with the CELF lazy
bound so stale segments are skipped entirely.

**Selection-identity contract.**  The kernel returns the *same*
``selected`` tuple as :func:`greedy_select` — including the smallest-id
tie-break on exactly equal gains — and the same per-round gains.  Two
mechanisms make that exact rather than approximate:

* Vectorised segment sums (``np.add.reduceat``) are sequential, so their
  result can differ from the scalar path's correctly-rounded ``fsum`` by
  a few ulps.  They are therefore used only to *screen*: each screened
  gain carries a rigorous error bound (``len · 2⁻⁵² · sum`` dominates the
  worst-case sequential summation error for non-negative terms), and any
  candidate whose screened interval overlaps the round maximum is
  re-evaluated with ``math.fsum`` over the identical weight multiset —
  bit-equal to the scalar gain.  The winner is chosen among those exact
  values by the scalar loop's own ``gain > best`` ascending-id scan.
* The CELF bound uses the screened *upper* edge (gain + tolerance), so a
  stale bound below the freshest lower edge certifies strict inferiority
  (ties included) and the whole segment is skipped.

The tolerances only ever cause extra exact evaluations, never a missed
winner, so the kernel is safe for the adversarial exact-tie tables the
differential suite throws at it.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..competition import CompetitionModel, EvenlySplitModel, InfluenceTable
from ..exceptions import SolverError
from .selection import CancelCheck, GreedyOutcome

# Sequential summation of m non-negative doubles is off by at most
# (m-1)·u·sum with u = 2^-53; one extra power of two of slack covers the
# gather/multiply path and keeps the bound trivially safe.
_SUM_ULP = 2.0 ** -52

# Dirty-row compaction threshold for :meth:`CoverageMatrix.patched`: when
# more than this fraction of the user universe is dirty, the splice's
# bookkeeping no longer beats a fresh densification, so the patch
# compacts into a full rebuild (outputs are identical either way).
_COMPACT_FRACTION = 0.25


class CoverageMatrix:
    """CSR densification of an influence table for vectorized selection.

    **Array layout contract.**  The numeric payload is four C-contiguous
    arrays with fixed dtypes — the shape the sharded execution layer maps
    into :class:`~repro.service.SharedArrayStore` without conversion
    copies (see :meth:`csr_arrays`):

    * ``user_ids``: ``int64 (n_users,)``, strictly ascending.
    * ``weights``: ``float64 (n_users,)``, per-user capture weight
      (``1/(|F_o|+1)`` under evenly-split), aligned with ``user_ids``.
    * ``indptr``: ``int64 (n_candidates + 1,)``, monotone segment
      boundaries in candidate (ascending-cid) order.
    * ``col``: ``int64 (nnz,)``, user indices per segment, ascending
      within each segment.

    Every construction path (``__init__``, :meth:`restrict`,
    :meth:`patched`, :meth:`from_csr_arrays`) upholds the contract.

    Args:
        table: Resolved influence relationships.
        candidate_ids: Candidates selectable from the table; the table
            must not reference candidates outside this set.
        model: Competition model supplying per-user weights (evenly-split
            by default).  Any model whose ``user_share`` is independent
            of the selection densifies exactly.
    """

    def __init__(
        self,
        table: InfluenceTable,
        candidate_ids: Sequence[int],
        model: CompetitionModel | None = None,
    ):
        model = model or EvenlySplitModel()
        table.validate_against(set(candidate_ids))
        self.table = table
        self.candidate_ids: Tuple[int, ...] = tuple(sorted(candidate_ids))
        n = len(self.candidate_ids)

        universe: set = set()
        for cid in self.candidate_ids:
            universe |= table.omega_c.get(cid, set())
        self.user_ids = np.fromiter(
            sorted(universe), dtype=np.int64, count=len(universe)
        )
        self.weights = np.fromiter(
            (model.user_share(table, int(uid)) for uid in self.user_ids),
            dtype=np.float64,
            count=len(self.user_ids),
        )

        self.indptr = np.zeros(n + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for j, cid in enumerate(self.candidate_ids):
            users = table.omega_c.get(cid)
            if users:
                seg = np.fromiter(users, dtype=np.int64, count=len(users))
                seg.sort()
                seg = np.searchsorted(self.user_ids, seg)
                segments.append(seg)
                self.indptr[j + 1] = self.indptr[j] + len(seg)
            else:
                self.indptr[j + 1] = self.indptr[j]
        # np.concatenate always emits a fresh C-contiguous array; the
        # ascontiguousarray is a documented no-op that pins the layout
        # contract (csr_arrays() relies on it, mapping these zero-copy).
        self.col = np.ascontiguousarray(
            np.concatenate(segments)
            if segments
            else np.zeros(0, dtype=np.int64)
        )
        self._entry_w = self.weights[self.col]
        # Round-0 screened upper bounds (gain + tolerance per candidate),
        # captured by the first full-scan select; patched matrices seed it
        # from their parent so CELF can warm-start (see select()).
        self.round0_bounds: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        return len(self.candidate_ids)

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    def new_covered_mask(self) -> np.ndarray:
        """A fresh all-uncovered mask over the kernel's user universe."""
        return np.zeros(self.n_users, dtype=bool)

    def cover(self, j: int, covered: np.ndarray) -> None:
        """Mark candidate index ``j``'s users as covered in ``covered``."""
        covered[self.col[self.indptr[j] : self.indptr[j + 1]]] = True

    # ------------------------------------------------------------------
    def csr_arrays(self) -> Dict[str, np.ndarray]:
        """The kernel's numeric payload, ready for shared-memory mapping.

        Returns the four arrays of the layout contract (class docstring):
        ``user_ids`` int64 ``(n_users,)``, ``weights`` float64
        ``(n_users,)``, ``indptr`` int64 ``(n_candidates + 1,)``, ``col``
        int64 ``(nnz,)`` — all C-contiguous, so
        ``SharedArrayStore.create`` copies them into a segment without a
        conversion pass and :meth:`from_csr_arrays` on the mapped views
        reconstructs a matrix whose kernels are bit-identical to this
        one's.
        """
        payload = {
            "user_ids": self.user_ids,
            "weights": self.weights,
            "indptr": self.indptr,
            "col": self.col,
        }
        for name, arr in payload.items():
            if not arr.flags.c_contiguous:  # pragma: no cover - contract
                raise SolverError(f"CSR array {name!r} lost contiguity")
        return payload

    @classmethod
    def from_csr_arrays(
        cls,
        candidate_ids: Sequence[int],
        user_ids: np.ndarray,
        weights: np.ndarray,
        indptr: np.ndarray,
        col: np.ndarray,
        table: InfluenceTable | None = None,
    ) -> "CoverageMatrix":
        """Rehydrate a matrix from its :meth:`csr_arrays` payload.

        The arrays are adopted as-is (typically read-only shared-memory
        views on a worker); ``_entry_w`` is the only derived allocation.
        ``table`` is optional — workers run the numeric kernels only and
        never consult it.
        """
        m = cls.__new__(cls)
        m.table = table
        m.candidate_ids = tuple(int(c) for c in candidate_ids)
        m.user_ids = user_ids
        m.weights = weights
        m.indptr = indptr
        m.col = col
        m._entry_w = weights[col]
        m.round0_bounds = None
        return m

    # ------------------------------------------------------------------
    def restrict(self, candidate_ids: Sequence[int]) -> "CoverageMatrix":
        """A sub-matrix over a candidate subset, sharing the user arrays.

        Exploits the CSR column structure: the subset's segments are
        gathered out of ``col`` by their ``indptr`` slices; ``user_ids``
        and ``weights`` are shared (a user covered only by out-of-subset
        candidates simply never appears in any kept segment).  Selection
        over the restricted matrix is identical — including exact
        ``fsum`` gains — to building a fresh matrix for the subset,
        because every kept segment carries the same weight multiset.

        The result upholds the class's array-layout contract: the
        gathered ``col`` is a fresh C-contiguous int64 array (the shared
        ``user_ids``/``weights`` already are), so restricted matrices
        feed :meth:`csr_arrays` without conversion copies.
        """
        subset = tuple(sorted(set(int(c) for c in candidate_ids)))
        unknown = set(subset) - set(self.candidate_ids)
        if unknown:
            raise SolverError(f"cannot restrict to unknown candidates {unknown}")
        pos = {cid: j for j, cid in enumerate(self.candidate_ids)}
        js = [pos[cid] for cid in subset]
        sub = CoverageMatrix.__new__(CoverageMatrix)
        sub.table = self.table
        sub.candidate_ids = subset
        sub.user_ids = self.user_ids
        sub.weights = self.weights
        sub.indptr = np.zeros(len(subset) + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for i, j in enumerate(js):
            seg = self.col[self.indptr[j] : self.indptr[j + 1]]
            segments.append(seg)
            sub.indptr[i + 1] = sub.indptr[i] + len(seg)
        # The per-segment slices of self.col are views; concatenate
        # gathers them into one fresh C-contiguous array (explicit no-op
        # normalisation pins the layout contract).
        sub.col = np.ascontiguousarray(
            np.concatenate(segments) if segments else np.zeros(0, dtype=np.int64)
        )
        sub._entry_w = sub.weights[sub.col]
        sub.round0_bounds = None
        return sub

    # ------------------------------------------------------------------
    def patched(
        self,
        table: InfluenceTable,
        added_cover: "dict[int, set[int]]",
        removed_uids: Sequence[int],
        model: CompetitionModel | None = None,
    ) -> "CoverageMatrix":
        """Splice dirty user rows into a new matrix for a mutated table.

        ``table`` is the already-patched influence table; ``added_cover``
        maps each dirty uid (added or re-positioned since this matrix was
        built) to the candidate ids now covering it, and ``removed_uids``
        lists users that left.  Every CSR entry touching a dirty or
        removed uid is deleted, surviving entries are remapped onto the
        new user universe, and the dirty uids' fresh entries are merged
        in — one ``lexsort`` over (row, column) pairs instead of a
        per-candidate Python rebuild.  The result is elementwise equal to
        ``CoverageMatrix(table, self.candidate_ids)``: segments hold the
        same index sets in the same ascending order and carry the same
        weight multisets, so selection over the spliced matrix is
        bit-identical to a fresh densification.

        Surviving users' weights are gathered, not recomputed — sound for
        any model whose ``user_share`` depends only on the user's ``F_o``
        (the evenly-split default), which churn cannot change for an
        untouched user.

        Above the :data:`_COMPACT_FRACTION` dirty-row threshold the patch
        compacts into a fresh densification instead (identical output,
        cheaper than splicing a mostly-dirty matrix).

        When this matrix carries ``round0_bounds``, the spliced matrix's
        bounds are seeded as ``old bound + inserted weight mass`` per
        candidate — a valid round-0 upper bound for the new table
        (removals only shrink gains; surviving weights are unchanged) —
        so a warm-started CELF select never misses a winner.
        """
        model = model or EvenlySplitModel()
        doomed = {int(u) for u in added_cover} | {int(u) for u in removed_uids}
        if self.n_users and len(doomed) > _COMPACT_FRACTION * self.n_users:
            new = CoverageMatrix(table, self.candidate_ids, model=model)
            # The warm-bound derivation (parent bound + inserted mass) is
            # independent of how the new matrix was assembled, so the
            # compacted rebuild carries it too.
            if self.round0_bounds is not None:
                pos_of_cid = {cid: j for j, cid in enumerate(self.candidate_ids)}
                ins_mass = np.zeros(self.n_candidates, dtype=np.float64)
                count = 0
                for uid, cids in added_cover.items():
                    if not cids:
                        continue
                    w = new.weights[np.searchsorted(new.user_ids, uid)]
                    for cid in cids:
                        ins_mass[pos_of_cid[cid]] += w
                        count += 1
                ins_mass += ins_mass * (count * _SUM_ULP)
                new.round0_bounds = self.round0_bounds + ins_mass
            return new
        n = self.n_candidates
        doomed_arr = np.fromiter(sorted(doomed), dtype=np.int64, count=len(doomed))
        user_doomed = np.isin(self.user_ids, doomed_arr)

        newcomers = np.fromiter(
            sorted(u for u, cids in added_cover.items() if cids),
            dtype=np.int64,
            count=sum(1 for cids in added_cover.values() if cids),
        )
        survivors = self.user_ids[~user_doomed]
        # Newcomers are all dirty, survivors are not: disjoint by
        # construction, so the union is a sorted merge of the two.
        new_uids = np.union1d(survivors, newcomers)

        new = CoverageMatrix.__new__(CoverageMatrix)
        new.table = table
        new.candidate_ids = self.candidate_ids
        new.user_ids = new_uids
        new.weights = np.empty(new_uids.shape[0], dtype=np.float64)
        new.weights[np.searchsorted(new_uids, survivors)] = self.weights[~user_doomed]
        newcomer_pos = np.searchsorted(new_uids, newcomers)
        for uid, pos in zip(newcomers.tolist(), newcomer_pos.tolist()):
            new.weights[pos] = model.user_share(table, uid)

        # Delete entries of doomed uids; remap the survivors' old user
        # indices onto the new universe (both orderings are by uid, so
        # per-segment ascending order is preserved by the remap).
        entry_keep = ~user_doomed[self.col]
        old_rows = np.repeat(np.arange(n, dtype=np.int64), np.diff(self.indptr))
        kept_rows = old_rows[entry_keep]
        remap = np.searchsorted(new_uids, self.user_ids)
        kept_cols = remap[self.col[entry_keep]]

        pos_of_cid = {cid: j for j, cid in enumerate(self.candidate_ids)}
        ins_rows_list: List[int] = []
        ins_cols_list: List[int] = []
        for uid, pos in zip(newcomers.tolist(), newcomer_pos.tolist()):
            for cid in added_cover[uid]:
                ins_rows_list.append(pos_of_cid[cid])
                ins_cols_list.append(pos)
        ins_rows = np.asarray(ins_rows_list, dtype=np.int64)
        ins_cols = np.asarray(ins_cols_list, dtype=np.int64)

        rows = np.concatenate((kept_rows, ins_rows))
        cols = np.concatenate((kept_cols, ins_cols))
        order = np.lexsort((cols, rows))
        # Fancy indexing materialises a fresh C-contiguous array; the
        # splice therefore upholds the layout contract like __init__.
        new.col = np.ascontiguousarray(cols[order])
        counts = np.bincount(rows, minlength=n)
        new.indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=new.indptr[1:])
        new._entry_w = new.weights[new.col]

        new.round0_bounds = None
        if self.round0_bounds is not None:
            ins_mass = np.bincount(
                ins_rows, weights=new.weights[ins_cols], minlength=n
            ).astype(np.float64)
            # Inflate by the sequential-sum tolerance so the seeded value
            # stays a rigorous upper bound (slack only costs re-screens).
            ins_mass += ins_mass * (len(ins_rows_list) * _SUM_ULP)
            new.round0_bounds = self.round0_bounds + ins_mass
        return new

    # ------------------------------------------------------------------
    def screened_gains(
        self, js: np.ndarray, covered: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised marginal gains for candidate indices ``js``.

        Returns ``(gains, tol)`` with the guarantee
        ``|gains[i] − exact_gain(js[i])| ≤ tol[i]``.
        """
        js = np.asarray(js, dtype=np.int64)
        starts = self.indptr[js]
        lens = self.indptr[js + 1] - starts
        total = int(lens.sum())
        sums = np.zeros(js.size, dtype=np.float64)
        if total:
            out_starts = np.zeros(js.size, dtype=np.int64)
            np.cumsum(lens[:-1], out=out_starts[1:])
            idx = np.repeat(starts - out_starts, lens) + np.arange(
                total, dtype=np.int64
            )
            vals = self._entry_w[idx] * ~covered[self.col[idx]]
            nonempty = np.flatnonzero(lens)
            # reduceat over the strictly increasing starts of the
            # non-empty segments; empty segments stay at the exact 0.0.
            sums[nonempty] = np.add.reduceat(vals, out_starts[nonempty])
        tol = lens * (_SUM_ULP * sums)
        return sums, tol

    def exact_gain(self, j: int, covered: np.ndarray) -> float:
        """Bit-exact (``fsum``) marginal gain of candidate index ``j``.

        Identical to ``model.candidate_value(table, cid, excluded)`` on
        the scalar path: ``fsum`` is correctly rounded, so it depends
        only on the multiset of uncovered weights, which both paths
        share.
        """
        seg = self.col[self.indptr[j] : self.indptr[j + 1]]
        live = seg[~covered[seg]]
        if live.size == 0:
            return 0.0
        return math.fsum(self.weights[live].tolist())

    def exact_live_counts(
        self, j: int, covered: np.ndarray, winv: np.ndarray, n_distinct: int
    ) -> np.ndarray:
        """Per-distinct-weight counts of candidate ``j``'s live users.

        ``winv`` maps each user index to its slot in a table of distinct
        weight values (``np.unique(weights, return_inverse=True)``).  The
        returned int64 count vector fully determines the live weight
        *multiset*, so summing count vectors across user shards and
        feeding the total to :func:`merged_exact_gain` reproduces
        :meth:`exact_gain` of the whole matrix bit-for-bit — integer
        count addition is exact, and ``fsum`` depends only on the
        multiset, not on how it was partitioned.
        """
        seg = self.col[self.indptr[j] : self.indptr[j + 1]]
        live = seg[~covered[seg]]
        if live.size == 0:
            return np.zeros(n_distinct, dtype=np.int64)
        return np.bincount(winv[live], minlength=n_distinct).astype(
            np.int64, copy=False
        )

    def objective_of(self, group: Sequence[int]) -> float:
        """Bit-exact objective ``cinf(G)`` of an explicit candidate group.

        One vectorized union over the group's CSR segments plus a single
        ``fsum`` over the covered weights — the weight multiset equals
        the scalar :meth:`~repro.competition.CompetitionModel.group_value`
        multiset, so the correctly-rounded sum is bit-equal to it.  This
        is the path objective *reporting* (analysis curves, budgeted
        ratios) uses instead of rebuilding Python sets per call.
        """
        index = {cid: j for j, cid in enumerate(self.candidate_ids)}
        covered = self.new_covered_mask()
        for cid in set(int(c) for c in group):
            j = index.get(cid)
            if j is None:
                raise SolverError(
                    f"candidate {cid} is not in this coverage matrix"
                )
            self.cover(j, covered)
        if not covered.any():
            return 0.0
        return math.fsum(self.weights[covered].tolist())

    # ------------------------------------------------------------------
    def select(
        self,
        k: int,
        cancel_check: CancelCheck = None,
        warm_start: bool = False,
    ) -> GreedyOutcome:
        """Greedy ``k``-selection, identical to :func:`greedy_select`.

        Each round refreshes candidates lazily in CELF bound order —
        the first chunk is a single candidate, then chunks grow
        geometrically — with each chunk evaluated in one vectorized
        pass; candidates whose stale upper bound falls below the best
        fresh lower bound are never touched.  Round winners are
        confirmed with exact ``fsum`` gains.

        ``warm_start`` seeds round 0 from :attr:`round0_bounds` (when
        present) instead of the full first-round scan, so round 0 runs
        the same lazy refresh as later rounds.  Because the seeded values
        are rigorous upper bounds — captured from a previous full scan of
        this matrix, or carried through :meth:`patched` with the inserted
        weight mass added — the refresh/confirm logic is unchanged and
        the selection and gains stay bit-identical; only the
        ``evaluations`` counter (work actually performed) shrinks.
        """
        n = self.n_candidates
        if k < 1 or k > n:
            raise SolverError(f"k={k} infeasible for {n} candidates")
        covered = self.new_covered_mask()
        in_play = np.ones(n, dtype=bool)
        warm = warm_start and self.round0_bounds is not None
        ub = self.round0_bounds.copy() if warm else np.full(n, np.inf)
        flb = np.full(n, -np.inf)
        stamp = np.full(n, -1, dtype=np.int64)
        evaluations = 0
        selected: List[int] = []
        gains: List[float] = []
        for rnd in range(k):
            if cancel_check is not None:
                cancel_check()
            best_flb = -np.inf
            chunk = n if (rnd == 0 and not warm) else 1
            while True:
                cand = np.flatnonzero(in_play & (stamp < rnd) & (ub >= best_flb))
                if cand.size == 0:
                    break
                if cand.size > chunk:
                    top = np.argpartition(-ub[cand], chunk - 1)[:chunk]
                    cand = cand[top]
                g, t = self.screened_gains(cand, covered)
                evaluations += int(cand.size)
                stamp[cand] = rnd
                ub[cand] = g + t
                flb[cand] = g - t
                best_flb = max(best_flb, float((g - t).max()))
                chunk = min(n, chunk * 8)
            if rnd == 0 and not warm and self.round0_bounds is None:
                # Every candidate was just screened, so ub holds the full
                # round-0 upper-bound vector; keep it for warm restarts.
                self.round0_bounds = ub.copy()
            fresh = np.flatnonzero(in_play & (stamp == rnd))
            round_flb = float(flb[fresh].max())
            near = fresh[ub[fresh] >= round_flb]
            best_j = -1
            best_gain = -1.0
            for j in near.tolist():  # ascending index == ascending cid
                gain = self.exact_gain(j, covered)
                if gain > best_gain:
                    best_gain = gain
                    best_j = j
            assert best_j >= 0
            selected.append(int(self.candidate_ids[best_j]))
            gains.append(best_gain)
            in_play[best_j] = False
            self.cover(best_j, covered)
        return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)


def merged_exact_gain(distinct_w: np.ndarray, counts: np.ndarray) -> float:
    """Exact gain from distinct weight values and their live counts.

    ``fsum`` over the expanded multiset ``repeat(distinct_w, counts)`` is
    correctly rounded, so it equals :meth:`CoverageMatrix.exact_gain`
    computed over the same live users in one process — the coordinator
    side of the cross-shard exact merge.  Under the evenly-split model
    the weights take at most ``max |F_o| + 1`` distinct values
    (``1/(c+1)``), so the expansion is tiny next to the user universe.
    """
    total = int(counts.sum())
    if total == 0:
        return 0.0
    return math.fsum(np.repeat(distinct_w, counts).tolist())


def coverage_select(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CompetitionModel | None = None,
    cancel_check: CancelCheck = None,
) -> GreedyOutcome:
    """One-shot CSR-kernel greedy selection (builds the matrix inline)."""
    matrix = CoverageMatrix(table, candidate_ids, model=model)
    return matrix.select(k, cancel_check=cancel_check)


def group_objective(
    table: InfluenceTable,
    group: Sequence[int],
    model: CompetitionModel | None = None,
) -> float:
    """Vectorized one-shot ``cinf(G)`` for an arbitrary candidate group.

    Densifies the table restricted to ``G`` (its covered universe *is*
    the union coverage) and ``fsum``s the weight vector — bit-equal to
    the scalar ``model.group_value`` / :func:`~repro.competition.cinf_group`
    oracle, which stays around precisely to differential-test this path.
    Reporting call sites (:mod:`repro.analysis`, the budgeted solver's
    ratio loop) use this instead of rebuilding per-user Python sets on
    every evaluation.
    """
    cids = set(int(c) for c in group)
    if not cids:
        return 0.0
    matrix = CoverageMatrix(table.restricted(cids), sorted(cids), model=model)
    return math.fsum(matrix.weights.tolist())
