"""Vectorized CSR selection kernel for the greedy phase.

:func:`greedy_select` walks Python sets candidate-by-candidate every
round; after PR 1 vectorised verification, that loop is the remaining
per-candidate-per-round hot path shared by every solver.  This module
densifies an :class:`InfluenceTable` once into CSR candidate→user index
arrays plus a per-user weight vector (``w_o = 1/(|F_o|+1)`` under the
evenly-split model) and computes a whole round's marginal gains as
segmented sums over the uncovered entries, layered with the CELF lazy
bound so stale segments are skipped entirely.

**Selection-identity contract.**  The kernel returns the *same*
``selected`` tuple as :func:`greedy_select` — including the smallest-id
tie-break on exactly equal gains — and the same per-round gains.  Two
mechanisms make that exact rather than approximate:

* Vectorised segment sums (``np.add.reduceat``) are sequential, so their
  result can differ from the scalar path's correctly-rounded ``fsum`` by
  a few ulps.  They are therefore used only to *screen*: each screened
  gain carries a rigorous error bound (``len · 2⁻⁵² · sum`` dominates the
  worst-case sequential summation error for non-negative terms), and any
  candidate whose screened interval overlaps the round maximum is
  re-evaluated with ``math.fsum`` over the identical weight multiset —
  bit-equal to the scalar gain.  The winner is chosen among those exact
  values by the scalar loop's own ``gain > best`` ascending-id scan.
* The CELF bound uses the screened *upper* edge (gain + tolerance), so a
  stale bound below the freshest lower edge certifies strict inferiority
  (ties included) and the whole segment is skipped.

The tolerances only ever cause extra exact evaluations, never a missed
winner, so the kernel is safe for the adversarial exact-tie tables the
differential suite throws at it.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..competition import CompetitionModel, EvenlySplitModel, InfluenceTable
from ..exceptions import SolverError
from .selection import CancelCheck, GreedyOutcome

# Sequential summation of m non-negative doubles is off by at most
# (m-1)·u·sum with u = 2^-53; one extra power of two of slack covers the
# gather/multiply path and keeps the bound trivially safe.
_SUM_ULP = 2.0 ** -52


class CoverageMatrix:
    """CSR densification of an influence table for vectorized selection.

    Args:
        table: Resolved influence relationships.
        candidate_ids: Candidates selectable from the table; the table
            must not reference candidates outside this set.
        model: Competition model supplying per-user weights (evenly-split
            by default).  Any model whose ``user_share`` is independent
            of the selection densifies exactly.
    """

    def __init__(
        self,
        table: InfluenceTable,
        candidate_ids: Sequence[int],
        model: CompetitionModel | None = None,
    ):
        model = model or EvenlySplitModel()
        table.validate_against(set(candidate_ids))
        self.table = table
        self.candidate_ids: Tuple[int, ...] = tuple(sorted(candidate_ids))
        n = len(self.candidate_ids)

        universe: set = set()
        for cid in self.candidate_ids:
            universe |= table.omega_c.get(cid, set())
        self.user_ids = np.fromiter(
            sorted(universe), dtype=np.int64, count=len(universe)
        )
        self.weights = np.fromiter(
            (model.user_share(table, int(uid)) for uid in self.user_ids),
            dtype=np.float64,
            count=len(self.user_ids),
        )

        self.indptr = np.zeros(n + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for j, cid in enumerate(self.candidate_ids):
            users = table.omega_c.get(cid)
            if users:
                seg = np.fromiter(users, dtype=np.int64, count=len(users))
                seg.sort()
                seg = np.searchsorted(self.user_ids, seg)
                segments.append(seg)
                self.indptr[j + 1] = self.indptr[j] + len(seg)
            else:
                self.indptr[j + 1] = self.indptr[j]
        self.col = (
            np.concatenate(segments)
            if segments
            else np.zeros(0, dtype=np.int64)
        )
        self._entry_w = self.weights[self.col]

    # ------------------------------------------------------------------
    @property
    def n_candidates(self) -> int:
        return len(self.candidate_ids)

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    def new_covered_mask(self) -> np.ndarray:
        """A fresh all-uncovered mask over the kernel's user universe."""
        return np.zeros(self.n_users, dtype=bool)

    def cover(self, j: int, covered: np.ndarray) -> None:
        """Mark candidate index ``j``'s users as covered in ``covered``."""
        covered[self.col[self.indptr[j] : self.indptr[j + 1]]] = True

    # ------------------------------------------------------------------
    def restrict(self, candidate_ids: Sequence[int]) -> "CoverageMatrix":
        """A sub-matrix over a candidate subset, sharing the user arrays.

        Exploits the CSR column structure: the subset's segments are
        gathered out of ``col`` by their ``indptr`` slices; ``user_ids``
        and ``weights`` are shared (a user covered only by out-of-subset
        candidates simply never appears in any kept segment).  Selection
        over the restricted matrix is identical — including exact
        ``fsum`` gains — to building a fresh matrix for the subset,
        because every kept segment carries the same weight multiset.
        """
        subset = tuple(sorted(set(int(c) for c in candidate_ids)))
        unknown = set(subset) - set(self.candidate_ids)
        if unknown:
            raise SolverError(f"cannot restrict to unknown candidates {unknown}")
        pos = {cid: j for j, cid in enumerate(self.candidate_ids)}
        js = [pos[cid] for cid in subset]
        sub = CoverageMatrix.__new__(CoverageMatrix)
        sub.table = self.table
        sub.candidate_ids = subset
        sub.user_ids = self.user_ids
        sub.weights = self.weights
        sub.indptr = np.zeros(len(subset) + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for i, j in enumerate(js):
            seg = self.col[self.indptr[j] : self.indptr[j + 1]]
            segments.append(seg)
            sub.indptr[i + 1] = sub.indptr[i] + len(seg)
        sub.col = (
            np.concatenate(segments) if segments else np.zeros(0, dtype=np.int64)
        )
        sub._entry_w = sub.weights[sub.col]
        return sub

    # ------------------------------------------------------------------
    def screened_gains(
        self, js: np.ndarray, covered: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised marginal gains for candidate indices ``js``.

        Returns ``(gains, tol)`` with the guarantee
        ``|gains[i] − exact_gain(js[i])| ≤ tol[i]``.
        """
        js = np.asarray(js, dtype=np.int64)
        starts = self.indptr[js]
        lens = self.indptr[js + 1] - starts
        total = int(lens.sum())
        sums = np.zeros(js.size, dtype=np.float64)
        if total:
            out_starts = np.zeros(js.size, dtype=np.int64)
            np.cumsum(lens[:-1], out=out_starts[1:])
            idx = np.repeat(starts - out_starts, lens) + np.arange(
                total, dtype=np.int64
            )
            vals = self._entry_w[idx] * ~covered[self.col[idx]]
            nonempty = np.flatnonzero(lens)
            # reduceat over the strictly increasing starts of the
            # non-empty segments; empty segments stay at the exact 0.0.
            sums[nonempty] = np.add.reduceat(vals, out_starts[nonempty])
        tol = lens * (_SUM_ULP * sums)
        return sums, tol

    def exact_gain(self, j: int, covered: np.ndarray) -> float:
        """Bit-exact (``fsum``) marginal gain of candidate index ``j``.

        Identical to ``model.candidate_value(table, cid, excluded)`` on
        the scalar path: ``fsum`` is correctly rounded, so it depends
        only on the multiset of uncovered weights, which both paths
        share.
        """
        seg = self.col[self.indptr[j] : self.indptr[j + 1]]
        live = seg[~covered[seg]]
        if live.size == 0:
            return 0.0
        return math.fsum(self.weights[live].tolist())

    # ------------------------------------------------------------------
    def select(self, k: int, cancel_check: CancelCheck = None) -> GreedyOutcome:
        """Greedy ``k``-selection, identical to :func:`greedy_select`.

        Each round refreshes candidates lazily in CELF bound order —
        the first chunk is a single candidate, then chunks grow
        geometrically — with each chunk evaluated in one vectorized
        pass; candidates whose stale upper bound falls below the best
        fresh lower bound are never touched.  Round winners are
        confirmed with exact ``fsum`` gains.
        """
        n = self.n_candidates
        if k < 1 or k > n:
            raise SolverError(f"k={k} infeasible for {n} candidates")
        covered = self.new_covered_mask()
        in_play = np.ones(n, dtype=bool)
        ub = np.full(n, np.inf)
        flb = np.full(n, -np.inf)
        stamp = np.full(n, -1, dtype=np.int64)
        evaluations = 0
        selected: List[int] = []
        gains: List[float] = []
        for rnd in range(k):
            if cancel_check is not None:
                cancel_check()
            best_flb = -np.inf
            chunk = n if rnd == 0 else 1
            while True:
                cand = np.flatnonzero(in_play & (stamp < rnd) & (ub >= best_flb))
                if cand.size == 0:
                    break
                if cand.size > chunk:
                    top = np.argpartition(-ub[cand], chunk - 1)[:chunk]
                    cand = cand[top]
                g, t = self.screened_gains(cand, covered)
                evaluations += int(cand.size)
                stamp[cand] = rnd
                ub[cand] = g + t
                flb[cand] = g - t
                best_flb = max(best_flb, float((g - t).max()))
                chunk = min(n, chunk * 8)
            fresh = np.flatnonzero(in_play & (stamp == rnd))
            round_flb = float(flb[fresh].max())
            near = fresh[ub[fresh] >= round_flb]
            best_j = -1
            best_gain = -1.0
            for j in near.tolist():  # ascending index == ascending cid
                gain = self.exact_gain(j, covered)
                if gain > best_gain:
                    best_gain = gain
                    best_j = j
            assert best_j >= 0
            selected.append(int(self.candidate_ids[best_j]))
            gains.append(best_gain)
            in_play[best_j] = False
            self.cover(best_j, covered)
        return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)


def coverage_select(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CompetitionModel | None = None,
    cancel_check: CancelCheck = None,
) -> GreedyOutcome:
    """One-shot CSR-kernel greedy selection (builds the matrix inline)."""
    matrix = CoverageMatrix(table, candidate_ids, model=model)
    return matrix.select(k, cancel_check=cancel_check)
