"""The IQuad-tree solver (paper §V-D, Algorithms 2–3) and its variants.

Four phases:

1. **Pruning** — build the IQuad-tree over the users; traverse it once per
   abstract facility (memoised per leaf) to split users into
   IS-confirmed / NIR-pruned / to-verify.
2. **NIB integration** (variant-dependent) — R-tree range queries intersect
   each facility's to-verify set with the users whose NIB region contains
   the facility (Algorithm 2, lines 5–12).  The IQT-PINO variant also
   applies the IA confirmation; plain IQT skips IA because the IS rule
   subsumes it at lower cost (Table I); IQT-C skips NIB entirely.
3. **Verification** — exact influence decision with the PINOCCHIO early
   stopping strategy for every surviving pair (line 14).
4. **Greedy selection** — the shared ``(1 − 1/e)`` greedy.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Iterable, Set

from typing import Optional

from ..competition import InfluenceTable
from ..entities import AbstractFacility, SpatialDataset
from ..influence import (
    BatchInfluenceEvaluator,
    InfluenceEvaluator,
    ProbabilityFunction,
    paper_default_pf,
)
from ..pruning import PinocchioPruner, PruningStats
from ..spatial import IQuadTree
from .base import (
    MC2LSProblem,
    PhaseTimer,
    ResolvedInstance,
    Solver,
    SolverResult,
)
from .selection import run_selection


class IQTVariant(enum.Enum):
    """Which classical pruning rules are layered on top of IS/NIR."""

    IQT = "iqt"  # IS + NIR + NIB (the paper's default)
    IQT_C = "iqt-c"  # IS + NIR only
    IQT_PINO = "iqt-pino"  # IS + NIR + NIB + IA


class IQTSolver(Solver):
    """IQuad-tree pruning + verification + greedy selection.

    Args:
        d_hat: Leaf diagonal ``d̂`` of the IQuad-tree, km (paper default 2).
        variant: Which classical rules to combine with IS/NIR.
        early_stopping: Use the PINOCCHIO early-stopping verification
            (Algorithm 2 line 14); on by default as in the paper.
        exact_rounded: Tighten the NIR rule from the rounded square's MBR
            to the exact rounded square (ablation knob; paper uses MBR).
        batch_verify: Run phase 3 through the batched kernel — one
            vectorised pass per facility over its surviving users instead
            of one scalar call per pair (bit-identical decisions and
            counters); ``False`` restores the scalar PINOCCHIO loop for
            the ablation benchmarks.
        fast_select: Run phase 4 through the vectorized CSR selection
            kernel (identical selection and gains); ``False`` restores
            the scalar greedy for the ablation benchmarks.
    """

    def __init__(
        self,
        d_hat: float = 2.0,
        variant: IQTVariant = IQTVariant.IQT,
        early_stopping: bool = True,
        exact_rounded: bool = False,
        batch_verify: bool = True,
        fast_select: bool = True,
    ):
        self.d_hat = d_hat
        self.variant = variant
        self.early_stopping = early_stopping
        self.exact_rounded = exact_rounded
        self.batch_verify = batch_verify
        self.fast_select = fast_select
        self.name = variant.value

    # ------------------------------------------------------------------
    def solve(self, problem: MC2LSProblem) -> SolverResult:
        timer = PhaseTimer()
        resolved = self._resolve(timer, problem.dataset, problem.tau, problem.pf)
        with timer.mark("greedy"):
            outcome = run_selection(
                resolved.table,
                [c.fid for c in problem.dataset.candidates],
                problem.k,
                fast_select=self.fast_select,
                capture=problem.capture,
            )
        return SolverResult(
            selected=outcome.selected,
            objective=outcome.objective,
            table=resolved.table,
            timings=timer.finish(),
            evaluation=resolved.evaluation,
            pruning=resolved.pruning,
            gains=outcome.gains,
        )

    def resolve(
        self,
        dataset: SpatialDataset,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
    ) -> ResolvedInstance:
        """Phases 1–3 only: the influence table for ``(dataset, PF, τ)``."""
        timer = PhaseTimer()
        resolved = self._resolve(timer, dataset, tau, pf or paper_default_pf())
        resolved.timings = timer.finish()
        return resolved

    def _resolve(
        self,
        timer: PhaseTimer,
        dataset: SpatialDataset,
        tau: float,
        pf: ProbabilityFunction,
    ) -> ResolvedInstance:
        evaluator = InfluenceEvaluator(pf, tau, early_stopping=self.early_stopping)

        with timer.mark("index"):
            tree = IQuadTree(
                dataset.users,
                d_hat=self.d_hat,
                tau=tau,
                pf=pf,
                region=dataset.region,
                exact_rounded=self.exact_rounded,
            )

        # Phase 1: IS/NIR pruning via one traversal per abstract facility.
        confirmed: Dict[AbstractFacility, FrozenSet[int]] = {}
        to_verify: Dict[AbstractFacility, Set[int]] = {}
        with timer.mark("pruning"):
            for v in dataset.abstract_facilities:
                result = tree.traverse(v.x, v.y)
                confirmed[v] = result.influenced
                to_verify[v] = set(result.to_verify)

        # Phase 2: optional NIB (and IA) integration.
        if self.variant in (IQTVariant.IQT, IQTVariant.IQT_PINO):
            use_ia = self.variant is IQTVariant.IQT_PINO
            with timer.mark("nib"):
                extra_confirmed = self._apply_nib(
                    dataset, tau, pf, confirmed, to_verify, use_ia=use_ia
                )
                if use_ia:
                    for v, uids in extra_confirmed.items():
                        confirmed[v] = confirmed[v] | uids

        # Phase 3: exact verification of the survivors.  Candidates are
        # verified first; competitor verification is then restricted to
        # users influenced by at least one candidate (the same optimisation
        # Algorithm 1 line 10 grants k-CIFP — uncovered users never enter
        # any cinf computation).  Competitor pairs already confirmed by the
        # traversal cost nothing and are kept for every user.
        omega_c: Dict[int, Set[int]] = {c.fid: set() for c in dataset.candidates}
        f_o: Dict[int, Set[int]] = {u.uid: set() for u in dataset.users}
        users_by_uid = {u.uid: u for u in dataset.users}
        batch = (
            BatchInfluenceEvaluator(
                pf,
                tau,
                early_stopping=self.early_stopping,
                stats=evaluator.stats,
            )
            if self.batch_verify
            else None
        )
        arena = dataset.arena if batch is not None else None

        def verify(v: AbstractFacility, uids: list) -> "Iterable[int]":
            """Ids among ``uids`` that ``v`` influences (batch or scalar)."""
            if batch is not None:
                hit = batch.influences_users(v.x, v.y, arena, arena.rows_for(uids))
                return (uid for uid, h in zip(uids, hit) if h)
            return (
                uid
                for uid in uids
                if evaluator.influences(v.x, v.y, users_by_uid[uid].positions)
            )

        with timer.mark("verification"):
            for v in dataset.candidates:
                target = omega_c[v.fid]
                target |= confirmed[v]
                survivors = sorted(to_verify[v] - confirmed[v])
                target.update(verify(v, survivors))
            influenced_uids: Set[int] = set()
            for users in omega_c.values():
                influenced_uids |= users
            for v in dataset.facilities:
                for uid in confirmed[v]:
                    f_o[uid].add(v.fid)
                survivors = sorted(
                    (to_verify[v] - confirmed[v]) & influenced_uids
                )
                for uid in verify(v, survivors):
                    f_o[uid].add(v.fid)

        # Final pair accounting: confirmed by IS (and IA for IQT-PINO),
        # still-to-verify after every enabled rule, pruned = the rest.
        n_pairs = len(dataset.users) * len(dataset.abstract_facilities)
        n_confirmed = sum(len(s) for s in confirmed.values())
        n_verify = sum(len(s) for s in to_verify.values())
        pruning = PruningStats(
            confirmed=n_confirmed,
            pruned=n_pairs - n_confirmed - n_verify,
            verify=n_verify,
        )

        return ResolvedInstance(
            table=InfluenceTable(omega_c, f_o),
            evaluation=evaluator.stats,
            pruning=pruning,
        )

    # ------------------------------------------------------------------
    def _apply_nib(
        self,
        dataset: SpatialDataset,
        tau: float,
        pf: ProbabilityFunction,
        confirmed: Dict[AbstractFacility, FrozenSet[int]],
        to_verify: Dict[AbstractFacility, Set[int]],
        use_ia: bool,
    ) -> Dict[AbstractFacility, Set[int]]:
        """Intersect each facility's to-verify set with its NIB survivors.

        Implements Algorithm 2 lines 5–12: two R-trees (``RT_C``, ``RT_F``)
        are range-queried with each user's NIB rectangle; users outside a
        facility's NIB region are removed from its verification set.  When
        ``use_ia`` is set, users whose IA region contains the facility are
        returned for direct confirmation (IQT-PINO).
        """
        pruner_c = PinocchioPruner(dataset.candidates, tau, pf, use_ia=use_ia)
        pruner_f = PinocchioPruner(dataset.facilities, tau, pf, use_ia=use_ia)
        nib_possible: Dict[AbstractFacility, Set[int]] = {
            v: set() for v in dataset.abstract_facilities
        }
        ia_confirmed: Dict[AbstractFacility, Set[int]] = {
            v: set() for v in dataset.abstract_facilities
        }
        # NIB can only shrink verification sets, so users the NIR rule
        # already eliminated against every facility need no NIB queries.
        relevant: Set[int] = set()
        for uids in to_verify.values():
            relevant |= uids
        for user in dataset.users:
            if user.uid not in relevant:
                continue
            for pruner in (pruner_c, pruner_f):
                result = pruner.classify_user(user)
                for v in result.verify:
                    nib_possible[v].add(user.uid)
                for v in result.confirmed:  # only populated when use_ia
                    ia_confirmed[v].add(user.uid)
        for v in dataset.abstract_facilities:
            allowed = nib_possible[v] | ia_confirmed[v]
            to_verify[v] &= allowed
            to_verify[v] -= ia_confirmed[v]
        return ia_confirmed
