"""Immutable, content-hashed dataset snapshots for the serving engine.

A :class:`DatasetSnapshot` pins down *one version* of a user/facility
population: the wrapped :class:`~repro.entities.SpatialDataset`, its
eagerly built position arena (the CSR packing the batched verification
kernel reads), and R-trees over the candidate and competitor sites.  The
content hash covers every coordinate and id in the dataset, so two
snapshots with equal hashes are interchangeable for any query — which is
exactly the property the engine's caches key on: a republished population
gets a new hash, and entries computed under the old one can never be
served against it.

Supersession is explicit: when the engine publishes a successor, the old
snapshot is marked superseded and its cache entries are dropped.  The
:meth:`DatasetSnapshot.from_streaming` bridge turns a live
:class:`~repro.streaming.StreamingMC2LS` session into a publishable
version (the session's event counter becomes the snapshot version) and
drains the session's :class:`~repro.streaming.DeltaLog` into the
snapshot's ``delta`` attribute — the hook that lets the engine patch
cached :class:`~repro.service.PreparedInstance`\\ s instead of
re-resolving them when the population churns.
"""

from __future__ import annotations

import hashlib
import threading
from typing import TYPE_CHECKING, Optional

import numpy as np

from ..entities import SpatialDataset
from ..spatial import RTree

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..streaming import DeltaLog, StreamingMC2LS


def dataset_content_hash(dataset: SpatialDataset) -> str:
    """Deterministic SHA-256 over every id and coordinate in the dataset.

    Users are hashed in dataset order with their full position history;
    facilities and candidates with their id and location.  Any mutation
    that could change an influence relationship changes the hash.
    """
    h = hashlib.sha256()
    for user in dataset.users:
        h.update(np.int64(user.uid).tobytes())
        h.update(np.ascontiguousarray(user.positions, dtype=np.float64).tobytes())
    for tag, group in ((b"F", dataset.facilities), (b"C", dataset.candidates)):
        for v in group:
            h.update(tag)
            h.update(np.int64(v.fid).tobytes())
            h.update(np.float64(v.x).tobytes())
            h.update(np.float64(v.y).tobytes())
    return h.hexdigest()


class DatasetSnapshot:
    """One immutable, identifiable version of a serving population.

    Args:
        dataset: The wrapped problem instance.
        version: Monotone version number (assigned by the engine at
            publication when left at 0).
        label: Human-readable tag for logs and stats.

    Construction eagerly builds the dataset's position arena and the two
    facility R-trees so the cost is paid once at publication rather than
    inside the first query.
    """

    def __init__(
        self, dataset: SpatialDataset, version: int = 0, label: str = ""
    ) -> None:
        self.dataset = dataset
        self.version = version
        self.label = label or dataset.name
        self.content_hash = dataset_content_hash(dataset)
        #: Churn relative to the previous snapshot of the same streaming
        #: session (set by :meth:`from_streaming`); ``None`` for batch
        #: snapshots and first publications.
        self.delta: Optional["DeltaLog"] = None
        self._superseded = threading.Event()
        # Warm the derived structures queries will need: the CSR position
        # arena (batched verification) and the site R-trees (pruning).
        self.arena = dataset.arena
        self.candidate_rtree = RTree.from_points(
            (v.location, v) for v in dataset.candidates
        )
        self.facility_rtree = RTree.from_points(
            (v.location, v) for v in dataset.facilities
        )

    # ------------------------------------------------------------------
    @property
    def superseded(self) -> bool:
        """Whether a newer snapshot has replaced this one."""
        return self._superseded.is_set()

    def supersede(self) -> None:
        """Mark this snapshot as replaced (idempotent, thread-safe)."""
        self._superseded.set()

    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(
        cls, dataset: SpatialDataset, version: int = 0, label: str = ""
    ) -> "DatasetSnapshot":
        """Snapshot a batch dataset."""
        return cls(dataset, version=version, label=label)

    @classmethod
    def from_streaming(
        cls,
        session: "StreamingMC2LS",
        version: Optional[int] = None,
        label: str = "",
    ) -> "DatasetSnapshot":
        """Publish the current state of a streaming session.

        The surviving population is materialised through
        ``session.current_dataset()``; the session's ``events_processed``
        counter supplies the version unless one is given, so successive
        publications from the same session are naturally ordered.  The
        session's delta log is drained against the new content hash and
        attached as ``snapshot.delta``, chaining successive snapshots for
        incremental prepared-instance maintenance.
        """
        snap = cls(
            session.current_dataset(),
            version=session.events_processed if version is None else version,
            label=label or "streaming",
        )
        drain = getattr(session, "drain_delta", None)
        if drain is not None:
            snap.delta = drain(snap.content_hash)
        return snap

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """One-line summary used in engine stats and the CLI."""
        return (
            f"snapshot v{self.version} [{self.content_hash[:12]}] "
            f"{self.dataset.describe()}"
        )

    def __repr__(self) -> str:
        return (
            f"DatasetSnapshot(version={self.version}, "
            f"hash={self.content_hash[:12]}, label={self.label!r})"
        )
