"""Sharded multi-process selection: coordinator/worker greedy over shards.

The serving engine's thread pool (PR 5) still runs every kernel in one
process, so resolve-heavy work serializes on the GIL and one address
space must hold the entire population.  This module splits the work
across persistent worker *processes*:

* The numeric payloads — the :class:`~repro.influence.PositionArena`
  arrays and the CSR :class:`~repro.solvers.CoverageMatrix` arrays — live
  in one :class:`~repro.service.shared.SharedArrayStore` segment per
  snapshot, mapped zero-copy by every worker (content-hash handshake
  included).
* A :class:`ShardPlan` partitions users into contiguous shards (CSR rows
  stay contiguous per shard; the candidate axis is replicated), and each
  worker holds a :class:`ShardedCoverageMatrix` over its shard that
  reuses the existing ``screened_gains`` / ``cover`` kernels unchanged.
* The :class:`ShardCoordinator` drives persistent :class:`ShardWorker`
  processes over ``multiprocessing`` pipes: it fans out resolution (each
  worker batch-verifies its user shard against every candidate and
  competitor), then runs the distributed CELF greedy — workers return
  per-shard screened gains, the coordinator merges them, confirms the
  round winner exactly, and broadcasts the winner so workers update
  their covered masks.

**Bit-identity contract.**  Distributed selection returns the *same*
selections, per-round gains and objective as the single-process
:meth:`CoverageMatrix.select <repro.solvers.CoverageMatrix.select>`:

* The evenly-split objective is a sum over users, so per-shard screened
  gains are shard-additive.  The merged screened value may differ from
  the whole-matrix ``reduceat`` by a few ulps, but screened values only
  *gate* exact confirmation; the merged tolerance ``Σ tᵢ + K·2⁻⁵²·g``
  rigorously bounds both the per-shard summation error and the K-term
  merge error, so no candidate that could win the round is ever skipped
  (the same argument that makes the single-process CELF screen safe).
* Winner confirmation is exact by construction: the weights take few
  distinct values (``1/(c+1)``), each worker returns the *integer count*
  of live users per distinct weight, counts add exactly across shards,
  and :func:`~repro.solvers.merged_exact_gain` applies one correctly
  rounded ``fsum`` to the merged multiset — bit-equal to
  ``exact_gain`` on the whole matrix, which is bit-equal to the scalar
  path.  The winner scan then runs in the same ascending-candidate order
  with the same ``gain > best`` comparison.
* Sharded resolution decides each ``(facility, user)`` pair through the
  batched kernel, whose decisions and counters are bit-identical to the
  scalar evaluator per pair; per-user counters are additive, so the
  merged :class:`~repro.influence.EvaluationStats` equals a
  single-process all-pairs batched resolve.

Failure handling is leak-proof: worker death or a broken pipe triggers
:meth:`ShardCoordinator._fail`, which terminates every worker, closes
and unlinks every shared segment, and raises
:class:`~repro.exceptions.ShardError`; the module-level ``atexit`` guard
in :mod:`~repro.service.shared` covers coordinator death.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing
import numpy as np

from ..exceptions import ShardError, SolverError
from ..influence import BatchInfluenceEvaluator, EvaluationStats, PositionArena
from ..solvers.coverage import _SUM_ULP, CoverageMatrix, merged_exact_gain
from ..solvers.selection import CancelCheck, GreedyOutcome
from .shared import SharedArrayStore
from .snapshot import DatasetSnapshot


# ----------------------------------------------------------------------
# Shard planning
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardPlan:
    """Contiguous partition of user rows into shards.

    ``boundaries`` has ``n_shards + 1`` nondecreasing entries;
    shard ``i`` owns rows ``[boundaries[i], boundaries[i + 1])``.
    Contiguity is what keeps every shard's CSR slice a *slice*: shared
    ``weights`` / ``winv`` sub-arrays are zero-copy views and the
    per-candidate segment split is a ``searchsorted`` range per shard.
    """

    boundaries: Tuple[int, ...]

    @property
    def n_shards(self) -> int:
        return len(self.boundaries) - 1

    def shard(self, i: int) -> Tuple[int, int]:
        """``(lo, hi)`` row range of shard ``i``."""
        return self.boundaries[i], self.boundaries[i + 1]

    def __iter__(self):
        return (self.shard(i) for i in range(self.n_shards))

    @classmethod
    def balanced(cls, costs: Sequence[float], n_shards: int) -> "ShardPlan":
        """Split rows into ``n_shards`` contiguous runs of ~equal cost.

        ``costs`` is a per-row work estimate (positions per user for
        resolution, CSR entries per user for selection).  The split
        places cuts at the cost quantiles, then nudges them so every
        shard is non-empty while ``n_shards <= len(costs)``.  When there
        are more shards than rows, the tail shards are *empty* rather
        than dropped — every worker in a fixed-size fleet must receive a
        (possibly trivial) shard, or the coordinator's lockstep fan-out
        would wait forever on the unassigned ones.
        """
        costs_arr = np.asarray(costs, dtype=np.float64)
        n = int(costs_arr.shape[0])
        if n == 0:
            raise SolverError("cannot shard zero rows")
        n_shards = max(1, int(n_shards))
        effective = min(n_shards, n)
        cum = np.cumsum(costs_arr)
        total = float(cum[-1])
        if total <= 0.0:
            cuts = [round(n * i / effective) for i in range(1, effective)]
        else:
            targets = total * np.arange(1, effective) / effective
            cuts = (np.searchsorted(cum, targets, side="left") + 1).tolist()
        bounds = [0]
        for i, cut in enumerate(cuts):
            lo = bounds[-1] + 1  # leave at least one row per shard so far
            hi = n - (effective - 1 - i)  # ... and one per remaining shard
            bounds.append(min(max(int(cut), lo), hi))
        bounds.append(n)
        bounds.extend([n] * (n_shards - effective))
        return cls(tuple(bounds))


# ----------------------------------------------------------------------
# Per-shard matrix view
# ----------------------------------------------------------------------
class ShardedCoverageMatrix:
    """One shard's view of a coverage matrix, reusing the CSR kernels.

    Wraps a shard-local :class:`~repro.solvers.CoverageMatrix` whose user
    axis is the shard's rows only (candidate axis replicated), plus the
    shard's slice of the distinct-weight inverse map used for exact
    cross-shard confirmation.  ``screened_gains`` / ``cover`` /
    ``exact_live_counts`` run the existing kernels unchanged on the local
    arrays.
    """

    def __init__(
        self,
        local: CoverageMatrix,
        lo: int,
        hi: int,
        winv: np.ndarray,
        n_distinct: int,
    ) -> None:
        self.local = local
        self.lo = lo
        self.hi = hi
        self.winv = winv
        self.n_distinct = n_distinct

    @classmethod
    def from_global_arrays(
        cls,
        candidate_ids: Sequence[int],
        user_ids: np.ndarray,
        weights: np.ndarray,
        indptr: np.ndarray,
        col: np.ndarray,
        winv: np.ndarray,
        n_distinct: int,
        lo: int,
        hi: int,
    ) -> "ShardedCoverageMatrix":
        """Slice rows ``[lo, hi)`` out of a whole-matrix CSR payload.

        Within each candidate's segment the user indices are ascending,
        so the shard's portion is the ``searchsorted`` range
        ``[lo, hi)`` — gathered once into a local ``col`` (rebased to
        shard-local indices); ``user_ids`` / ``weights`` / ``winv`` are
        zero-copy slices of the (typically shared-memory) inputs.  Every
        segment carries the shard's exact sub-multiset of the global
        segment, which is all the merge logic needs.
        """
        n = len(candidate_ids)
        local_indptr = np.zeros(n + 1, dtype=np.int64)
        segments: List[np.ndarray] = []
        for j in range(n):
            seg = col[indptr[j] : indptr[j + 1]]
            a, b = np.searchsorted(seg, (lo, hi))
            segments.append(seg[a:b])
            local_indptr[j + 1] = local_indptr[j] + (b - a)
        local_col = (
            np.concatenate(segments) - lo
            if segments
            else np.zeros(0, dtype=np.int64)
        )
        local = CoverageMatrix.from_csr_arrays(
            candidate_ids,
            user_ids[lo:hi],
            weights[lo:hi],
            local_indptr,
            np.ascontiguousarray(local_col),
        )
        return cls(local, lo, hi, winv[lo:hi], n_distinct)

    @classmethod
    def from_local(
        cls,
        local: CoverageMatrix,
        lo: int,
        hi: int,
        winv: np.ndarray,
        n_distinct: int,
    ) -> "ShardedCoverageMatrix":
        """Adopt a matrix a worker built directly over its own shard."""
        return cls(local, lo, hi, winv, n_distinct)

    # Kernel delegation --------------------------------------------------
    def new_covered_mask(self) -> np.ndarray:
        return self.local.new_covered_mask()

    def screened_gains(
        self, js: np.ndarray, covered: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        return self.local.screened_gains(js, covered)

    def exact_live_counts(self, j: int, covered: np.ndarray) -> np.ndarray:
        return self.local.exact_live_counts(
            j, covered, self.winv, self.n_distinct
        )

    def cover(self, j: int, covered: np.ndarray) -> None:
        self.local.cover(j, covered)


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
class _WorkerState:
    """Everything one worker process holds between commands."""

    def __init__(self) -> None:
        self.stores: List[SharedArrayStore] = []
        self.arena: Optional[PositionArena] = None
        self.lo = 0
        self.hi = 0
        self.fcounts: Optional[np.ndarray] = None
        self.shard: Optional[ShardedCoverageMatrix] = None
        self.covered: Optional[np.ndarray] = None

    def detach(self) -> None:
        self.arena = None
        self.shard = None
        self.covered = None
        self.fcounts = None
        for store in self.stores:
            store.close()
        self.stores.clear()


def _require(obj: Any, what: str) -> Any:
    if obj is None:
        raise ShardError(f"worker has no {what}; protocol out of order")
    return obj


def _handle_ping(state: _WorkerState, payload: Any) -> Dict[str, int]:
    return {"pid": os.getpid()}


def _handle_attach_arena(state: _WorkerState, payload: Dict[str, Any]) -> None:
    state.detach()
    store = SharedArrayStore.attach(payload["manifest"])
    state.stores.append(store)
    state.arena = PositionArena(
        store["positions"], store["offsets"], store["uids"]
    )
    state.lo, state.hi = int(payload["lo"]), int(payload["hi"])


def _handle_resolve(
    state: _WorkerState, payload: Dict[str, Any]
) -> Dict[str, Any]:
    """Batch-verify this worker's user shard against every site.

    Builds the shard-local candidate-major CSR matrix (ascending-cid
    candidate order, ascending local user index per segment) and the
    per-user competitor counts that determine the evenly-split weights
    ``1/(|F_o|+1)``.  Decisions and counters go through the batched
    kernel, so they are bit-identical per pair to the scalar evaluator —
    and per-user additive, so coordinator-merged stats equal a
    single-process all-pairs resolve.
    """
    arena = _require(state.arena, "attached arena")
    lo, hi = state.lo, state.hi
    rows = np.arange(lo, hi, dtype=np.int64)
    stats = EvaluationStats()
    batch = BatchInfluenceEvaluator(
        payload["pf"],
        payload["tau"],
        early_stopping=payload["early_stopping"],
        stats=stats,
    )
    cand_ids: Tuple[int, ...] = tuple(payload["cand_ids"])
    cand_xy: np.ndarray = payload["cand_xy"]
    fac_xy: np.ndarray = payload["fac_xy"]

    n = len(cand_ids)
    indptr = np.zeros(n + 1, dtype=np.int64)
    segments: List[np.ndarray] = []
    for j in range(n):
        hit = batch.influences_users(cand_xy[j, 0], cand_xy[j, 1], arena, rows=rows)
        seg = np.flatnonzero(hit).astype(np.int64)
        segments.append(seg)
        indptr[j + 1] = indptr[j] + seg.shape[0]
    col = (
        np.concatenate(segments) if segments else np.zeros(0, dtype=np.int64)
    )
    fcounts = np.zeros(hi - lo, dtype=np.int64)
    for i in range(fac_xy.shape[0]):
        hit = batch.influences_users(fac_xy[i, 0], fac_xy[i, 1], arena, rows=rows)
        fcounts += hit
    # Same IEEE division as EvenlySplitModel.user_share: 1.0 / (c + 1).
    weights = 1.0 / (fcounts + 1.0)
    local = CoverageMatrix.from_csr_arrays(
        cand_ids,
        arena.uids[lo:hi],
        weights,
        indptr,
        np.ascontiguousarray(col),
    )
    state.fcounts = fcounts
    # winv arrives with the coordinator's merged distinct-count table in
    # the follow-up set_weight_table command.
    state.shard = ShardedCoverageMatrix.from_local(local, lo, hi, fcounts, 0)
    state.covered = None
    return {
        "stats": stats,
        "distinct_fcounts": np.unique(fcounts),
        "nnz": int(col.shape[0]),
    }


def _handle_set_weight_table(
    state: _WorkerState, payload: Dict[str, Any]
) -> None:
    """Install the merged distinct-competitor-count table.

    Every worker indexes its counts into the same global table, so the
    coordinator can add count vectors across shards elementwise.
    """
    shard = _require(state.shard, "resolved shard")
    distinct = payload["distinct_fcounts"]
    shard.winv = np.searchsorted(distinct, _require(state.fcounts, "fcounts"))
    shard.n_distinct = int(distinct.shape[0])


def _handle_load_matrix(state: _WorkerState, payload: Dict[str, Any]) -> None:
    """Map a whole-matrix CSR payload and slice out this worker's shard."""
    store = SharedArrayStore.attach(payload["manifest"])
    state.stores.append(store)
    state.lo, state.hi = int(payload["lo"]), int(payload["hi"])
    state.shard = ShardedCoverageMatrix.from_global_arrays(
        payload["candidate_ids"],
        store["user_ids"],
        store["weights"],
        store["indptr"],
        store["col"],
        store["winv"],
        int(payload["n_distinct"]),
        state.lo,
        state.hi,
    )
    state.fcounts = None
    state.covered = None


def _handle_reset(state: _WorkerState, payload: Any) -> None:
    state.covered = _require(state.shard, "shard matrix").new_covered_mask()


def _handle_screen(
    state: _WorkerState, payload: Dict[str, Any]
) -> Tuple[np.ndarray, np.ndarray]:
    shard = _require(state.shard, "shard matrix")
    covered = _require(state.covered, "covered mask (reset first)")
    return shard.screened_gains(payload["js"], covered)


def _handle_confirm(state: _WorkerState, payload: Dict[str, Any]) -> np.ndarray:
    shard = _require(state.shard, "shard matrix")
    covered = _require(state.covered, "covered mask (reset first)")
    js = payload["js"]
    counts = np.zeros((js.shape[0], shard.n_distinct), dtype=np.int64)
    for i, j in enumerate(js.tolist()):
        counts[i] = shard.exact_live_counts(j, covered)
    return counts


def _handle_cover(state: _WorkerState, payload: Dict[str, Any]) -> None:
    shard = _require(state.shard, "shard matrix")
    covered = _require(state.covered, "covered mask (reset first)")
    shard.cover(int(payload["j"]), covered)


def _handle_detach(state: _WorkerState, payload: Any) -> None:
    state.detach()


_HANDLERS = {
    "ping": _handle_ping,
    "attach_arena": _handle_attach_arena,
    "resolve": _handle_resolve,
    "set_weight_table": _handle_set_weight_table,
    "load_matrix": _handle_load_matrix,
    "reset": _handle_reset,
    "screen": _handle_screen,
    "confirm": _handle_confirm,
    "cover": _handle_cover,
    "detach": _handle_detach,
}


def _shard_worker_main(conn: Any) -> None:
    """Worker loop: one reply per request, until shutdown or EOF.

    Module-level so it pickles under the ``spawn`` start method.  Any
    exception inside a handler is reported as an ``("err", ...)`` reply;
    the loop survives so the coordinator decides what to do.
    """
    state = _WorkerState()
    try:
        while True:
            try:
                cmd, payload = conn.recv()
            except (EOFError, OSError):
                break
            if cmd == "shutdown":
                conn.send(("ok", None))
                break
            handler = _HANDLERS.get(cmd)
            try:
                if handler is None:
                    raise ShardError(f"unknown worker command {cmd!r}")
                conn.send(("ok", handler(state, payload)))
            except BaseException as exc:  # noqa: BLE001 - reported upstream
                try:
                    conn.send(
                        ("err", (type(exc).__name__, str(exc), traceback.format_exc()))
                    )
                except (BrokenPipeError, OSError):
                    break
    finally:
        state.detach()
        try:
            conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class ShardWorker:
    """Coordinator-side handle on one persistent worker process."""

    def __init__(self, ctx: Any, worker_id: int) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.worker_id = worker_id
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn,),
            name=f"mc2ls-shard-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()

    def send(self, cmd: str, payload: Any = None) -> None:
        self.conn.send((cmd, payload))

    def recv(self) -> Any:
        status, payload = self.conn.recv()
        if status != "ok":
            name, message, tb = payload
            raise ShardError(
                f"worker {self.worker_id} failed: {name}: {message}\n{tb}"
            )
        return payload

    def stop(self) -> None:
        """Best-effort orderly shutdown; terminate if the pipe is gone."""
        try:
            self.send("shutdown")
            if self.conn.poll(2.0):
                self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.terminate()

    def terminate(self) -> None:
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - stuck process
            self.process.kill()
            self.process.join(timeout=5.0)


class ShardCoordinator:
    """Fan resolution and greedy selection out over shard workers.

    One coordinator owns ``n_workers`` persistent processes plus the
    shared segments they map.  It serves one prepared configuration at a
    time — ``(snapshot content hash, PF, τ)`` — re-fanning out resolution
    when the configuration changes (the engine's result cache absorbs
    repeats).  All public methods are serialized by an internal lock, so
    the engine's scheduler threads can share one coordinator.

    Args:
        n_workers: Worker process count (>= 1).
        start_method: ``multiprocessing`` start method; default is
            ``fork`` where available (fast, no re-import) else ``spawn``.
    """

    def __init__(self, n_workers: int, start_method: Optional[str] = None) -> None:
        if n_workers < 1:
            raise ShardError(f"need at least one worker, got {n_workers}")
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self.n_workers = n_workers
        self._lock = threading.RLock()
        self._broken: Optional[str] = None
        self._stores: List[SharedArrayStore] = []
        self._snapshot_hash: Optional[str] = None
        self._config: Optional[Tuple[Any, ...]] = None
        self._plan: Optional[ShardPlan] = None
        self._candidate_ids: Tuple[int, ...] = ()
        self._uw: Optional[np.ndarray] = None
        self._stats: Optional[EvaluationStats] = None
        self.last_prepare_seconds = 0.0
        ctx = multiprocessing.get_context(start_method)
        self._workers: List[ShardWorker] = []
        try:
            for i in range(n_workers):
                self._workers.append(ShardWorker(ctx, i))
            for w in self._workers:
                w.send("ping")
            for w in self._workers:
                w.recv()
        except BaseException:
            self._teardown()
            raise

    # ------------------------------------------------------------------
    # Fan-out plumbing
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._broken is not None:
            raise ShardError(f"coordinator is broken: {self._broken}")

    def _fail(self, reason: str) -> None:
        """Tear everything down, then surface the failure.

        Terminates every worker, closes + unlinks every shared segment
        (so ``/dev/shm`` is clean even though workers died mid-map), and
        marks the coordinator unusable.
        """
        self._broken = reason
        self._teardown()
        raise ShardError(f"sharded execution failed: {reason}")

    def _teardown(self) -> None:
        for w in self._workers:
            w.terminate()
        self._workers = []
        for store in self._stores:
            store.close()
            store.unlink()
        self._stores = []
        self._snapshot_hash = None
        self._config = None

    def _broadcast(self, cmd: str, payloads: Any = None) -> List[Any]:
        """Send to every worker, then collect every reply (in order).

        ``payloads`` is either one object for all workers or a per-worker
        list.  Pipe failures — a dead worker — escalate to :meth:`_fail`.
        """
        per_worker = (
            payloads
            if isinstance(payloads, list)
            else [payloads] * len(self._workers)
        )
        try:
            for w, p in zip(self._workers, per_worker):
                w.send(cmd, p)
            return [w.recv() for w in self._workers]
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._fail(f"worker pipe broke during {cmd!r}: {exc!r}")
        except ShardError as exc:
            # Handler-level error on the worker: the processes are alive
            # but the fleet's state may now be inconsistent — drop the
            # prepared configuration so the next query re-fans out.
            self._config = None
            raise
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(
        self,
        snapshot: DatasetSnapshot,
        tau: float,
        pf: Any,
        early_stopping: bool = True,
    ) -> bool:
        """Ensure workers hold a resolved shard state for this config.

        Shares the snapshot's arena (once per snapshot), fans resolution
        out over the user shards, merges the distinct-weight tables and
        broadcasts them back.  Returns ``True`` when work was done,
        ``False`` on a hit (same snapshot + PF + τ already prepared).
        """
        with self._lock:
            self._check_open()
            config = (snapshot.content_hash, pf.cache_key(), float(tau), early_stopping)
            if config == self._config:
                return False
            t0 = time.perf_counter()
            self._attach_snapshot(snapshot)
            dataset = snapshot.dataset
            cands = sorted(dataset.candidates, key=lambda c: c.fid)
            cand_ids = tuple(c.fid for c in cands)
            cand_xy = np.array(
                [[c.x, c.y] for c in cands], dtype=np.float64
            ).reshape(-1, 2)
            fac_xy = np.array(
                [[f.x, f.y] for f in dataset.facilities], dtype=np.float64
            ).reshape(-1, 2)
            replies = self._broadcast(
                "resolve",
                {
                    "pf": pf,
                    "tau": float(tau),
                    "early_stopping": early_stopping,
                    "cand_ids": cand_ids,
                    "cand_xy": cand_xy,
                    "fac_xy": fac_xy,
                },
            )
            stats = EvaluationStats()
            for reply in replies:
                stats.merge(reply["stats"])
            distinct = np.unique(
                np.concatenate([r["distinct_fcounts"] for r in replies])
            )
            self._broadcast("set_weight_table", {"distinct_fcounts": distinct})
            self._uw = 1.0 / (distinct + 1.0)
            self._stats = stats
            self._candidate_ids = cand_ids
            self._config = config
            self.last_prepare_seconds = time.perf_counter() - t0
            return True

    def _attach_snapshot(self, snapshot: DatasetSnapshot) -> None:
        if snapshot.content_hash == self._snapshot_hash:
            return
        self.detach()
        arena = snapshot.arena
        store = SharedArrayStore.create(
            {
                "positions": arena.positions,
                "offsets": arena.offsets,
                "uids": arena.uids,
            },
            snapshot.content_hash,
            label="arena",
        )
        self._stores.append(store)
        plan = ShardPlan.balanced(arena.lengths(), self.n_workers)
        self._plan = plan
        self._broadcast(
            "attach_arena",
            [
                {"manifest": store.manifest, "lo": lo, "hi": hi}
                for lo, hi in plan
            ],
        )
        self._snapshot_hash = snapshot.content_hash

    def load_matrix(self, matrix: CoverageMatrix, content_hash: str) -> None:
        """Hand a prebuilt whole matrix to the workers as shard views.

        The alternative preparation path: share the matrix's CSR payload
        plus the distinct-weight inverse map, and have each worker slice
        its contiguous user range out of it
        (:meth:`ShardedCoverageMatrix.from_global_arrays`).  Used when a
        single process already resolved the instance (e.g. migrating a
        prepared instance into sharded serving, or the differential
        tests) — selection over the handed-off matrix is bit-identical
        to ``matrix.select``.
        """
        with self._lock:
            self._check_open()
            uw, winv = np.unique(matrix.weights, return_inverse=True)
            payload = dict(matrix.csr_arrays())
            payload["winv"] = np.ascontiguousarray(winv.astype(np.int64))
            store = SharedArrayStore.create(
                payload, content_hash, label="matrix"
            )
            self._stores.append(store)
            entry_cost = np.bincount(matrix.col, minlength=matrix.n_users)
            plan = ShardPlan.balanced(entry_cost + 1.0, self.n_workers)
            self._plan = plan
            self._broadcast(
                "load_matrix",
                [
                    {
                        "manifest": store.manifest,
                        "candidate_ids": matrix.candidate_ids,
                        "n_distinct": int(uw.shape[0]),
                        "lo": lo,
                        "hi": hi,
                    }
                    for lo, hi in plan
                ],
            )
            self._uw = uw
            self._stats = None
            self._candidate_ids = matrix.candidate_ids
            self._config = ("matrix", content_hash)
            self._snapshot_hash = None

    @property
    def stats(self) -> Optional[EvaluationStats]:
        """Merged resolution counters of the current preparation."""
        return self._stats

    @property
    def broken(self) -> Optional[str]:
        """Why this coordinator is unusable, or ``None`` while healthy."""
        return self._broken

    # ------------------------------------------------------------------
    # Distributed CELF greedy
    # ------------------------------------------------------------------
    def select(
        self,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
        cancel_check: CancelCheck = None,
    ) -> GreedyOutcome:
        """Distributed greedy ``k``-selection over the prepared shards.

        Mirrors :meth:`CoverageMatrix.select` round for round: lazy CELF
        refresh in merged-bound order with geometrically growing chunks,
        exact confirmation of every candidate whose merged interval
        reaches the round maximum, ascending-id ``gain > best`` winner
        scan.  Selections, gains and objective are bit-identical to the
        single-process kernel (see the module docstring for why).
        """
        with self._lock:
            self._check_open()
            if self._config is None:
                raise ShardError("no prepared configuration; call prepare() first")
            all_ids = self._candidate_ids
            if candidate_ids is None:
                js_subset = np.arange(len(all_ids), dtype=np.int64)
                sub_ids: Tuple[int, ...] = all_ids
            else:
                sub_ids = tuple(sorted(set(int(c) for c in candidate_ids)))
                unknown = set(sub_ids) - set(all_ids)
                if unknown:
                    raise SolverError(
                        f"candidate mask references unknown sites {unknown}"
                    )
                if not sub_ids:
                    raise SolverError("candidate mask is empty")
                js_subset = np.searchsorted(
                    np.asarray(all_ids, dtype=np.int64),
                    np.asarray(sub_ids, dtype=np.int64),
                )
            n = js_subset.shape[0]
            if k < 1 or k > n:
                raise SolverError(f"k={k} infeasible for {n} candidates")
            self._broadcast("reset")
            uw = self._uw
            assert uw is not None
            in_play = np.ones(n, dtype=bool)
            ub = np.full(n, np.inf)
            flb = np.full(n, -np.inf)
            stamp = np.full(n, -1, dtype=np.int64)
            evaluations = 0
            selected: List[int] = []
            gains: List[float] = []
            for rnd in range(k):
                if cancel_check is not None:
                    cancel_check()
                best_flb = -np.inf
                chunk = n if rnd == 0 else 1
                while True:
                    cand = np.flatnonzero(
                        in_play & (stamp < rnd) & (ub >= best_flb)
                    )
                    if cand.size == 0:
                        break
                    if cand.size > chunk:
                        top = np.argpartition(-ub[cand], chunk - 1)[:chunk]
                        cand = cand[top]
                    g, t = self._merged_screen(js_subset[cand])
                    evaluations += int(cand.size)
                    stamp[cand] = rnd
                    ub[cand] = g + t
                    flb[cand] = g - t
                    best_flb = max(best_flb, float((g - t).max()))
                    chunk = min(n, chunk * 8)
                fresh = np.flatnonzero(in_play & (stamp == rnd))
                round_flb = float(flb[fresh].max())
                near = fresh[ub[fresh] >= round_flb]
                counts = self._merged_confirm(js_subset[near])
                best_i = -1
                best_gain = -1.0
                for row, i in enumerate(near.tolist()):  # ascending cid
                    gain = merged_exact_gain(uw, counts[row])
                    if gain > best_gain:
                        best_gain = gain
                        best_i = i
                assert best_i >= 0
                selected.append(int(sub_ids[best_i]))
                gains.append(best_gain)
                in_play[best_i] = False
                self._broadcast("cover", {"j": int(js_subset[best_i])})
            return GreedyOutcome(
                tuple(selected), sum(gains), tuple(gains), evaluations
            )

    def _merged_screen(self, js: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Merge per-shard screened gains with a rigorous tolerance.

        The merged value is a K-term float sum of per-shard screens; its
        distance from the exact whole-matrix gain is at most the sum of
        the per-shard tolerances plus the K-term merge error, bounded by
        ``K · 2⁻⁵² · g`` for non-negative terms.  Extra slack only costs
        exact re-screens — never a missed winner.
        """
        replies = self._broadcast("screen", {"js": js})
        g = np.zeros(js.shape[0], dtype=np.float64)
        t = np.zeros(js.shape[0], dtype=np.float64)
        for shard_g, shard_t in replies:
            g += shard_g
            t += shard_t
        t += len(replies) * _SUM_ULP * g
        return g, t

    def _merged_confirm(self, js: np.ndarray) -> np.ndarray:
        """Sum per-shard distinct-weight live counts (integer-exact)."""
        replies = self._broadcast("confirm", {"js": js})
        total = replies[0].copy()
        for counts in replies[1:]:
            total += counts
        return total

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def detach(self) -> None:
        """Drop shared segments and worker state (workers stay up)."""
        with self._lock:
            if self._workers and self._broken is None:
                self._broadcast("detach")
            for store in self._stores:
                store.close()
                store.unlink()
            self._stores = []
            self._snapshot_hash = None
            self._config = None
            self._stats = None

    def close(self) -> None:
        """Shut workers down and unlink every shared segment."""
        with self._lock:
            for w in self._workers:
                w.stop()
            self._workers = []
            for store in self._stores:
                store.close()
                store.unlink()
            self._stores = []
            self._snapshot_hash = None
            self._config = None
            if self._broken is None:
                self._broken = "closed"

    def __enter__(self) -> "ShardCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardCoordinator(workers={self.n_workers}, "
            f"config={self._config!r}, broken={self._broken!r})"
        )
