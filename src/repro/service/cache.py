"""Size-bounded, instrumented LRU caches for the serving engine.

The engine keeps two of these: one for prepared instances (the expensive
influence-resolution products, a handful of large entries) and one for
final selections (cheap entries, many of them).  Both are keyed by tuples
whose first element is the owning snapshot's content hash, so
:meth:`LRUCache.invalidate_snapshot` can drop everything a superseded
population ever produced in one sweep.

All operations are thread-safe; the counters are exposed as a
:class:`CacheStats` snapshot for the engine's stats endpoint and the
throughput benchmark.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Tuple


class _Build:
    """In-flight ``get_or_create`` factory run for one key.

    The owning thread publishes ``value`` and sets ``event``; waiters
    block on the event instead of running the factory again.  A failed
    factory leaves ``value`` unset (``ok`` False) so waiters retry —
    each caller that ends up building gets its own exception.
    ``doomed`` is set by :meth:`LRUCache.invalidate_snapshot` racing the
    build: the finished value is still handed to callers (keys embed the
    content hash, so it is correct for the request that asked) but never
    inserted into the cache, which would resurrect a swept snapshot.
    """

    __slots__ = ("event", "value", "ok", "doomed")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.ok = False
        self.doomed = False


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A thread-safe LRU mapping with hit/miss/eviction accounting.

    Keys are tuples led by a snapshot content hash; values are opaque.
    ``maxsize`` bounds the entry count — inserting into a full cache
    evicts the least recently used entry.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._builds: Dict[Hashable, _Build] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry when full."""
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
            self._data[key] = value
            return
        while len(self._data) >= self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1
        self._data[key] = value

    def get_or_create(self, key: Hashable, factory) -> Tuple[Any, bool]:
        """Return ``(value, was_hit)``, creating and inserting on a miss.

        The factory runs *outside* the cache lock — slow preparations do
        not serialise unrelated lookups — and at most once per missing
        key at a time: concurrent callers racing on the same key block
        on the owner's in-flight build and share its value (counted as
        hits; only the thread that ran the factory reports a miss).  A
        factory that raises releases the key so one waiter retries the
        build.  Builds overlapping an :meth:`invalidate_snapshot` of
        their content hash still return their value to callers but skip
        the cache insert (see :class:`_Build`).
        """
        while True:
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                    self._hits += 1
                    return self._data[key], True
                build = self._builds.get(key)
                if build is None:
                    build = _Build()
                    self._builds[key] = build
                    self._misses += 1
                    owner = True
                else:
                    owner = False
            if not owner:
                build.event.wait()
                if not build.ok:
                    continue  # owner's factory raised — race to rebuild
                with self._lock:
                    self._hits += 1
                return build.value, True
            try:
                value = factory()
            except BaseException:
                with self._lock:
                    self._builds.pop(key, None)
                build.event.set()
                raise
            with self._lock:
                self._builds.pop(key, None)
                build.value = value
                build.ok = True
                if not build.doomed:
                    self._put_locked(key, value)
            build.event.set()
            return value, False

    # ------------------------------------------------------------------
    def entries_for(self, content_hash: str) -> List[Tuple[Hashable, Any]]:
        """``(key, value)`` pairs keyed under ``content_hash`` (a snapshot;
        recency is not refreshed).  Used by the engine's incremental
        republish to migrate prepared instances."""
        with self._lock:
            return [(k, v) for k, v in self._data.items() if k[0] == content_hash]

    def invalidate_snapshot(self, content_hash: str) -> int:
        """Drop every entry keyed under ``content_hash``; return the count.

        In-flight ``get_or_create`` builds for the hash are marked doomed
        so their completed values never re-enter the cache after this
        sweep — a republish cannot be outraced by a slow preparation.
        """
        with self._lock:
            doomed = [k for k in self._data if k[0] == content_hash]
            for k in doomed:
                del self._data[k]
            self._invalidations += len(doomed)
            for k, build in self._builds.items():
                if k[0] == content_hash:
                    build.doomed = True
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (counted as invalidations); doom in-flight builds."""
        with self._lock:
            self._invalidations += len(self._data)
            self._data.clear()
            for build in self._builds.values():
                build.doomed = True

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._data),
                maxsize=self.maxsize,
            )
