"""Size-bounded, instrumented LRU caches for the serving engine.

The engine keeps two of these: one for prepared instances (the expensive
influence-resolution products, a handful of large entries) and one for
final selections (cheap entries, many of them).  Both are keyed by tuples
whose first element is the owning snapshot's content hash, so
:meth:`LRUCache.invalidate_snapshot` can drop everything a superseded
population ever produced in one sweep.

All operations are thread-safe; the counters are exposed as a
:class:`CacheStats` snapshot for the engine's stats endpoint and the
throughput benchmark.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of one cache."""

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for JSON reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "size": self.size,
            "maxsize": self.maxsize,
            "hit_rate": self.hit_rate,
        }


class LRUCache:
    """A thread-safe LRU mapping with hit/miss/eviction accounting.

    Keys are tuples led by a snapshot content hash; values are opaque.
    ``maxsize`` bounds the entry count — inserting into a full cache
    evicts the least recently used entry.
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------
    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value (refreshing recency) or ``None``."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self._misses += 1
                return None
            self._data.move_to_end(key)
            self._hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the LRU entry when full."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            while len(self._data) >= self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
            self._data[key] = value

    def get_or_create(self, key: Hashable, factory) -> Tuple[Any, bool]:
        """Return ``(value, was_hit)``, creating and inserting on a miss.

        The factory runs *outside* the cache lock so slow preparations do
        not serialise unrelated lookups; two threads racing on the same
        missing key may both build, with the second insert winning —
        acceptable because values for equal keys are interchangeable.
        """
        value = self.get(key)
        if value is not None:
            return value, True
        value = factory()
        self.put(key, value)
        return value, False

    # ------------------------------------------------------------------
    def invalidate_snapshot(self, content_hash: str) -> int:
        """Drop every entry keyed under ``content_hash``; return the count."""
        with self._lock:
            doomed = [k for k in self._data if k[0] == content_hash]
            for k in doomed:
                del self._data[k]
            self._invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        """Drop all entries (counted as invalidations)."""
        with self._lock:
            self._invalidations += len(self._data)
            self._data.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def stats(self) -> CacheStats:
        """A consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                size=len(self._data),
                maxsize=self.maxsize,
            )
