"""Prepared instances: resolve once, select many times.

A :class:`PreparedInstance` is the serving-side unit of amortisation: the
influence table for one ``(snapshot, solver, PF, τ)`` configuration,
resolved once through the solver's :meth:`~repro.solvers.Solver.resolve`
layer, plus the CSR :class:`~repro.solvers.CoverageMatrix` densification
built lazily on the first fast-path selection.  Queries that differ only
in ``k``, kernel knobs or candidate mask reuse all of it.

Candidate-mask queries exploit the matrix column structure via
:meth:`~repro.solvers.CoverageMatrix.restrict` (CSR segment gathering, no
re-resolution); the scalar path uses
:meth:`~repro.competition.InfluenceTable.restricted`.  Either way the
selection is identical to solving the instance whose candidate set *is*
the subset — the differential suite pins this against direct solver runs.

Thread-safety: after construction the table and matrices are only read;
``CoverageMatrix.select`` keeps all mutable state (covered masks, CELF
bounds) in locals, so any number of queries may select concurrently.  The
lazy matrix builds are double-checked under a lock.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Tuple

from ..capture import DEFAULT_CAPTURE_KEY, CaptureModel
from ..capture.select import capture_select
from ..exceptions import ServiceError, SolverError
from ..influence import ProbabilityFunction, paper_default_pf
from ..solvers import ResolvedInstance, Solver, patch_resolution
from ..solvers.coverage import CoverageMatrix
from ..solvers.selection import CancelCheck, GreedyOutcome, greedy_select
from .cache import LRUCache
from .snapshot import DatasetSnapshot

#: Bound on memoised restricted matrices per prepared instance.
_MAX_RESTRICTED = 32


class PreparedInstance:
    """A resolved ``(snapshot, solver, PF, τ)`` ready to answer queries.

    Args:
        snapshot: The population version this instance is bound to.
        solver: A solver supporting resolution-only preparation
            (:meth:`~repro.solvers.Solver.resolve`).
        tau: Influence threshold.
        pf: Distance-decay probability function (paper default if
            ``None``).
        capture: Customer-choice capture model (:mod:`repro.capture`);
            ``None`` means the paper's evenly-split model.  Resolution
            is capture-agnostic, so the amortised table is shared in
            shape with every other model — but the engine keys prepared
            instances by the capture cache key, because the *selection*
            phase consults it: set-independent models feed their weight
            model into the CSR densification, set-aware models route
            every select through the CELF capture loop.
    """

    def __init__(
        self,
        snapshot: DatasetSnapshot,
        solver: Solver,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
        capture: Optional[CaptureModel] = None,
    ) -> None:
        self.snapshot = snapshot
        self.solver_name = solver.name
        self.tau = tau
        self.capture = capture
        self.pf = pf or paper_default_pf()
        self.resolved: ResolvedInstance = solver.resolve(
            snapshot.dataset, tau, self.pf
        )
        self.table = self.resolved.table
        self.candidate_ids: Tuple[int, ...] = tuple(
            sorted(c.fid for c in snapshot.dataset.candidates)
        )
        #: How this instance came to be: ``"resolved"`` (full resolve) or
        #: ``"patched"`` (delta-spliced from a previous instance).
        self.provenance = "resolved"
        #: Dirty rows re-verified when provenance is ``"patched"``.
        self.patched_users = 0
        self._warm = False
        self._lock = threading.Lock()
        self._matrix: Optional[CoverageMatrix] = None
        # Counted LRU (satellite of PR 6): the old per-instance OrderedDict
        # memo grew one full CSR matrix per distinct mask with only a local
        # bound and no accounting; the shared cache class bounds it *and*
        # surfaces eviction counters through restricted_cache_stats().
        self._restricted = LRUCache(_MAX_RESTRICTED)

    # ------------------------------------------------------------------
    @classmethod
    def patched(
        cls,
        old: "PreparedInstance",
        snapshot: DatasetSnapshot,
        batch_verify: bool = True,
        warm_start: bool = True,
    ) -> "PreparedInstance":
        """Delta-splice a prepared instance onto a successor snapshot.

        ``snapshot`` must carry a :class:`~repro.streaming.DeltaLog`
        chained from ``old``'s snapshot (``delta.parent_hash`` equal to
        its content hash): only the delta's dirty rows are re-verified
        (:func:`~repro.solvers.patch_resolution`) and, when ``old`` has a
        built CSR matrix, its rows are spliced rather than redensified
        (:meth:`~repro.solvers.CoverageMatrix.restrict`'s sibling,
        :meth:`~repro.solvers.CoverageMatrix.patched`).

        **Bit-identity contract.**  Every query observable — selections,
        gains, objectives, for any ``k`` / candidate mask / kernel knob —
        is bit-identical to a fresh ``PreparedInstance`` resolved against
        ``snapshot``; the property suite pins this across all solvers.
        Only the *cost* accounting differs (that is the point): the
        patched ``resolved.evaluation`` counts the dirty rows alone, and
        ``warm_start`` reuses the parent's CELF round-0 bounds so repeat
        selections do strictly less screening work.

        Raises:
            ServiceError: When the snapshot carries no delta, the delta
                chains from a different (e.g. superseded-and-replaced)
                snapshot, or the candidate sites changed.
        """
        if (
            old.capture is not None
            and old.capture.cache_key() != DEFAULT_CAPTURE_KEY
        ):
            # Non-default capture models hold utilities bound to the old
            # population; splicing the table alone would serve stale
            # masses.  Raising here routes the engine's migration sweep
            # to its patch_failed accounting and the plain-invalidation
            # fallback (the first query re-resolves fresh).
            raise ServiceError(
                f"prepared instance under capture model "
                f"{old.capture.name!r} cannot be delta-patched; "
                "republish falls back to full invalidation"
            )
        delta = snapshot.delta
        if delta is None:
            raise ServiceError(
                "snapshot carries no delta log; republish from the "
                "streaming session or fall back to a full resolve"
            )
        if delta.parent_hash != old.snapshot.content_hash:
            raise ServiceError(
                f"delta chains from snapshot {str(delta.parent_hash)[:12]}, "
                f"not from this instance's {old.snapshot.content_hash[:12]} "
                "(superseded out of order?)"
            )
        candidate_ids = tuple(sorted(c.fid for c in snapshot.dataset.candidates))
        if candidate_ids != old.candidate_ids:
            raise ServiceError("candidate sites changed; patching is impossible")

        inst = cls.__new__(cls)
        inst.snapshot = snapshot
        inst.solver_name = old.solver_name
        inst.tau = old.tau
        inst.capture = old.capture
        inst.pf = old.pf
        inst.resolved, added_cover = patch_resolution(
            old.resolved,
            snapshot.dataset,
            delta.dirty,
            delta.removed,
            old.tau,
            old.pf,
            batch_verify=batch_verify,
        )
        inst.table = inst.resolved.table
        inst.candidate_ids = candidate_ids
        inst.provenance = "patched"
        inst.patched_users = len(delta.dirty)
        inst._warm = bool(warm_start)
        inst._lock = threading.Lock()
        old_matrix = old._matrix
        inst._matrix = (
            old_matrix.patched(inst.table, added_cover, delta.removed)
            if old_matrix is not None
            else None
        )
        inst._restricted = LRUCache(_MAX_RESTRICTED)
        return inst

    # ------------------------------------------------------------------
    @property
    def prepare_seconds(self) -> float:
        """Wall-clock cost of the resolution (or patch) this amortises."""
        return self.resolved.timings.get("total", 0.0)

    def matrix(self) -> CoverageMatrix:
        """The full CSR coverage matrix, built once on first use."""
        if self._matrix is None:
            with self._lock:
                if self._matrix is None:
                    model = (
                        self.capture.weight_model
                        if self.capture is not None
                        and self.capture.set_independent
                        else None
                    )
                    self._matrix = CoverageMatrix(
                        self.table, self.candidate_ids, model=model
                    )
        return self._matrix

    def _restricted_matrix(self, subset: Tuple[int, ...]) -> CoverageMatrix:
        key = (self.snapshot.content_hash, subset)
        sub, _ = self._restricted.get_or_create(
            key, lambda: self.matrix().restrict(subset)
        )
        return sub

    def _weight_model(self):
        """Per-user weight model of a set-independent capture (or None)."""
        if self.capture is not None and self.capture.set_independent:
            return self.capture.weight_model
        return None

    def restricted_cache_stats(self):
        """Counters of the per-instance restricted-matrix LRU."""
        return self._restricted.stats()

    # ------------------------------------------------------------------
    def select(
        self,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
        fast_select: bool = True,
        cancel_check: CancelCheck = None,
    ) -> GreedyOutcome:
        """Greedy ``k``-selection over all candidates or a subset.

        Identical output to running the owning solver's ``solve`` on the
        (possibly candidate-restricted) instance: same selection order,
        same bit-exact gains.

        Under a set-aware capture model every select runs the CELF
        capture loop over the amortised table (``fast_select`` picks the
        vectorized oracle state versus the scalar reference oracle);
        set-independent models keep the CSR/scalar kernels below.
        """
        cap = self.capture
        if cap is not None and not cap.set_independent:
            if candidate_ids is None:
                return capture_select(
                    self.table,
                    self.candidate_ids,
                    k,
                    cap,
                    fast=fast_select,
                    cancel_check=cancel_check,
                )
            subset = tuple(sorted(set(int(c) for c in candidate_ids)))
            unknown = set(subset) - set(self.candidate_ids)
            if unknown:
                raise SolverError(
                    f"candidate mask references unknown sites {unknown}"
                )
            if not subset:
                raise SolverError("candidate mask is empty")
            return capture_select(
                self.table.restricted(set(subset)),
                subset,
                k,
                cap,
                fast=fast_select,
                cancel_check=cancel_check,
            )
        if candidate_ids is None:
            if fast_select:
                return self.matrix().select(
                    k, cancel_check=cancel_check, warm_start=self._warm
                )
            return greedy_select(
                self.table,
                self.candidate_ids,
                k,
                model=self._weight_model(),
                cancel_check=cancel_check,
            )
        subset = tuple(sorted(set(int(c) for c in candidate_ids)))
        unknown = set(subset) - set(self.candidate_ids)
        if unknown:
            raise SolverError(f"candidate mask references unknown sites {unknown}")
        if not subset:
            raise SolverError("candidate mask is empty")
        if fast_select:
            return self._restricted_matrix(subset).select(
                k, cancel_check=cancel_check
            )
        return greedy_select(
            self.table.restricted(set(subset)),
            subset,
            k,
            model=self._weight_model(),
            cancel_check=cancel_check,
        )
