"""Prepared instances: resolve once, select many times.

A :class:`PreparedInstance` is the serving-side unit of amortisation: the
influence table for one ``(snapshot, solver, PF, τ)`` configuration,
resolved once through the solver's :meth:`~repro.solvers.Solver.resolve`
layer, plus the CSR :class:`~repro.solvers.CoverageMatrix` densification
built lazily on the first fast-path selection.  Queries that differ only
in ``k``, kernel knobs or candidate mask reuse all of it.

Candidate-mask queries exploit the matrix column structure via
:meth:`~repro.solvers.CoverageMatrix.restrict` (CSR segment gathering, no
re-resolution); the scalar path uses
:meth:`~repro.competition.InfluenceTable.restricted`.  Either way the
selection is identical to solving the instance whose candidate set *is*
the subset — the differential suite pins this against direct solver runs.

Thread-safety: after construction the table and matrices are only read;
``CoverageMatrix.select`` keeps all mutable state (covered masks, CELF
bounds) in locals, so any number of queries may select concurrently.  The
lazy matrix builds are double-checked under a lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Sequence, Tuple

from ..exceptions import SolverError
from ..influence import ProbabilityFunction, paper_default_pf
from ..solvers import ResolvedInstance, Solver
from ..solvers.coverage import CoverageMatrix
from ..solvers.selection import CancelCheck, GreedyOutcome, greedy_select
from .snapshot import DatasetSnapshot

#: Bound on memoised restricted matrices per prepared instance.
_MAX_RESTRICTED = 32


class PreparedInstance:
    """A resolved ``(snapshot, solver, PF, τ)`` ready to answer queries.

    Args:
        snapshot: The population version this instance is bound to.
        solver: A solver supporting resolution-only preparation
            (:meth:`~repro.solvers.Solver.resolve`).
        tau: Influence threshold.
        pf: Distance-decay probability function (paper default if
            ``None``).
    """

    def __init__(
        self,
        snapshot: DatasetSnapshot,
        solver: Solver,
        tau: float,
        pf: Optional[ProbabilityFunction] = None,
    ) -> None:
        self.snapshot = snapshot
        self.solver_name = solver.name
        self.tau = tau
        self.pf = pf or paper_default_pf()
        self.resolved: ResolvedInstance = solver.resolve(
            snapshot.dataset, tau, self.pf
        )
        self.table = self.resolved.table
        self.candidate_ids: Tuple[int, ...] = tuple(
            sorted(c.fid for c in snapshot.dataset.candidates)
        )
        self._lock = threading.Lock()
        self._matrix: Optional[CoverageMatrix] = None
        self._restricted: "OrderedDict[Tuple[int, ...], CoverageMatrix]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    @property
    def prepare_seconds(self) -> float:
        """Wall-clock cost of the resolution this instance amortises."""
        return self.resolved.timings.get("total", 0.0)

    def matrix(self) -> CoverageMatrix:
        """The full CSR coverage matrix, built once on first use."""
        if self._matrix is None:
            with self._lock:
                if self._matrix is None:
                    self._matrix = CoverageMatrix(self.table, self.candidate_ids)
        return self._matrix

    def _restricted_matrix(self, subset: Tuple[int, ...]) -> CoverageMatrix:
        with self._lock:
            cached = self._restricted.get(subset)
            if cached is not None:
                self._restricted.move_to_end(subset)
                return cached
        sub = self.matrix().restrict(subset)
        with self._lock:
            while len(self._restricted) >= _MAX_RESTRICTED:
                self._restricted.popitem(last=False)
            self._restricted[subset] = sub
        return sub

    # ------------------------------------------------------------------
    def select(
        self,
        k: int,
        candidate_ids: Optional[Sequence[int]] = None,
        fast_select: bool = True,
        cancel_check: CancelCheck = None,
    ) -> GreedyOutcome:
        """Greedy ``k``-selection over all candidates or a subset.

        Identical output to running the owning solver's ``solve`` on the
        (possibly candidate-restricted) instance: same selection order,
        same bit-exact gains.
        """
        if candidate_ids is None:
            if fast_select:
                return self.matrix().select(k, cancel_check=cancel_check)
            return greedy_select(
                self.table, self.candidate_ids, k, cancel_check=cancel_check
            )
        subset = tuple(sorted(set(int(c) for c in candidate_ids)))
        unknown = set(subset) - set(self.candidate_ids)
        if unknown:
            raise SolverError(f"candidate mask references unknown sites {unknown}")
        if not subset:
            raise SolverError("candidate mask is empty")
        if fast_select:
            return self._restricted_matrix(subset).select(
                k, cancel_check=cancel_check
            )
        return greedy_select(
            self.table.restricted(set(subset)), subset, k, cancel_check=cancel_check
        )
