"""Serving layer: snapshots, prepared instances, caches and the engine.

The modules here turn the one-shot solvers into a query-serving system
for heavy repeated traffic against one dataset:

* :mod:`~repro.service.snapshot` — immutable, content-hashed population
  versions (:class:`DatasetSnapshot`), publishable from batch datasets
  or live :class:`~repro.streaming.StreamingMC2LS` sessions.
* :mod:`~repro.service.prepared` — :class:`PreparedInstance`, the
  resolve-once/select-many amortisation unit per ``(snapshot, solver,
  PF, τ)``.
* :mod:`~repro.service.cache` — instrumented, size-bounded LRU caches
  keyed by snapshot content hash.
* :mod:`~repro.service.scheduler` — bounded thread pool with admission
  control, deadlines and cooperative cancellation.
* :mod:`~repro.service.engine` — :class:`SelectionEngine`, tying the
  layers together behind :class:`SelectionQuery` / :class:`QueryResult`.
* :mod:`~repro.service.shared` — :class:`SharedArrayStore`, zero-copy
  shared-memory kernel state with a content-hash handshake.
* :mod:`~repro.service.sharding` — :class:`ShardCoordinator` and its
  :class:`ShardWorker` processes: multi-process resolve fan-out and
  distributed CELF greedy over :class:`ShardPlan` user shards.
"""

from .cache import CacheStats, LRUCache
from .engine import (
    SOLVER_FACTORIES,
    QueryResult,
    QueryStats,
    SelectionEngine,
    SelectionQuery,
    solve_queries,
)
from .prepared import PreparedInstance
from .scheduler import CancelToken, QueryHandle, QueryScheduler
from .shared import SharedArrayStore
from .sharding import (
    ShardCoordinator,
    ShardPlan,
    ShardWorker,
    ShardedCoverageMatrix,
)
from .snapshot import DatasetSnapshot, dataset_content_hash

__all__ = [
    "CacheStats",
    "CancelToken",
    "DatasetSnapshot",
    "LRUCache",
    "PreparedInstance",
    "QueryHandle",
    "QueryResult",
    "QueryScheduler",
    "QueryStats",
    "SOLVER_FACTORIES",
    "SelectionEngine",
    "SelectionQuery",
    "ShardCoordinator",
    "ShardPlan",
    "ShardWorker",
    "ShardedCoverageMatrix",
    "SharedArrayStore",
    "dataset_content_hash",
    "solve_queries",
]
