"""Concurrent query scheduling: thread pool, admission control, deadlines.

The scheduler is deliberately thin: a fixed thread pool plus a queued-work
bound.  Admission control is synchronous — :meth:`QueryScheduler.submit`
raises :class:`~repro.exceptions.EngineSaturatedError` the moment the
backlog reaches ``max_queued``, so overload is pushed back to callers
instead of growing an unbounded queue.

Deadlines and cancellation are *cooperative*: every query carries a
:class:`CancelToken` whose :meth:`~CancelToken.check` the engine probes
between phases and threads into the greedy round loop
(``cancel_check`` in :func:`repro.solvers.run_selection`).  A fired token
aborts the query at the next probe with
:class:`~repro.exceptions.QueryCancelledError` /
:class:`~repro.exceptions.DeadlineExceededError`; deadlines are measured
from submission, so time spent queued counts against them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Optional

from ..exceptions import (
    DeadlineExceededError,
    EngineSaturatedError,
    QueryCancelledError,
)


class CancelToken:
    """Cooperative cancellation + deadline probe for one query.

    The token is the query's *clock*: ``started_at`` is stamped when the
    token is created — at submission for scheduled queries, at call time
    for direct ``execute`` — and both the deadline and the engine's
    ``total_seconds`` accounting measure from that same instant, so a
    recorded latency and a replayed deadline always mean the same thing.
    All times are ``time.perf_counter()`` readings (one clock for
    deadlines and latency accounting; mixing clock sources here is how
    queue wait silently stops counting).
    """

    def __init__(
        self,
        deadline: Optional[float] = None,
        started_at: Optional[float] = None,
    ) -> None:
        #: ``time.perf_counter()`` at token creation — the zero point of
        #: this query's latency and deadline accounting.
        self.started_at = time.perf_counter() if started_at is None else started_at
        #: Absolute ``time.perf_counter()`` deadline, or ``None``.
        self.deadline = deadline
        self._cancelled = False

    @classmethod
    def with_timeout(cls, seconds: Optional[float]) -> "CancelToken":
        """A token expiring ``seconds`` from now (no deadline if ``None``)."""
        now = time.perf_counter()
        return cls(
            None if seconds is None else now + seconds, started_at=now
        )

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> None:
        """Request cancellation; the query aborts at its next probe."""
        self._cancelled = True

    def expired(self) -> bool:
        """Whether the deadline has passed (without raising).

        ``>=`` rather than ``>``: a zero-second deadline makes
        ``deadline == started_at``, and on a coarse clock an immediate
        probe can read the very same tick — strict comparison would then
        let an already-expired query run to completion.
        """
        return self.deadline is not None and time.perf_counter() >= self.deadline

    def check(self) -> None:
        """Raise if the query should stop; called between units of work."""
        if self._cancelled:
            raise QueryCancelledError("query cancelled")
        if self.expired():
            raise DeadlineExceededError("query deadline exceeded")


class QueryHandle:
    """A submitted query: future plus its cancellation token."""

    def __init__(self, future: "Future[Any]", token: CancelToken) -> None:
        self._future = future
        self.token = token

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the query result (re-raising its exception, if any)."""
        return self._future.result(timeout)

    def done(self) -> bool:
        return self._future.done()

    def add_done_callback(self, fn: Callable[["QueryHandle"], None]) -> None:
        """Invoke ``fn(handle)`` when the query finishes (any outcome).

        Runs on the worker thread that completed the query (or inline if
        already done) — the hook the trace recorder uses to journal
        outcomes without polling.
        """
        self._future.add_done_callback(lambda _f: fn(self))

    def cancel(self) -> None:
        """Cancel the query: drop it if still queued, else fire the token."""
        self.token.cancel()
        self._future.cancel()


class QueryScheduler:
    """Bounded thread-pool executor for engine queries.

    Args:
        max_workers: Concurrent query threads.
        max_queued: Maximum in-flight (queued + running) queries; further
            submissions raise :class:`EngineSaturatedError`.
    """

    def __init__(self, max_workers: int = 4, max_queued: int = 64) -> None:
        if max_workers < 1 or max_queued < 1:
            raise ValueError("max_workers and max_queued must be >= 1")
        self.max_workers = max_workers
        self.max_queued = max_queued
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="mc2ls-serve"
        )
        self._lock = threading.Lock()
        self._in_flight = 0
        self.submitted = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Queries currently queued or running."""
        with self._lock:
            return self._in_flight

    def submit(
        self, fn: Callable[[CancelToken], Any], token: CancelToken
    ) -> QueryHandle:
        """Admit and enqueue one query; raises when saturated."""
        with self._lock:
            if self._in_flight >= self.max_queued:
                self.rejected += 1
                raise EngineSaturatedError(
                    f"{self._in_flight} queries in flight (max {self.max_queued})"
                )
            self._in_flight += 1
            self.submitted += 1

        def run() -> Any:
            try:
                return fn(token)
            finally:
                with self._lock:
                    self._in_flight -= 1
            # A future cancelled while queued never runs; its slot is
            # released by the done-callback below instead.

        future = self._executor.submit(run)

        def on_done(f: "Future[Any]") -> None:
            if f.cancelled():
                with self._lock:
                    self._in_flight -= 1

        future.add_done_callback(on_done)
        return QueryHandle(future, token)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and optionally wait for running queries."""
        self._executor.shutdown(wait=wait)
