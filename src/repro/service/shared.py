"""Shared-memory array store for multi-process kernel state.

The sharded execution layer splits "kernel state" from "solver objects":
the numeric payloads the kernels actually read — the
:class:`~repro.influence.PositionArena` arrays (``positions`` /
``offsets`` / ``uids``), the CSR :class:`~repro.solvers.CoverageMatrix`
arrays (``indptr`` / ``col`` / ``weights``), candidate and facility
coordinates — are plain C-contiguous numpy arrays, so worker processes
can map them zero-copy out of one ``multiprocessing.shared_memory``
segment instead of each holding a full pickled copy of the population.

One :class:`SharedArrayStore` owns one segment.  The segment layout is a
small header (magic + the owning snapshot's content hash) followed by the
arrays back-to-back at 64-byte-aligned offsets; the :attr:`manifest`
(a plain picklable dict) names each array's dtype, shape and offset and
travels to workers over the coordinator's pipes.  Attaching re-derives
the views and performs the **content-hash handshake**: the hash embedded
in the shared header must equal the hash the manifest promises, so a
worker can never silently read a recycled or mismatched segment.

Lifecycle is explicit and leak-proof:

* ``create()`` registers the segment in a module-level registry whose
  ``atexit`` hook unlinks anything still live — a coordinator that dies
  with an exception cannot orphan ``/dev/shm`` segments.
* ``unlink()`` (owner only) removes the name and deregisters; it is
  idempotent and safe to call from ``finally`` blocks and context-manager
  exits.
* ``close()`` drops this process's mapping (workers call it on detach);
  it never removes the name.

Python's ``resource_tracker`` double-counts segments attached from
worker processes (bpo-38119); attach therefore deregisters the segment
from the attaching process's tracker *when that process runs its own
tracker* — both ``fork`` and ``spawn`` children share the creator's
tracker process (spawn ships the tracker fd in its preparation data),
where the duplicate registration already collapses.  Either way the
creating process's registry remains the single owner of the name.
"""

from __future__ import annotations

import atexit
import secrets
import threading
from multiprocessing import shared_memory
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from ..exceptions import ServiceError

#: Array offsets inside the segment are aligned to this many bytes.
_ALIGN = 64

#: Segment header: magic bytes + fixed-width (sha256 hex) content hash.
_MAGIC = b"MC2LS-SHM-1\x00"
_HASH_BYTES = 64

#: Prefix of every segment name this module creates; the crash-cleanup
#: tests sweep ``/dev/shm`` for leftovers by this prefix.
SEGMENT_PREFIX = "mc2ls-"

# Registry of segments created (owned) by this process, unlinked by the
# atexit guard if the owner never got to do it (crash, unhandled error).
_live_segments: Dict[str, shared_memory.SharedMemory] = {}
_live_lock = threading.Lock()


def _atexit_unlink_leftovers() -> None:  # pragma: no cover - exit path
    with _live_lock:
        leftovers = list(_live_segments.values())
        _live_segments.clear()
    for shm in leftovers:
        try:
            shm.close()
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass


atexit.register(_atexit_unlink_leftovers)


def live_segment_names() -> Tuple[str, ...]:
    """Names currently registered with the atexit guard (for tests)."""
    with _live_lock:
        return tuple(sorted(_live_segments))


def _tracker_pid() -> Any:
    """Pid of this process's resource-tracker, if one is running.

    Best-effort read of a private API; ``None`` when unavailable.
    """
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        return getattr(resource_tracker._resource_tracker, "_pid", None)
    except Exception:  # pragma: no cover
        return None


def _untrack_if_foreign(name: str, owner_tracker_pid: Any) -> None:
    """Deregister a segment from this process's resource tracker.

    Attaching registers the name with the *attaching* process's tracker
    (bpo-38119), which would unlink a segment it does not own when that
    process exits.  Ownership lives with the creator's registry, so
    non-owners opt out — but only when they run a tracker of their own.
    Multiprocessing children share the creator's tracker process: a
    ``fork`` child inherits both ``_pid`` and ``_fd``, a ``spawn`` child
    inherits only the fd (so its ``_pid`` reads ``None``).  In the
    shared tracker the duplicate registration collapses in the tracker's
    name set, and unregistering there would strip the creator's entry
    and make its eventual unlink warn — so we unregister only when this
    process's tracker pid is known *and* differs from the creator's
    (i.e. a genuinely unrelated process spawned its own tracker).
    Best-effort: the API is private.
    """
    pid = _tracker_pid()
    if pid is None or pid == owner_tracker_pid:
        return
    try:  # pragma: no cover - depends on interpreter internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover
        pass


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedArrayStore:
    """A named set of numpy arrays in one shared-memory segment.

    Create on the coordinator with :meth:`create`, ship :attr:`manifest`
    to workers, attach there with :meth:`attach`.  Arrays come back as
    read-only views into the mapping — zero-copy in every process.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        manifest: Dict[str, Any],
        owner: bool,
    ) -> None:
        self._shm = shm
        self._manifest = manifest
        self._owner = owner
        self._closed = False
        self._unlinked = False
        self._arrays: Dict[str, np.ndarray] = {}
        for name, dtype_str, shape, offset in manifest["arrays"]:
            arr = np.ndarray(
                tuple(shape),
                dtype=np.dtype(dtype_str),
                buffer=shm.buf,
                offset=offset,
            )
            arr.flags.writeable = False
            self._arrays[name] = arr

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        arrays: Mapping[str, np.ndarray],
        content_hash: str,
        label: str = "store",
    ) -> "SharedArrayStore":
        """Allocate a segment holding ``arrays`` and copy them in.

        Args:
            arrays: Name → array.  Arrays are normalised to C-contiguous
                (no-op for the kernel payloads, which already are).
            content_hash: The owning snapshot's content hash (sha256
                hex); embedded in the segment header for the attach-time
                handshake.
            label: Human-readable fragment of the segment name.
        """
        if len(content_hash) != _HASH_BYTES:
            raise ServiceError(
                f"content hash must be {_HASH_BYTES} hex chars, "
                f"got {len(content_hash)}"
            )
        normalised = {
            name: np.ascontiguousarray(arr) for name, arr in arrays.items()
        }
        specs = []
        offset = _aligned(len(_MAGIC) + _HASH_BYTES)
        for name, arr in normalised.items():
            specs.append((name, arr.dtype.str, tuple(arr.shape), offset))
            offset = _aligned(offset + arr.nbytes)
        name = f"{SEGMENT_PREFIX}{label}-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(offset, 1)
        )
        with _live_lock:
            _live_segments[shm.name] = shm
        shm.buf[: len(_MAGIC)] = _MAGIC
        shm.buf[len(_MAGIC) : len(_MAGIC) + _HASH_BYTES] = content_hash.encode(
            "ascii"
        )
        for (arr_name, dtype_str, shape, arr_offset), arr in zip(
            specs, normalised.values()
        ):
            dst = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=arr_offset
            )
            dst[...] = arr
        manifest = {
            "segment": shm.name,
            "content_hash": content_hash,
            "size": shm.size,
            "arrays": specs,
            "tracker_pid": _tracker_pid(),
        }
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> "SharedArrayStore":
        """Map an existing segment from its manifest (worker side).

        Verifies the header magic and performs the content-hash
        handshake before exposing any array.

        Raises:
            ServiceError: Segment missing, not one of ours, or its
                embedded content hash differs from the manifest's.
        """
        try:
            shm = shared_memory.SharedMemory(name=manifest["segment"], create=False)
        except FileNotFoundError as exc:
            raise ServiceError(
                f"shared segment {manifest['segment']!r} does not exist "
                "(coordinator gone or already unlinked?)"
            ) from exc
        _untrack_if_foreign(shm.name, manifest.get("tracker_pid"))
        magic = bytes(shm.buf[: len(_MAGIC)])
        embedded = bytes(
            shm.buf[len(_MAGIC) : len(_MAGIC) + _HASH_BYTES]
        ).decode("ascii", errors="replace")
        if magic != _MAGIC:
            shm.close()
            raise ServiceError(
                f"segment {manifest['segment']!r} is not a MC2LS array store"
            )
        if embedded != manifest["content_hash"]:
            shm.close()
            raise ServiceError(
                f"content-hash handshake failed for {manifest['segment']!r}: "
                f"segment holds {embedded[:12]}, manifest promises "
                f"{manifest['content_hash'][:12]}"
            )
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------
    @property
    def manifest(self) -> Dict[str, Any]:
        """Picklable description (segment name, hash, array specs)."""
        return self._manifest

    @property
    def content_hash(self) -> str:
        return self._manifest["content_hash"]

    @property
    def segment_name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return self._manifest["size"]

    def __getitem__(self, name: str) -> np.ndarray:
        if self._closed:
            raise ServiceError(f"array store {self.segment_name!r} is closed")
        return self._arrays[name]

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._arrays)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent; never unlinks).

        Views handed out earlier keep the mapping alive at the OS level
        until they are garbage collected; the name is unaffected either
        way.
        """
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()
        try:
            self._shm.close()
        except BufferError:
            # A caller still holds views into the buffer; the mapping
            # lives until they drop it, but this store stops handing out
            # arrays and unlink (name removal) is unaffected.
            pass

    def unlink(self) -> None:
        """Remove the segment name (owner only; idempotent)."""
        if not self._owner or self._unlinked:
            return
        self._unlinked = True
        with _live_lock:
            _live_segments.pop(self._shm.name, None)
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedArrayStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
        self.unlink()

    def __repr__(self) -> str:
        return (
            f"SharedArrayStore({self.segment_name!r}, "
            f"arrays={list(self._arrays)}, owner={self._owner})"
        )
