"""The in-process query-serving engine.

:class:`SelectionEngine` answers repeated MC²LS selection queries against
one published :class:`~repro.service.DatasetSnapshot`:

1. **Result cache** — a selection already computed for the same
   ``(snapshot, solver, PF, τ, k, candidate mask)`` is returned directly.
2. **Prepared-instance cache** — otherwise the engine fetches (or
   resolves) the :class:`~repro.service.PreparedInstance` for
   ``(snapshot, solver, PF, τ)`` and runs only the cheap greedy phase
   with the query's ``k`` / mask / kernel knobs.
3. **Scheduler** — :meth:`SelectionEngine.submit` executes queries on a
   bounded thread pool with admission control and per-query deadlines;
   the deadline probe is threaded into every greedy round.

Cache keys deliberately exclude the ``batch_verify`` / ``fast_select``
knobs: those select execution kernels whose outputs are bit-identical
(the repository's core invariant, enforced by the differential suites),
so caching across them is sound.  Keys always lead with the snapshot
content hash — a republished population gets a new hash, making stale
service impossible by construction; supersession additionally sweeps the
old hash's entries out of both caches.

Every result carries :class:`QueryStats`: where it came from (cache
provenance), what it cost (phase timings, verification counters), and
which snapshot version served it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..capture import CaptureSpec
from ..entities import SpatialDataset
from ..exceptions import ServiceError, ShardError, SolverError
from ..influence import (
    ProbabilityFunction,
    paper_default_pf,
    pf_from_dict,
    pf_to_dict,
)
from ..solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    IQTVariant,
    Solver,
)
from .cache import LRUCache
from .prepared import PreparedInstance
from .scheduler import CancelToken, QueryHandle, QueryScheduler
from .shared import SharedArrayStore
from .sharding import ShardCoordinator
from .snapshot import DatasetSnapshot

#: Solvers the engine can prepare with, by CLI-compatible name.  Each
#: factory takes the query's ``batch_verify`` knob; solvers without a
#: batched verification path ignore it.
#: Churn fraction (delta events over serving population) above which the
#: engine republish stops migrating prepared instances and falls back to
#: plain invalidation — a mostly-new population re-resolves about as fast
#: as it patches, and eager migration of instances that may never be
#: queried again is pure waste at that point.
_MIGRATE_FRACTION = 0.5

SOLVER_FACTORIES: Dict[str, Any] = {
    "baseline": lambda batch_verify: BaselineGreedySolver(batch_verify=batch_verify),
    "k-cifp": lambda batch_verify: AdaptedKCIFPSolver(),
    "iqt": lambda batch_verify: IQTSolver(
        variant=IQTVariant.IQT, batch_verify=batch_verify
    ),
    "iqt-c": lambda batch_verify: IQTSolver(
        variant=IQTVariant.IQT_C, batch_verify=batch_verify
    ),
    "iqt-pino": lambda batch_verify: IQTSolver(
        variant=IQTVariant.IQT_PINO, batch_verify=batch_verify
    ),
}


@dataclass(frozen=True)
class SelectionQuery:
    """One what-if selection request against the published snapshot.

    Attributes:
        k: Number of locations to select.
        tau: Influence threshold.
        solver: Resolution strategy (key of :data:`SOLVER_FACTORIES`).
        pf: Probability function (paper default when ``None``).
        candidate_ids: Optional candidate mask — select only from this
            subset of the snapshot's candidates.
        batch_verify: Kernel knob for the resolution phase.
        fast_select: Kernel knob for the greedy phase.
        deadline_s: Cooperative deadline in seconds, measured from
            submission; ``None`` disables it.
        use_cache: Look up / populate the engine caches (disable for
            benchmarking cold paths).
        capture: Customer-choice capture model spec
            (:class:`~repro.capture.CaptureSpec`); ``None`` means the
            paper's evenly-split model.  The spec's cache key joins the
            engine cache keys, so queries share cached work exactly when
            their capture semantics are identical; sharded execution
            supports only the evenly-split key and falls back to the
            threaded path (counted in :meth:`SelectionEngine.stats`)
            for anything else.
    """

    k: int
    tau: float = 0.7
    solver: str = "iqt"
    pf: Optional[ProbabilityFunction] = None
    candidate_ids: Optional[Tuple[int, ...]] = None
    batch_verify: bool = True
    fast_select: bool = True
    deadline_s: Optional[float] = None
    use_cache: bool = True
    capture: Optional[CaptureSpec] = None

    @property
    def capture_spec(self) -> CaptureSpec:
        """The effective capture spec (evenly-split when unset)."""
        return self.capture if self.capture is not None else CaptureSpec()

    def __post_init__(self) -> None:
        if self.candidate_ids is not None:
            object.__setattr__(
                self,
                "candidate_ids",
                tuple(sorted(set(int(c) for c in self.candidate_ids))),
            )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-portable form of this query (trace journaling).

        Round-trips through :meth:`from_dict` to an equal query —
        including the engine cache keys it produces — so a replayed
        trace exercises exactly the cache behaviour it recorded.  A
        custom :class:`~repro.influence.ProbabilityFunction` outside the
        provided families is not portable and raises.
        """
        return {
            "k": self.k,
            "tau": self.tau,
            "solver": self.solver,
            "pf": None if self.pf is None else pf_to_dict(self.pf),
            "candidate_ids": (
                None if self.candidate_ids is None else list(self.candidate_ids)
            ),
            "batch_verify": self.batch_verify,
            "fast_select": self.fast_select,
            "deadline_s": self.deadline_s,
            "use_cache": self.use_cache,
            "capture": (
                None if self.capture is None else asdict(self.capture)
            ),
        }

    @classmethod
    def from_dict(cls, spec: Dict[str, Any]) -> "SelectionQuery":
        """Rebuild a query serialised by :meth:`as_dict`."""
        pf_spec = spec.get("pf")
        capture_spec = spec.get("capture")
        candidate_ids = spec.get("candidate_ids")
        return cls(
            k=int(spec["k"]),
            tau=float(spec.get("tau", 0.7)),
            solver=spec.get("solver", "iqt"),
            pf=None if pf_spec is None else pf_from_dict(pf_spec),
            candidate_ids=(
                None if candidate_ids is None else tuple(candidate_ids)
            ),
            batch_verify=bool(spec.get("batch_verify", True)),
            fast_select=bool(spec.get("fast_select", True)),
            deadline_s=spec.get("deadline_s"),
            use_cache=bool(spec.get("use_cache", True)),
            capture=(
                None if capture_spec is None else CaptureSpec(**capture_spec)
            ),
        )


@dataclass(frozen=True)
class QueryStats:
    """Provenance and cost accounting for one served query."""

    snapshot_hash: str
    snapshot_version: int
    solver: str
    k: int
    tau: float
    result_cache: str  # "hit" | "miss" | "bypass"
    prepared_cache: str  # "hit" | "miss" | "bypass" | "skip"
    prepare_seconds: float
    select_seconds: float
    total_seconds: float
    evaluations: int
    positions_touched: int
    selection_evaluations: int

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form for JSON reports and the CLI."""
        return {
            "snapshot_hash": self.snapshot_hash[:12],
            "snapshot_version": self.snapshot_version,
            "solver": self.solver,
            "k": self.k,
            "tau": self.tau,
            "result_cache": self.result_cache,
            "prepared_cache": self.prepared_cache,
            "prepare_seconds": self.prepare_seconds,
            "select_seconds": self.select_seconds,
            "total_seconds": self.total_seconds,
            "evaluations": self.evaluations,
            "positions_touched": self.positions_touched,
            "selection_evaluations": self.selection_evaluations,
        }


@dataclass(frozen=True)
class QueryResult:
    """A served selection plus its provenance.

    ``selected`` / ``objective`` / ``gains`` are bit-identical to the
    corresponding direct ``Solver.solve`` call on the snapshot's dataset
    (candidate-restricted when the query carried a mask).
    """

    selected: Tuple[int, ...]
    objective: float
    gains: Tuple[float, ...]
    stats: QueryStats = field(compare=False)


class SelectionEngine:
    """Serve selection queries against published dataset snapshots.

    Args:
        snapshot: Initial population (a snapshot or a bare dataset);
            may also be published later.
        max_workers: Scheduler thread count.
        max_queued: Admission-control bound on in-flight queries.
        prepared_cache_size: LRU bound for prepared instances (each holds
            a full influence table — keep this small).
        result_cache_size: LRU bound for final selections (cheap entries).
        incremental: Migrate cached prepared instances across streaming
            republishes by delta-patching them
            (:meth:`~repro.service.PreparedInstance.patched`) instead of
            dropping them; disable to measure the full-invalidation
            baseline (the CLI exposes this as ``--no-incremental``).
        execution: ``"threaded"`` (default) serves queries with the
            in-process kernels; ``"sharded"`` fans resolution and the
            greedy rounds out over ``shard_workers`` worker *processes*
            through a :class:`~repro.service.ShardCoordinator`
            (bit-identical results, GIL-free scaling).  Falls back to
            the threaded path — with a counter in :meth:`stats` — when
            ``shard_workers < 2`` or shared memory / process spawning is
            unavailable on the platform.
        shard_workers: Worker-process count for sharded execution.
        shard_start_method: ``multiprocessing`` start method override
            for the worker fleet (default: ``fork`` where available).
    """

    def __init__(
        self,
        snapshot: Optional[Any] = None,
        *,
        max_workers: int = 4,
        max_queued: int = 64,
        prepared_cache_size: int = 16,
        result_cache_size: int = 4096,
        incremental: bool = True,
        execution: str = "threaded",
        shard_workers: int = 0,
        shard_start_method: Optional[str] = None,
    ) -> None:
        if execution not in ("threaded", "sharded"):
            raise ServiceError(
                f"unknown execution mode {execution!r}; "
                "expected 'threaded' or 'sharded'"
            )
        self._prepared = LRUCache(prepared_cache_size)
        self._results = LRUCache(result_cache_size)
        self._scheduler = QueryScheduler(max_workers, max_queued)
        self._snapshot: Optional[DatasetSnapshot] = None
        self.incremental = incremental
        self._patched = 0
        self._patch_skipped = 0
        self._patch_failed = 0
        self.execution = execution
        self.shard_workers = shard_workers
        self._shard_start_method = shard_start_method
        self._shard_lock = threading.Lock()
        self._coordinator: Optional[ShardCoordinator] = None
        self._shard_disabled = shard_workers < 2
        self._shard_queries = 0
        self._shard_fallbacks = 0
        self._shard_failures = 0
        self._shard_recoveries = 0
        self._recovery_pending = False
        self._capture_fallbacks = 0
        if snapshot is not None:
            self.publish(snapshot)

    # ------------------------------------------------------------------
    # Snapshot lifecycle
    # ------------------------------------------------------------------
    def publish(self, snapshot: Any) -> DatasetSnapshot:
        """Install a new population version; supersede the previous one.

        Accepts a :class:`DatasetSnapshot` or a bare
        :class:`~repro.entities.SpatialDataset` (wrapped on the fly).
        The superseded snapshot's cache entries are invalidated unless
        the content hash is unchanged (republishing identical data keeps
        the warm caches — they are still correct).
        """
        if isinstance(snapshot, SpatialDataset):
            snapshot = DatasetSnapshot(snapshot)
        if not isinstance(snapshot, DatasetSnapshot):
            raise ServiceError(
                f"cannot publish {type(snapshot).__name__}; expected a "
                "DatasetSnapshot or SpatialDataset"
            )
        old = self._snapshot
        if snapshot.version == 0:
            snapshot.version = old.version + 1 if old is not None else 1
        self._snapshot = snapshot
        if old is not None:
            old.supersede()
            if old.content_hash != snapshot.content_hash:
                self._migrate_prepared(old, snapshot)
                self._prepared.invalidate_snapshot(old.content_hash)
                self._results.invalidate_snapshot(old.content_hash)
                self._detach_sharded()
        return snapshot

    def _migrate_prepared(
        self, old: DatasetSnapshot, snapshot: DatasetSnapshot
    ) -> None:
        """Delta-patch the old snapshot's prepared instances onto the new.

        Runs just before the old hash's entries are swept: each prepared
        instance whose key chains to the new snapshot's delta is spliced
        via :meth:`~repro.service.PreparedInstance.patched` and inserted
        under the new content hash, so the first query after a streaming
        republish pays dirty-row work instead of a full re-resolve.
        Skipped entirely when incremental serving is off, the delta is
        missing or chains elsewhere, or churn exceeds
        :data:`_MIGRATE_FRACTION` of the new population.
        """
        delta = snapshot.delta
        entries = self._prepared.entries_for(old.content_hash)
        if not entries:
            return
        n_users = len(snapshot.dataset.users)
        if (
            not self.incremental
            or delta is None
            or delta.parent_hash != old.content_hash
            or (n_users and len(delta) > _MIGRATE_FRACTION * n_users)
        ):
            self._patch_skipped += len(entries)
            return
        for key, inst in entries:
            try:
                patched = PreparedInstance.patched(inst, snapshot)
            except (ServiceError, SolverError):
                self._patch_failed += 1
                continue
            self._prepared.put((snapshot.content_hash,) + key[1:], patched)
            self._patched += 1

    def publish_streaming(self, session: Any) -> DatasetSnapshot:
        """Publish the current state of a :class:`StreamingMC2LS` session."""
        return self.publish(DatasetSnapshot.from_streaming(session))

    def snapshot(self) -> DatasetSnapshot:
        """The currently published snapshot."""
        if self._snapshot is None:
            raise ServiceError("no snapshot published")
        return self._snapshot

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def _validate(self, query: SelectionQuery, snapshot: DatasetSnapshot) -> None:
        if query.solver not in SOLVER_FACTORIES:
            raise ServiceError(
                f"unknown solver {query.solver!r}; "
                f"expected one of {sorted(SOLVER_FACTORIES)}"
            )
        if not 0.0 < query.tau < 1.0:
            raise SolverError(f"tau must be in (0, 1), got {query.tau}")
        n = (
            len(query.candidate_ids)
            if query.candidate_ids is not None
            else len(snapshot.dataset.candidates)
        )
        if query.k < 1 or query.k > n:
            raise SolverError(f"k={query.k} infeasible for {n} candidates")

    def _prepared_for(
        self,
        snapshot: DatasetSnapshot,
        query: SelectionQuery,
        pf: ProbabilityFunction,
        pkey: Tuple[Any, ...],
    ) -> Tuple[PreparedInstance, str]:
        def build() -> PreparedInstance:
            solver: Solver = SOLVER_FACTORIES[query.solver](query.batch_verify)
            spec = query.capture_spec
            # The default spec passes capture=None: the prepared instance
            # then takes the untouched legacy path, keeping evenly-split
            # serving bit-identical to pre-capture builds.
            capture = (
                None if spec.is_default else spec.build(snapshot.dataset, pf)
            )
            return PreparedInstance(snapshot, solver, query.tau, pf, capture)

        if not query.use_cache:
            return build(), "bypass"
        prepared, was_hit = self._prepared.get_or_create(pkey, build)
        return prepared, "hit" if was_hit else "miss"

    # ------------------------------------------------------------------
    # Sharded execution
    # ------------------------------------------------------------------
    def _detach_sharded(self) -> None:
        """Drop the worker fleet's shared state (on republish)."""
        with self._shard_lock:
            coord = self._coordinator
            if coord is not None and coord.broken is None:
                coord.detach()

    def _ensure_coordinator(self) -> Optional[ShardCoordinator]:
        """The live worker fleet, or ``None`` when falling back.

        Spawns the fleet on first use, after probing that shared memory
        actually works here (some platforms mount no ``/dev/shm``); any
        setup failure permanently disables sharded execution for this
        engine — queries silently take the threaded path and the
        ``sharded.fallbacks`` counter records it.
        """
        if self._shard_disabled:
            return None
        with self._shard_lock:
            if self._coordinator is not None:
                if self._coordinator.broken is None:
                    return self._coordinator
                # A broken fleet left behind by a failed query: tear it
                # down before respawning so its workers/segments never
                # outlive the coordinator that owns them.
                try:
                    self._coordinator.close()
                except Exception:
                    pass
                self._coordinator = None
                self._recovery_pending = True
            try:
                probe = SharedArrayStore.create(
                    {"probe": np.zeros(1, dtype=np.float64)},
                    "0" * 64,
                    label="probe",
                )
                probe.close()
                probe.unlink()
                self._coordinator = ShardCoordinator(
                    self.shard_workers, start_method=self._shard_start_method
                )
                if self._recovery_pending:
                    # Fresh fleet replacing a broken one — a recovery,
                    # not a fallback: the query stays on the sharded
                    # path, so neither fallback counter fires for it.
                    self._shard_recoveries += 1
                    self._recovery_pending = False
                return self._coordinator
            except Exception:
                self._shard_disabled = True
                self._coordinator = None
                return None

    def _execute_sharded(
        self,
        query: SelectionQuery,
        snapshot: DatasetSnapshot,
        pf: ProbabilityFunction,
        token: CancelToken,
        t0: float,
    ) -> Optional[QueryResult]:
        """Serve one query on the worker fleet; ``None`` means fall back.

        Preparation (shared-arena fan-out + sharded resolve) is
        amortised per ``(snapshot, PF, τ)`` exactly like the threaded
        path's prepared-instance cache; the distributed greedy returns
        selections, gains and objective bit-identical to the in-process
        kernels, so the result cache is shared with the threaded path.
        A worker dying mid-query is *not* a fallback: the coordinator
        tears down (unlinking every shared segment) and the query fails
        with :class:`~repro.exceptions.ShardError` — silently recomputing
        could hide a systematically crashing fleet.  The engine drops the
        broken coordinator so the *next* query starts a fresh one.
        """
        coord = self._ensure_coordinator()
        if coord is None:
            self._shard_fallbacks += 1
            return None
        try:
            did_prepare = coord.prepare(snapshot, query.tau, pf)
            token.check()
            t_sel = time.perf_counter()
            outcome = coord.select(
                query.k,
                candidate_ids=query.candidate_ids,
                cancel_check=token.check,
            )
            stats = coord.stats
        except ShardError:
            with self._shard_lock:
                if self._coordinator is not None and self._coordinator.broken:
                    # The coordinator already tore itself down (ShardError
                    # always follows teardown); mark the break so the next
                    # successful respawn counts as one recovery.
                    self._coordinator = None
                    self._recovery_pending = True
            self._shard_failures += 1
            raise
        self._shard_queries += 1
        now = time.perf_counter()
        qstats = QueryStats(
            snapshot_hash=snapshot.content_hash,
            snapshot_version=snapshot.version,
            solver=query.solver,
            k=query.k,
            tau=query.tau,
            result_cache="miss" if query.use_cache else "bypass",
            prepared_cache="sharded-miss" if did_prepare else "sharded-hit",
            prepare_seconds=coord.last_prepare_seconds,
            select_seconds=now - t_sel,
            total_seconds=now - t0,
            evaluations=stats.total_evaluations if stats else 0,
            positions_touched=stats.positions_touched if stats else 0,
            selection_evaluations=outcome.evaluations,
        )
        return QueryResult(
            selected=outcome.selected,
            objective=outcome.objective,
            gains=outcome.gains,
            stats=qstats,
        )

    def execute(
        self, query: SelectionQuery, cancel: Optional[CancelToken] = None
    ) -> QueryResult:
        """Serve one query synchronously on the calling thread.

        The query's clock is its token: for scheduled queries the token
        was created at submission, so ``total_seconds`` includes queue
        wait — the same span the deadline is measured over.  A token
        that is already cancelled or expired aborts *before* the cache
        lookup: an expired query is never served, not even for free, so
        record/replay sees the same outcome regardless of cache warmth.
        """
        token = cancel or CancelToken.with_timeout(query.deadline_s)
        t0 = token.started_at
        token.check()
        snapshot = self.snapshot()
        self._validate(query, snapshot)
        pf = query.pf or paper_default_pf()
        pf_key = pf.cache_key()
        base_key = (
            snapshot.content_hash,
            query.solver,
            pf_key,
            float(query.tau),
            query.capture_spec.cache_key(),
        )
        rkey = base_key + ("result", int(query.k), query.candidate_ids)
        if query.use_cache:
            cached = self._results.get(rkey)
            if cached is not None:
                # Fresh stats for this hit — never a mutated/shared view
                # of the cached result's own QueryStats (concurrent hits
                # would race) and never the original solve's numbers:
                # ``total_seconds`` measures *this* query and the work
                # counters are zero because this query did no work.
                stats = QueryStats(
                    snapshot_hash=snapshot.content_hash,
                    snapshot_version=snapshot.version,
                    solver=query.solver,
                    k=query.k,
                    tau=query.tau,
                    result_cache="hit",
                    prepared_cache="skip",
                    prepare_seconds=0.0,
                    select_seconds=0.0,
                    total_seconds=time.perf_counter() - t0,
                    evaluations=0,
                    positions_touched=0,
                    selection_evaluations=0,
                )
                return replace(cached, stats=stats)

        if self.execution == "sharded":
            if not query.capture_spec.is_default:
                # The worker fleet's distinct-weight exact merge encodes
                # the evenly-split weight family; other capture models
                # degrade cleanly to the threaded path below.  Exactly
                # one fallback counter fires per fallen-back query:
                # ``capture_fallbacks`` here, or ``fallbacks`` inside
                # ``_execute_sharded`` when the fleet is unavailable —
                # never both, so replayed traces can attribute every
                # degraded query to one cause.
                self._capture_fallbacks += 1
                result = None
            else:
                result = self._execute_sharded(query, snapshot, pf, token, t0)
            if result is not None:
                if (
                    query.use_cache
                    and self._snapshot is snapshot
                    and not snapshot.superseded
                ):
                    self._results.put(rkey, result)
                return result
            # Fleet unavailable on this platform / worker count: the
            # threaded path below serves the query bit-identically.

        prepared, prepared_provenance = self._prepared_for(
            snapshot, query, pf, base_key + ("prepared",)
        )
        token.check()

        t_sel = time.perf_counter()
        outcome = prepared.select(
            query.k,
            candidate_ids=query.candidate_ids,
            fast_select=query.fast_select,
            cancel_check=token.check,
        )
        now = time.perf_counter()
        stats = QueryStats(
            snapshot_hash=snapshot.content_hash,
            snapshot_version=snapshot.version,
            solver=query.solver,
            k=query.k,
            tau=query.tau,
            result_cache="miss" if query.use_cache else "bypass",
            prepared_cache=prepared_provenance,
            prepare_seconds=prepared.prepare_seconds,
            select_seconds=now - t_sel,
            total_seconds=now - t0,
            evaluations=prepared.resolved.evaluation.total_evaluations,
            positions_touched=prepared.resolved.evaluation.positions_touched,
            selection_evaluations=outcome.evaluations,
        )
        result = QueryResult(
            selected=outcome.selected,
            objective=outcome.objective,
            gains=outcome.gains,
            stats=stats,
        )
        # Never cache under a snapshot that was superseded mid-flight:
        # the entry would be unreachable after the invalidation sweep
        # anyway, but a sweep racing this insert could miss it.
        if query.use_cache and self._snapshot is snapshot and not snapshot.superseded:
            self._results.put(rkey, result)
        return result

    def submit(self, query: SelectionQuery) -> QueryHandle:
        """Enqueue one query on the scheduler.

        Raises :class:`~repro.exceptions.EngineSaturatedError` when the
        in-flight bound is hit.  The returned handle exposes ``result``
        and ``cancel``; the deadline clock starts now, so queue wait
        counts against ``deadline_s``.
        """
        token = CancelToken.with_timeout(query.deadline_s)
        return self._scheduler.submit(
            lambda tok: self.execute(query, cancel=tok), token
        )

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Engine-level counters: caches, scheduler, current snapshot."""
        out: Dict[str, Any] = {
            "prepared_cache": self._prepared.stats().as_dict(),
            "result_cache": self._results.stats().as_dict(),
            "incremental": {
                "enabled": self.incremental,
                "patched": self._patched,
                "skipped": self._patch_skipped,
                "failed": self._patch_failed,
            },
            "scheduler": {
                "max_workers": self._scheduler.max_workers,
                "max_queued": self._scheduler.max_queued,
                "in_flight": self._scheduler.in_flight,
                "submitted": self._scheduler.submitted,
                "rejected": self._scheduler.rejected,
            },
            "sharded": {
                "execution": self.execution,
                "workers": self.shard_workers,
                "active": self._coordinator is not None
                and self._coordinator.broken is None,
                "queries": self._shard_queries,
                "fallbacks": self._shard_fallbacks,
                "failures": self._shard_failures,
                "recoveries": self._shard_recoveries,
                "capture_fallbacks": self._capture_fallbacks,
                "capture_supported": ["evenly-split"],
            },
        }
        if self._snapshot is not None:
            out["snapshot"] = {
                "hash": self._snapshot.content_hash[:12],
                "version": self._snapshot.version,
                "label": self._snapshot.label,
            }
        return out

    def shutdown(self, wait: bool = True) -> None:
        """Stop the scheduler and the shard fleet (if one is running)."""
        self._scheduler.shutdown(wait=wait)
        with self._shard_lock:
            if self._coordinator is not None:
                self._coordinator.close()
                self._coordinator = None

    def __enter__(self) -> "SelectionEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.shutdown()


def solve_queries(
    engine: SelectionEngine, queries: Sequence[SelectionQuery]
) -> Tuple[QueryResult, ...]:
    """Submit a batch and gather results in order (helper for benchmarks)."""
    handles = [engine.submit(q) for q in queries]
    return tuple(h.result() for h in handles)
