"""Squares and NIR rounded squares (Lemmas 2 and 3 of the paper).

The IS pruning rule reasons about axis-aligned *squares* identified by their
diagonal length ``d̂``; the NIR pruning rule expands such a square into a
*rounded square* (the Minkowski sum of the square with a disc of radius
``NIR``) and then takes that shape's MBR.  Both shapes are thin wrappers
around :class:`~repro.geo.rect.Rect` with the paper's vocabulary attached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import GeometryError
from .point import Point
from .rect import Rect

SQRT2 = math.sqrt(2.0)


@dataclass(frozen=True, slots=True)
class Square:
    """An axis-aligned square, identified by centre and side length."""

    center: Point
    side: float

    def __post_init__(self) -> None:
        if self.side <= 0:
            raise GeometryError(f"side must be positive, got {self.side}")

    @property
    def diagonal(self) -> float:
        """Diagonal length ``d̂`` — the quantity the paper parameterises on."""
        return self.side * SQRT2

    def rect(self) -> Rect:
        """Return this square as a :class:`Rect`."""
        half = self.side / 2.0
        return Rect(
            self.center.x - half,
            self.center.y - half,
            self.center.x + half,
            self.center.y + half,
        )

    @staticmethod
    def from_diagonal(center: Point, diagonal: float) -> "Square":
        """Build a square from its diagonal length ``d̂``."""
        if diagonal <= 0:
            raise GeometryError(f"diagonal must be positive, got {diagonal}")
        return Square(center, diagonal / SQRT2)

    @staticmethod
    def from_rect(rect: Rect) -> "Square":
        """Interpret a (square) rectangle as a :class:`Square`.

        Raises :class:`GeometryError` when the rectangle is not square within
        a small relative tolerance, because the IS/NIR lemmas are only valid
        for squares.
        """
        if not math.isclose(rect.width, rect.height, rel_tol=1e-9, abs_tol=1e-12):
            raise GeometryError(
                f"rectangle {rect.width} x {rect.height} is not a square"
            )
        return Square(rect.center, rect.width)


@dataclass(frozen=True, slots=True)
class RoundedSquare:
    """The Minkowski sum of a square with a disc of radius ``corner_radius``.

    This is the paper's *NIR rounded square* ``□_NIR(ABCD)``: four rounded
    corners centred on the corners of the inner square.  Lemma 3 only needs
    the shape's MBR (``EFGH`` in Fig. 3(b)) for a sound prune, but the exact
    shape test is provided as well so the rule can be tightened — the
    difference is exercised by the ablation benchmarks.
    """

    inner: Square
    corner_radius: float

    def __post_init__(self) -> None:
        if self.corner_radius < 0:
            raise GeometryError(
                f"corner radius must be non-negative, got {self.corner_radius}"
            )

    def mbr(self) -> Rect:
        """Return the MBR of the rounded square (rectangle ``EFGH``)."""
        return self.inner.rect().expanded(self.corner_radius)

    def contains_point(self, p: Point) -> bool:
        """Exact containment test (including the rounded corners)."""
        rect = self.inner.rect()
        # Distance from p to the inner square; inside the rounded square
        # iff that distance is at most the corner radius.
        return rect.min_distance_to_point(p) <= self.corner_radius

    def contains_mask(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised exact containment test over an ``(n, 2)`` array."""
        rect = self.inner.rect()
        dx = np.maximum(rect.min_x - xy[:, 0], 0.0)
        dx = np.maximum(dx, xy[:, 0] - rect.max_x)
        dy = np.maximum(rect.min_y - xy[:, 1], 0.0)
        dy = np.maximum(dy, xy[:, 1] - rect.max_y)
        return dx * dx + dy * dy <= self.corner_radius * self.corner_radius
