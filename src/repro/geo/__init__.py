"""Planar geometry substrate: points, rectangles, circles and squares.

Everything downstream (spatial indexes, pruning rules, solvers) is built on
these primitives.  Coordinates are planar kilometres; see
:class:`repro.geo.distance.EquirectangularProjection` for geographic input.
"""

from .circle import Circle
from .distance import (
    EARTH_RADIUS_KM,
    EquirectangularProjection,
    euclidean,
    euclidean_many,
    haversine_km,
)
from .point import ORIGIN, Point, midpoint
from .rect import Rect
from .square import SQRT2, RoundedSquare, Square

__all__ = [
    "Circle",
    "EARTH_RADIUS_KM",
    "EquirectangularProjection",
    "ORIGIN",
    "Point",
    "Rect",
    "RoundedSquare",
    "SQRT2",
    "Square",
    "euclidean",
    "euclidean_many",
    "haversine_km",
    "midpoint",
]
