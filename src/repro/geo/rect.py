"""Axis-aligned rectangles and minimum bounding rectangles (MBRs).

Rectangles are the workhorse of every spatial index in this package: R-tree
nodes, quad-tree cells and IQuad-tree squares are all :class:`Rect`
instances.  The class is immutable so rectangles can be shared freely
between index nodes and query regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..exceptions import GeometryError
from .point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are allowed: the MBR of
    a single point is a degenerate rectangle and spatial indexes must handle
    it gracefully.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"invalid rectangle: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along the x axis."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along the y axis."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Area of the rectangle (0 for degenerate rectangles)."""
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        """Perimeter of the rectangle."""
        return 2.0 * (self.width + self.height)

    @property
    def diagonal(self) -> float:
        """Length of the rectangle's diagonal."""
        return math.hypot(self.width, self.height)

    @property
    def center(self) -> Point:
        """Center point of the rectangle."""
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """Return the four corners, counter-clockwise from the lower-left."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, p: Point) -> bool:
        """Return ``True`` when ``p`` lies inside or on the boundary."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_xy(self, x: float, y: float) -> bool:
        """Point-in-rectangle test on raw coordinates (hot path)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_rect(self, other: "Rect") -> bool:
        """Return ``True`` when ``other`` is fully inside this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """Return ``True`` when the two (closed) rectangles overlap."""
        return (
            self.min_x <= other.max_x
            and other.min_x <= self.max_x
            and self.min_y <= other.max_y
            and other.min_y <= self.max_y
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        """Return the smallest rectangle covering both operands."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlap rectangle, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "Rect":
        """Return this rectangle grown by ``margin`` on every side.

        This is the Minkowski-sum-with-a-square operation used to build the
        MBR of a *NIR rounded square* (Lemma 3 of the paper) and the NIB
        region of a user (PINOCCHIO).
        """
        if margin < 0:
            raise GeometryError(f"margin must be non-negative, got {margin}")
        return Rect(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed for this rectangle to absorb ``other``.

        Used by the R-tree ChooseLeaf heuristic (Guttman 1984).
        """
        return self.union(other).area - self.area

    # ------------------------------------------------------------------
    # Distances
    # ------------------------------------------------------------------
    def min_distance_to_point(self, p: Point) -> float:
        """Shortest distance from ``p`` to the rectangle (0 when inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Longest distance from ``p`` to any point of the rectangle.

        The maximum is always attained at a corner; this is the quantity the
        IA pruning rule compares against ``mMR(τ, r)``.
        """
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_point(p: Point) -> "Rect":
        """Return the degenerate MBR of a single point."""
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """Return the MBR of a non-empty collection of points."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise GeometryError("cannot build the MBR of zero points") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            min_x = min(min_x, p.x)
            max_x = max(max_x, p.x)
            min_y = min(min_y, p.y)
            max_y = max(max_y, p.y)
        return Rect(min_x, min_y, max_x, max_y)

    @staticmethod
    def from_array(xy: np.ndarray) -> "Rect":
        """Return the MBR of an ``(n, 2)`` coordinate array."""
        if xy.ndim != 2 or xy.shape[1] != 2 or xy.shape[0] == 0:
            raise GeometryError(f"expected a non-empty (n, 2) array, got {xy.shape}")
        mins = xy.min(axis=0)
        maxs = xy.max(axis=0)
        return Rect(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    @staticmethod
    def bounding(rects: Sequence["Rect"]) -> "Rect":
        """Return the MBR of a non-empty sequence of rectangles."""
        if not rects:
            raise GeometryError("cannot bound zero rectangles")
        out = rects[0]
        for r in rects[1:]:
            out = out.union(r)
        return out

    def contains_mask(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised point-in-rectangle test over an ``(n, 2)`` array."""
        x = xy[:, 0]
        y = xy[:, 1]
        return (
            (x >= self.min_x) & (x <= self.max_x) & (y >= self.min_y) & (y <= self.max_y)
        )

    def count_inside(self, xy: np.ndarray) -> int:
        """Return how many rows of an ``(n, 2)`` array fall inside."""
        return int(self.contains_mask(xy).sum())
