"""Circle primitive — the paper's *influence circle* ``φ(v, radius)``.

An influence circle centred on an abstract facility with radius
``mMR(τ, r)`` (or a pruning distance ``d̂``) decides influence relationships
in the PINOCCHIO corollaries and in Lemma 1 of the MC²LS paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import GeometryError
from .point import Point
from .rect import Rect


@dataclass(frozen=True, slots=True)
class Circle:
    """A closed disc ``{p : d(center, p) <= radius}``.

    A zero radius is allowed (the disc degenerates to its centre); a zero
    ``mMR`` arises naturally when the probability threshold is unreachable
    for a given position count, so the degenerate case is deliberately legal.
    """

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0:
            raise GeometryError(f"radius must be non-negative, got {self.radius}")

    def contains_point(self, p: Point) -> bool:
        """Return ``True`` when ``p`` lies inside or on the circle."""
        return self.center.distance_to(p) <= self.radius

    def contains_rect(self, rect: Rect) -> bool:
        """Return ``True`` when the whole rectangle is inside the disc.

        A disc contains a rectangle iff it contains the rectangle's farthest
        corner, which is exactly the geometric core of Lemma 2.
        """
        return rect.max_distance_to_point(self.center) <= self.radius

    def intersects_rect(self, rect: Rect) -> bool:
        """Return ``True`` when disc and rectangle share at least one point."""
        return rect.min_distance_to_point(self.center) <= self.radius

    def bounding_rect(self) -> Rect:
        """Return the MBR of the disc."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    def contains_mask(self, xy: np.ndarray) -> np.ndarray:
        """Vectorised membership test over an ``(n, 2)`` array."""
        dx = xy[:, 0] - self.center.x
        dy = xy[:, 1] - self.center.y
        return dx * dx + dy * dy <= self.radius * self.radius

    def count_inside(self, xy: np.ndarray) -> int:
        """Return how many rows of an ``(n, 2)`` array fall inside."""
        return int(self.contains_mask(xy).sum())

    @property
    def area(self) -> float:
        """Area of the disc."""
        return math.pi * self.radius * self.radius
