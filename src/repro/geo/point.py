"""Two-dimensional point primitive.

All geometry in this package works in a planar coordinate system whose unit
is the kilometre (see :mod:`repro.geo.distance` for how geographic
coordinates are projected into this space).  A :class:`Point` is an
immutable value object; most bulk computations operate on raw ``numpy``
arrays instead, and :class:`Point` exists for the readable, scalar cases:
facility positions, rectangle corners and test fixtures.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point in the plane.

    Attributes:
        x: Horizontal coordinate (km).
        y: Vertical coordinate (km).
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Return the Euclidean distance to ``other`` in km."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.x:.6g}, {self.y:.6g})"


ORIGIN = Point(0.0, 0.0)
"""The origin of the planar coordinate system."""


def midpoint(a: Point, b: Point) -> Point:
    """Return the midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)
