"""Distance functions and geographic projection helpers.

The library computes influence in a planar km-space.  Datasets given as
latitude/longitude (e.g. Brightkite check-in dumps) are projected with a
local equirectangular projection, which is accurate to well under 1 % for
city- to state-sized regions — more than enough for influence radii of a
few kilometres.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

EARTH_RADIUS_KM = 6371.0088
"""Mean Earth radius (IUGG), km."""


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between two planar points."""
    return math.hypot(ax - bx, ay - by)


def euclidean_many(point: Tuple[float, float], xy: np.ndarray) -> np.ndarray:
    """Distances from one point to every row of an ``(n, 2)`` array."""
    dx = xy[:, 0] - point[0]
    dy = xy[:, 1] - point[1]
    return np.sqrt(dx * dx + dy * dy)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two lat/lon points, in km."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


class EquirectangularProjection:
    """Project lat/lon to a local planar km-space around a reference point.

    ``x`` grows eastward and ``y`` northward; the reference point maps to the
    origin.  The projection treats the reference latitude's metric scale as
    constant, which is the standard small-region approximation.
    """

    def __init__(self, ref_lat: float, ref_lon: float) -> None:
        self.ref_lat = ref_lat
        self.ref_lon = ref_lon
        self._k_lat = math.pi / 180.0 * EARTH_RADIUS_KM
        self._k_lon = self._k_lat * math.cos(math.radians(ref_lat))

    def to_xy(self, lat: float, lon: float) -> Tuple[float, float]:
        """Project one lat/lon pair to ``(x, y)`` km."""
        return (
            (lon - self.ref_lon) * self._k_lon,
            (lat - self.ref_lat) * self._k_lat,
        )

    def to_xy_array(self, latlon: np.ndarray) -> np.ndarray:
        """Project an ``(n, 2)`` array of ``[lat, lon]`` rows to km-space."""
        out = np.empty_like(latlon, dtype=float)
        out[:, 0] = (latlon[:, 1] - self.ref_lon) * self._k_lon
        out[:, 1] = (latlon[:, 0] - self.ref_lat) * self._k_lat
        return out

    def to_latlon(self, x: float, y: float) -> Tuple[float, float]:
        """Inverse projection: km-space back to ``(lat, lon)``."""
        return (
            y / self._k_lat + self.ref_lat,
            x / self._k_lon + self.ref_lon,
        )

    @staticmethod
    def centered_on(latlon: np.ndarray) -> "EquirectangularProjection":
        """Build a projection centred on the centroid of ``[lat, lon]`` rows."""
        ref = latlon.mean(axis=0)
        return EquirectangularProjection(float(ref[0]), float(ref[1]))
