"""Geo-social MC²LS solver — the paper's future-work extension, realised.

Pipeline: resolve the spatial influence relationships with any base
MC²LS solver (IQT by default, so all pruning machinery carries over),
then run the greedy over the combined geo-social objective (competitive
share × interest affinity + β × word-of-mouth spread).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..solvers import IQTSolver, MC2LSProblem, Solver, SolverResult
from ..solvers.base import PhaseTimer
from .graph import SocialGraph
from .interests import InterestModel
from .objective import GeoSocialObjective, geo_social_greedy
from .propagation import CascadeSampler


@dataclass
class GeoSocialResult:
    """Outcome of a geo-social solve.

    Attributes:
        selected: Candidate ids in greedy order.
        objective: Combined geo-social objective value.
        spatial_only: What the pure MC²LS greedy would have picked.
        spatial_result: The base solver's full result (influence table,
            timings, counters).
        gains: Marginal combined-objective gains per round.
        timings: Wall-clock phases (``resolve`` / ``greedy`` / ``total``).
    """

    selected: Tuple[int, ...]
    objective: float
    spatial_only: Tuple[int, ...]
    spatial_result: SolverResult
    gains: Tuple[float, ...]
    timings: dict


class GeoSocialSolver:
    """MC²LS with social propagation and user interests.

    Args:
        graph: Social network over user ids (optional — no social term
            when absent).
        interests: Interest model (optional — no affinity weighting when
            absent).
        beta: Weight of the word-of-mouth term.
        edge_probability: IC activation probability per friendship.
        n_worlds: Monte-Carlo worlds for the spread estimate.
        base_solver: Relationship-resolution solver (defaults to IQT).
        seed: RNG seed for the cascade coin flips.
    """

    def __init__(
        self,
        graph: Optional[SocialGraph] = None,
        interests: Optional[InterestModel] = None,
        beta: float = 0.5,
        edge_probability: float = 0.1,
        n_worlds: int = 64,
        base_solver: Optional[Solver] = None,
        seed: int = 0,
    ):
        self.graph = graph
        self.interests = interests
        self.beta = beta
        self.edge_probability = edge_probability
        self.n_worlds = n_worlds
        self.base_solver = base_solver or IQTSolver()
        self.seed = seed

    def solve(self, problem: MC2LSProblem) -> GeoSocialResult:
        """Resolve relationships, then greedily maximise the combined value."""
        timer = PhaseTimer()
        with timer.mark("resolve"):
            spatial = self.base_solver.solve(problem)
        sampler = None
        if self.graph is not None and self.beta > 0:
            sampler = CascadeSampler(
                self.graph,
                probability=self.edge_probability,
                n_worlds=self.n_worlds,
                seed=self.seed,
            )
        objective = GeoSocialObjective(
            table=spatial.table,
            interests=self.interests,
            sampler=sampler,
            beta=self.beta,
        )
        cids = [c.fid for c in problem.dataset.candidates]
        with timer.mark("greedy"):
            selected, value, gains = geo_social_greedy(objective, cids, problem.k)
        return GeoSocialResult(
            selected=selected,
            objective=value,
            spatial_only=spatial.selected,
            spatial_result=spatial,
            gains=gains,
            timings=timer.finish(),
        )
