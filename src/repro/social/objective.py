"""The geo-social objective: spatial capture + interests + word of mouth.

For a candidate set ``G`` with resolved influence table ``T``:

``value(G) = Σ_{o ∈ Ω_G} share(o) · bestaff(o, G) + β · σ̂(Ω_G)``

* ``share(o) = 1/(|F_o|+1)`` — the paper's evenly-split competitive share;
* ``bestaff(o, G)`` — the user's interest affinity with the best-matching
  selected site that covers them (1.0 when no interest model is given);
* ``σ̂`` — fixed-worlds Independent Cascade spread of the captured users
  (0 when no sampler is given), weighted by ``β``.

Every term is monotone submodular in ``G`` (weighted max-coverage, and IC
spread composed with the union ``Ω_G``), so the greedy solver keeps the
``(1 − 1/e)`` guarantee of the base problem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Set, Tuple

from ..competition import InfluenceTable
from ..exceptions import SolverError
from .interests import InterestModel
from .propagation import CascadeSampler


@dataclass
class GeoSocialObjective:
    """Combined objective over a resolved influence table.

    Args:
        table: Resolved ``Ω_c`` / ``F_o`` relationships.
        interests: Optional interest model (affinity weighting).
        sampler: Optional cascade sampler (word-of-mouth term).
        beta: Weight of the social-spread term.
    """

    table: InfluenceTable
    interests: Optional[InterestModel] = None
    sampler: Optional[CascadeSampler] = None
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.beta < 0:
            raise SolverError(f"beta must be non-negative, got {self.beta}")

    # ------------------------------------------------------------------
    def covered(self, cids: Sequence[int]) -> Set[int]:
        """``Ω_G`` for the given candidate ids."""
        out: Set[int] = set()
        for cid in cids:
            out |= self.table.omega_c.get(cid, set())
        return out

    def _spatial_value(self, cids: Sequence[int]) -> float:
        terms = []
        for uid in self.covered(cids):
            share = 1.0 / (self.table.competitor_count(uid) + 1)
            if self.interests is None:
                weight = 1.0
            else:
                covering = [
                    cid for cid in cids if uid in self.table.omega_c.get(cid, ())
                ]
                weight = self.interests.best_affinity(uid, covering)
            terms.append(share * weight)
        return math.fsum(terms)

    def value(self, cids: Sequence[int]) -> float:
        """Objective value of a candidate-id selection."""
        total = self._spatial_value(cids)
        if self.sampler is not None and self.beta > 0:
            total += self.beta * self.sampler.spread(self.covered(cids))
        return total

    def marginal(self, current: Tuple[int, ...], cid: int) -> float:
        """``value(current ∪ {cid}) − value(current)``."""
        return self.value(tuple(current) + (cid,)) - self.value(current)


def geo_social_greedy(
    objective: GeoSocialObjective,
    candidate_ids: Sequence[int],
    k: int,
) -> Tuple[Tuple[int, ...], float, Tuple[float, ...]]:
    """Greedy maximisation of the combined objective.

    Returns ``(selection order, objective value, per-round gains)``.  Ties
    break toward the smallest candidate id, matching the base solvers.
    """
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    remaining = sorted(candidate_ids)
    selected: list[int] = []
    gains: list[float] = []
    current_value = 0.0
    for _ in range(k):
        best_cid = None
        best_gain = -1.0
        for cid in remaining:
            gain = objective.value(tuple(selected) + (cid,)) - current_value
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        gains.append(best_gain)
        current_value += best_gain
        remaining.remove(best_cid)
    return tuple(selected), current_value, tuple(gains)
