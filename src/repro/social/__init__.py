"""Geo-social MC²LS extension (the paper's stated future work).

Social graphs, Independent Cascade word-of-mouth propagation, user
interest models and a greedy solver over the combined geo-social
objective — all layered on top of the unmodified spatial machinery.
"""

from .graph import SocialGraph, geo_social_graph, scale_free_graph, small_world_graph
from .interests import InterestModel, random_interest_model
from .objective import GeoSocialObjective, geo_social_greedy
from .propagation import CascadeSampler, simulate_cascade
from .solver import GeoSocialResult, GeoSocialSolver

__all__ = [
    "CascadeSampler",
    "GeoSocialObjective",
    "GeoSocialResult",
    "GeoSocialSolver",
    "InterestModel",
    "SocialGraph",
    "geo_social_graph",
    "geo_social_greedy",
    "random_interest_model",
    "scale_free_graph",
    "simulate_cascade",
    "small_world_graph",
]
