"""Social graph substrate for the geo-social MC²LS extension.

The paper's conclusion names the extension target: "study extended
solution towards MC²LS in social network scenarios, incorporating social
influence and users' interests."  This module supplies the network layer:
an adjacency-set graph over user ids plus generators for the three graph
shapes the geo-social LBS literature uses — small-world (Watts–Strogatz),
scale-free (Barabási–Albert preferential attachment) and *geo-social*
graphs in which friendship probability decays with home distance (the
empirical regularity of Gowalla/Brightkite friendships).

The graph is deliberately self-contained (plain adjacency sets) with
``networkx`` adapters for interoperability.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Sequence, Set, Tuple

import numpy as np

from ..entities import MovingUser
from ..exceptions import DataError


class SocialGraph:
    """An undirected graph over user ids with set-based adjacency."""

    def __init__(self, nodes: Iterable[int] = ()):
        self._adj: Dict[int, Set[int]] = {int(n): set() for n in nodes}

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: int) -> None:
        """Ensure ``node`` exists (no-op when present)."""
        self._adj.setdefault(int(node), set())

    def add_edge(self, a: int, b: int) -> None:
        """Insert the undirected edge ``{a, b}``; self-loops are rejected."""
        if a == b:
            raise DataError(f"self-loop on node {a} is not allowed")
        self.add_node(a)
        self.add_node(b)
        self._adj[a].add(b)
        self._adj[b].add(a)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    @property
    def n_edges(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> List[int]:
        """All node ids (sorted for determinism)."""
        return sorted(self._adj)

    def neighbors(self, node: int) -> FrozenSet[int]:
        """Neighbour set of ``node`` (empty frozenset when unknown)."""
        return frozenset(self._adj.get(node, ()))

    def degree(self, node: int) -> int:
        """Degree of ``node`` (0 when unknown)."""
        return len(self._adj.get(node, ()))

    def has_edge(self, a: int, b: int) -> bool:
        """Return whether the undirected edge ``{a, b}`` exists."""
        return b in self._adj.get(a, ())

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate undirected edges once each, as ``(small, large)``."""
        for a in sorted(self._adj):
            for b in sorted(self._adj[a]):
                if a < b:
                    yield (a, b)

    def mean_degree(self) -> float:
        """Average degree across nodes."""
        if not self._adj:
            return 0.0
        return 2.0 * self.n_edges / len(self._adj)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Return the graph as a ``networkx.Graph``."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self.nodes())
        graph.add_edges_from(self.edges())
        return graph

    @staticmethod
    def from_networkx(graph) -> "SocialGraph":
        """Build from a ``networkx.Graph`` (node labels must be ints)."""
        out = SocialGraph(int(n) for n in graph.nodes)
        for a, b in graph.edges:
            if a != b:
                out.add_edge(int(a), int(b))
        return out


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def small_world_graph(
    nodes: Sequence[int], k: int = 6, rewire_p: float = 0.1, seed: int = 0
) -> SocialGraph:
    """Watts–Strogatz small-world graph over the given node ids.

    Each node connects to its ``k`` nearest ring neighbours; every edge is
    rewired to a random target with probability ``rewire_p``.
    """
    if k % 2 or k < 2:
        raise DataError(f"k must be even and >= 2, got {k}")
    n = len(nodes)
    if n <= k:
        raise DataError(f"need more than k={k} nodes, got {n}")
    rng = np.random.default_rng(seed)
    graph = SocialGraph(nodes)
    ordered = list(nodes)
    for i in range(n):
        for offset in range(1, k // 2 + 1):
            j = (i + offset) % n
            if rng.random() < rewire_p:
                target = int(rng.integers(n))
                while target == i or graph.has_edge(ordered[i], ordered[target]):
                    target = int(rng.integers(n))
                graph.add_edge(ordered[i], ordered[target])
            else:
                graph.add_edge(ordered[i], ordered[j])
    return graph


def scale_free_graph(nodes: Sequence[int], m: int = 3, seed: int = 0) -> SocialGraph:
    """Barabási–Albert preferential attachment over the given node ids."""
    n = len(nodes)
    if n <= m or m < 1:
        raise DataError(f"need more than m={m} nodes, got {n}")
    rng = np.random.default_rng(seed)
    graph = SocialGraph(nodes)
    ordered = list(nodes)
    # Seed clique over the first m+1 nodes.
    for i in range(m + 1):
        for j in range(i + 1, m + 1):
            graph.add_edge(ordered[i], ordered[j])
    # Repeated-endpoint list implements degree-proportional sampling.
    endpoints: List[int] = []
    for a, b in graph.edges():
        endpoints.extend((a, b))
    for i in range(m + 1, n):
        new = ordered[i]
        targets: Set[int] = set()
        while len(targets) < m:
            targets.add(endpoints[int(rng.integers(len(endpoints)))])
        for t in targets:
            graph.add_edge(new, t)
            endpoints.extend((new, t))
    return graph


def geo_social_graph(
    users: Sequence[MovingUser],
    mean_degree: float = 8.0,
    scale_km: float = 5.0,
    seed: int = 0,
) -> SocialGraph:
    """A geo-social graph: friendship probability decays with home distance.

    ``P(edge) ∝ exp(−d(home_i, home_j) / scale_km)``, normalised so the
    expected mean degree matches ``mean_degree``.  Homes are the users'
    position centroids.  This matches the empirical friendship-distance
    decay of the check-in datasets the paper evaluates on.
    """
    n = len(users)
    if n < 2:
        raise DataError("need at least two users")
    if mean_degree <= 0 or scale_km <= 0:
        raise DataError("mean_degree and scale_km must be positive")
    rng = np.random.default_rng(seed)
    homes = np.array([u.positions.mean(axis=0) for u in users])
    dx = homes[:, 0][:, None] - homes[:, 0][None, :]
    dy = homes[:, 1][:, None] - homes[:, 1][None, :]
    weight = np.exp(-np.sqrt(dx * dx + dy * dy) / scale_km)
    np.fill_diagonal(weight, 0.0)
    # Normalise: sum of upper-triangle probabilities == n * mean_degree / 2.
    total = weight.sum() / 2.0
    target_edges = n * mean_degree / 2.0
    factor = min(1.0, target_edges / total) if total > 0 else 0.0
    prob = np.clip(weight * factor, 0.0, 1.0)
    draws = rng.random((n, n))
    graph = SocialGraph(u.uid for u in users)
    rows, cols = np.where((draws < prob) & (np.triu(np.ones((n, n)), k=1) > 0))
    for i, j in zip(rows.tolist(), cols.tolist()):
        graph.add_edge(users[i].uid, users[j].uid)
    return graph
