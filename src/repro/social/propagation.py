"""Word-of-mouth propagation over the social graph.

The geo-social extension assumes users captured by a new facility talk:
adoption spreads through friendships under the Independent Cascade (IC)
model (Kempe–Kleinberg–Tardos).  The expected spread ``σ(S)`` of a seed
set ``S`` is estimated by Monte-Carlo simulation; it is monotone and
submodular in ``S``, which keeps the greedy guarantee of the combined
geo-social objective intact.

For greedy selection the estimator must be *consistent across calls*
(otherwise sampling noise breaks submodularity ties), so the simulator
pre-draws its edge coin-flips: a :class:`CascadeSampler` fixes ``R``
live-edge subgraphs once and evaluates every seed set against the same
worlds — making ``σ̂`` deterministic, monotone and submodular exactly.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

import numpy as np

from ..exceptions import DataError
from .graph import SocialGraph


class CascadeSampler:
    """Fixed-worlds Monte-Carlo estimator of IC spread.

    Args:
        graph: The social graph.
        probability: Uniform activation probability per edge.
        n_worlds: Number of pre-drawn live-edge subgraphs ``R``.
        seed: RNG seed for the coin flips.
    """

    def __init__(
        self,
        graph: SocialGraph,
        probability: float = 0.1,
        n_worlds: int = 64,
        seed: int = 0,
    ):
        if not 0.0 <= probability <= 1.0:
            raise DataError(f"probability must be in [0, 1], got {probability}")
        if n_worlds < 1:
            raise DataError(f"n_worlds must be >= 1, got {n_worlds}")
        self.graph = graph
        self.probability = probability
        self.n_worlds = n_worlds
        rng = np.random.default_rng(seed)
        edges = list(graph.edges())
        # Per world: the adjacency of live edges only.
        self._worlds: List[Dict[int, List[int]]] = []
        if edges:
            flips = rng.random((n_worlds, len(edges))) < probability
            for w in range(n_worlds):
                live: Dict[int, List[int]] = {}
                for keep, (a, b) in zip(flips[w].tolist(), edges):
                    if keep:
                        live.setdefault(a, []).append(b)
                        live.setdefault(b, []).append(a)
                self._worlds.append(live)
        else:
            self._worlds = [{} for _ in range(n_worlds)]
        self._cache: Dict[FrozenSet[int], float] = {}

    def spread(self, seeds: Iterable[int]) -> float:
        """Expected number of activated users (including the seeds).

        Deterministic for a given sampler: the same fixed worlds are
        reused, so ``spread`` is exactly monotone and submodular.
        """
        seed_set = frozenset(seeds)
        cached = self._cache.get(seed_set)
        if cached is not None:
            return cached
        if not seed_set:
            return 0.0
        total = 0
        for live in self._worlds:
            total += self._reachable_count(live, seed_set)
        value = total / self.n_worlds
        self._cache[seed_set] = value
        return value

    def marginal_spread(self, seeds: FrozenSet[int], extra: Iterable[int]) -> float:
        """``σ(S ∪ extra) − σ(S)`` under the same fixed worlds."""
        return self.spread(seeds | set(extra)) - self.spread(seeds)

    @staticmethod
    def _reachable_count(live: Dict[int, List[int]], seeds: FrozenSet[int]) -> int:
        visited: Set[int] = set(seeds)
        frontier: List[int] = list(seeds)
        while frontier:
            node = frontier.pop()
            for nbr in live.get(node, ()):
                if nbr not in visited:
                    visited.add(nbr)
                    frontier.append(nbr)
        return len(visited)


def simulate_cascade(
    graph: SocialGraph,
    seeds: Iterable[int],
    probability: float = 0.1,
    rng: np.random.Generator | None = None,
) -> Set[int]:
    """One stochastic IC cascade; returns the full activated set.

    Unlike :class:`CascadeSampler` this draws fresh coins per call — it is
    the simulation primitive for examples and what-if exploration, not for
    objective evaluation inside greedy.
    """
    rng = rng or np.random.default_rng()
    activated: Set[int] = set(seeds)
    frontier: List[int] = list(activated)
    while frontier:
        node = frontier.pop()
        for nbr in graph.neighbors(node):
            if nbr not in activated and rng.random() < probability:
                activated.add(nbr)
                frontier.append(nbr)
    return activated
