"""User interests — the demand-weighting half of the geo-social extension.

Each user carries an interest vector over ``n_topics`` categories; each
candidate site carries a topic profile (a restaurant, a gym, ...).  A
user's demand for a site is the cosine-style affinity between the two, so
the geo-social objective weighs captured users by how much they actually
care about the offered service.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..exceptions import DataError


class InterestModel:
    """Per-user topic interests and per-candidate topic profiles.

    Args:
        user_interests: ``uid -> (n_topics,)`` non-negative vector.
        candidate_topics: ``cid -> (n_topics,)`` non-negative vector.
    """

    def __init__(
        self,
        user_interests: Dict[int, np.ndarray],
        candidate_topics: Dict[int, np.ndarray],
    ):
        if not user_interests or not candidate_topics:
            raise DataError("interest model needs users and candidates")
        dims = {v.shape for v in user_interests.values()} | {
            v.shape for v in candidate_topics.values()
        }
        if len(dims) != 1:
            raise DataError(f"inconsistent topic dimensions: {dims}")
        self.n_topics = next(iter(dims))[0]
        self._users = {uid: self._normalise(v) for uid, v in user_interests.items()}
        self._candidates = {
            cid: self._normalise(v) for cid, v in candidate_topics.items()
        }

    @staticmethod
    def _normalise(vector: np.ndarray) -> np.ndarray:
        vector = np.asarray(vector, dtype=float)
        if vector.ndim != 1 or (vector < 0).any():
            raise DataError("interest vectors must be 1-D and non-negative")
        norm = float(np.linalg.norm(vector))
        if norm == 0:
            raise DataError("interest vectors must be non-zero")
        return vector / norm

    def affinity(self, uid: int, cid: int) -> float:
        """Cosine affinity in ``[0, 1]`` between a user and a candidate.

        Unknown users or candidates get a neutral affinity of 1.0 so the
        model degrades gracefully to the pure spatial objective.
        """
        u = self._users.get(uid)
        c = self._candidates.get(cid)
        if u is None or c is None:
            return 1.0
        return float(np.dot(u, c))

    def best_affinity(self, uid: int, cids: Sequence[int]) -> float:
        """The user's affinity with the best-matching selected site.

        A user covered by several selected sites patronises the one they
        like most, mirroring the "accesses at most one store" semantics of
        the base model.
        """
        if not cids:
            return 0.0
        return max(self.affinity(uid, cid) for cid in cids)


def random_interest_model(
    uids: Sequence[int],
    cids: Sequence[int],
    n_topics: int = 8,
    concentration: float = 0.5,
    seed: int = 0,
) -> InterestModel:
    """Dirichlet-distributed interests; low concentration = opinionated users."""
    if n_topics < 1:
        raise DataError(f"n_topics must be >= 1, got {n_topics}")
    rng = np.random.default_rng(seed)
    alpha = np.full(n_topics, concentration)
    users = {uid: rng.dirichlet(alpha) + 1e-9 for uid in uids}
    candidates = {cid: rng.dirichlet(alpha) + 1e-9 for cid in cids}
    return InterestModel(users, candidates)
