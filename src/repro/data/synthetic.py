"""Synthetic dataset generators calibrated to the paper's two datasets.

The paper evaluates on Gowalla *California* (C) and Brightkite *New York*
(N) check-ins.  Those raw dumps are not redistributable here, so these
generators produce populations matching the distributional properties the
paper's analysis actually depends on:

========================  ================  ================
property                  California (C)    New York (N)
========================  ================  ================
users                     10,162            2,725
positions / user (mean)   ≈ 37.5            ≈ 12.5
user-MBR : region area    ≈ 0.085           ≈ 0.029
spatial distribution      uniform           skewed / clustered
facility placement        uniform POIs      clustered, overlapping POIs
========================  ================  ================

Scale defaults are reduced (the harness runs pure Python on a laptop);
pass ``n_users`` to change.  Each generator returns a
:class:`~repro.entities.SpatialDataset` plus enough POIs to let the sweep
benchmarks resample candidate/facility sets without regenerating users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..entities import MovingUser, SpatialDataset, candidate, existing
from ..exceptions import DataError

# Expected range (max - min) of n standard-normal draws, E[R_n] ~ 2 * E[max].
# Used to back out the per-user position spread from a target MBR size.
def _expected_normal_range(n: int) -> float:
    if n < 2:
        return 1.0
    # Blom-style approximation of E[max of n std normals], doubled.
    return 2.0 * math.sqrt(2.0 * math.log(n)) * (1.0 - math.log(math.log(n) + 1e-9) / (4.0 * math.log(n)))


@dataclass(frozen=True)
class SyntheticSpec:
    """Everything a generator needs to build one population.

    Attributes:
        n_users: Number of moving users.
        mean_positions: Mean positions per user (min is always 2 — the
            paper trims single-position users).
        side: Region side length in km.
        mbr_area_ratio: Target mean ratio of user-MBR area to region area.
        n_clusters: 0 for a uniform population; otherwise the number of
            activity hot spots (skewed populations).
        cluster_sigma_fraction: Hot-spot radius as a fraction of ``side``.
        n_pois: Points of interest available for facility sampling.
    """

    n_users: int
    mean_positions: float
    side: float
    mbr_area_ratio: float
    n_clusters: int
    cluster_sigma_fraction: float
    n_pois: int
    venues_per_user: float = 4.0
    venue_jitter: float = 0.15

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise DataError(f"n_users must be >= 1, got {self.n_users}")
        if self.mean_positions < 2:
            raise DataError("mean_positions must be >= 2 (single-point users are trimmed)")
        if not 0 < self.mbr_area_ratio < 1:
            raise DataError(f"mbr_area_ratio must be in (0, 1), got {self.mbr_area_ratio}")
        if self.side <= 0:
            raise DataError(f"side must be positive, got {self.side}")
        if self.venues_per_user < 1:
            raise DataError("venues_per_user must be >= 1")
        if self.venue_jitter < 0:
            raise DataError("venue_jitter must be non-negative")


@dataclass(frozen=True)
class SyntheticPopulation:
    """A generated user population plus its POI pool."""

    users: Tuple[MovingUser, ...]
    pois: np.ndarray  # (n_pois, 2)
    spec: SyntheticSpec

    def dataset(
        self,
        n_candidates: int,
        n_facilities: int,
        seed: int = 0,
        name: str = "synthetic",
    ) -> SpatialDataset:
        """Sample disjoint candidate and facility sets from the POI pool."""
        needed = n_candidates + n_facilities
        if needed > self.pois.shape[0]:
            raise DataError(
                f"need {needed} POIs but the pool holds {self.pois.shape[0]}"
            )
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.pois.shape[0], size=needed, replace=False)
        cands = [
            candidate(i, float(self.pois[j, 0]), float(self.pois[j, 1]))
            for i, j in enumerate(idx[:n_candidates])
        ]
        facs = [
            existing(i, float(self.pois[j, 0]), float(self.pois[j, 1]))
            for i, j in enumerate(idx[n_candidates:])
        ]
        return SpatialDataset.build(list(self.users), facs, cands, name=name)


def _draw_position_counts(
    rng: np.random.Generator, n_users: int, mean_positions: float
) -> np.ndarray:
    """Heavy-tailed per-user position counts with the requested mean.

    Log-normal counts reproduce the check-in reality: most users record a
    handful of positions, a tail records hundreds — which is what makes the
    paper's "effect of r" protocol (keep users with > 30 positions) viable.
    """
    sigma = 0.75
    mu = math.log(mean_positions) - sigma**2 / 2.0
    counts = np.maximum(2, np.round(rng.lognormal(mu, sigma, size=n_users))).astype(int)
    return counts


def generate_population(spec: SyntheticSpec, seed: int = 0) -> SyntheticPopulation:
    """Generate a user population and POI pool from a spec."""
    rng = np.random.default_rng(seed)
    side = spec.side
    counts = _draw_position_counts(rng, spec.n_users, spec.mean_positions)

    # Back out the venue spread from the target MBR area ratio: the user
    # MBR is driven by the spread of the user's favourite venues (check-in
    # data revisits a handful of spots), so the expected range of
    # ``venues_per_user`` Gaussian draws must match the target MBR side.
    target_mbr_side = math.sqrt(spec.mbr_area_ratio) * side
    mean_venues = max(2, int(round(spec.venues_per_user)))
    spread = target_mbr_side / _expected_normal_range(mean_venues)

    if spec.n_clusters > 0:
        hotspots = rng.uniform(0.15 * side, 0.85 * side, size=(spec.n_clusters, 2))
        weights = rng.dirichlet(np.full(spec.n_clusters, 1.2))
        cluster_sigma = spec.cluster_sigma_fraction * side

        def draw_centers(n: int) -> np.ndarray:
            which = rng.choice(spec.n_clusters, size=n, p=weights)
            return hotspots[which] + rng.normal(0.0, cluster_sigma, size=(n, 2))

    else:

        def draw_centers(n: int) -> np.ndarray:
            return rng.uniform(0.05 * side, 0.95 * side, size=(n, 2))

    centers = np.clip(draw_centers(spec.n_users), 0.0, side)
    users: List[MovingUser] = []
    for uid in range(spec.n_users):
        r = int(counts[uid])
        # Check-in realism: each user frequents a few favourite venues
        # (home, work, hangouts) with a skewed preference, and every
        # recorded position is a small jitter around one of them.  This is
        # what makes position-count pruning (the IS rule) meaningful — iid
        # position clouds never concentrate the way real check-ins do.
        n_venues = max(1, int(rng.poisson(spec.venues_per_user)))
        venues = rng.normal(centers[uid], spread, size=(n_venues, 2))
        preferences = rng.dirichlet(np.full(n_venues, 0.8))
        visit = rng.choice(n_venues, size=r, p=preferences)
        pos = venues[visit] + rng.normal(0.0, spec.venue_jitter, size=(r, 2))
        users.append(MovingUser(uid, np.clip(pos, 0.0, side)))

    # POIs follow the same spatial law as users — facilities gather where
    # customers appear (the paper's observation on dataset N).
    pois = np.clip(draw_centers(spec.n_pois), 0.0, side)
    return SyntheticPopulation(tuple(users), pois, spec)


# ----------------------------------------------------------------------
# The two paper-calibrated populations
# ----------------------------------------------------------------------
def california_spec(n_users: int = 2000, side: float = 200.0) -> SyntheticSpec:
    """Spec matching Gowalla California's distributional fingerprint."""
    return SyntheticSpec(
        n_users=n_users,
        mean_positions=37.5,
        side=side,
        mbr_area_ratio=0.085,
        n_clusters=0,
        cluster_sigma_fraction=0.0,
        n_pois=2000,
        venues_per_user=6.0,
        venue_jitter=0.2,
    )


def new_york_spec(n_users: int = 550, side: float = 50.0) -> SyntheticSpec:
    """Spec matching Brightkite New York's distributional fingerprint."""
    return SyntheticSpec(
        n_users=n_users,
        mean_positions=12.5,
        side=side,
        mbr_area_ratio=0.029,
        n_clusters=4,
        cluster_sigma_fraction=0.045,
        n_pois=2000,
        venues_per_user=3.0,
        venue_jitter=0.1,
    )


def california_like(
    n_users: int = 2000,
    n_candidates: int = 100,
    n_facilities: int = 200,
    seed: int = 0,
    side: float = 200.0,
) -> SpatialDataset:
    """A ready-to-solve California-like (uniform) dataset."""
    population = generate_population(california_spec(n_users, side), seed=seed)
    return population.dataset(n_candidates, n_facilities, seed=seed + 1, name="C-like")


def new_york_like(
    n_users: int = 550,
    n_candidates: int = 100,
    n_facilities: int = 200,
    seed: int = 0,
    side: float = 50.0,
) -> SpatialDataset:
    """A ready-to-solve New-York-like (skewed/clustered) dataset."""
    population = generate_population(new_york_spec(n_users, side), seed=seed)
    return population.dataset(n_candidates, n_facilities, seed=seed + 1, name="N-like")
