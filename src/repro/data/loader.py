"""Loader for SNAP-format check-in files (Brightkite / Gowalla).

The paper's real datasets come from the SNAP location-based social network
dumps.  Each line of ``*_totalCheckins.txt`` is::

    [user id] \t [check-in time ISO8601] \t [latitude] \t [longitude] \t [location id]

This loader parses such files, projects positions into a local km-space,
trims users below a minimum position count (the paper removes users with
one position), and can restrict to a bounding box (e.g. the New York
metropolitan area).  Distinct location ids become the POI pool for
candidate/facility sampling, mirroring the paper's "randomly choose
distinct locations from real points of interest".
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..entities import MovingUser, SpatialDataset, candidate, existing
from ..exceptions import DataError
from ..geo import EquirectangularProjection


@dataclass(frozen=True)
class LatLonBox:
    """A latitude/longitude bounding box filter."""

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat or self.min_lon > self.max_lon:
            raise DataError("invalid lat/lon box")

    def contains(self, lat: float, lon: float) -> bool:
        """Return ``True`` when the coordinate lies inside the box."""
        return (
            self.min_lat <= lat <= self.max_lat
            and self.min_lon <= lon <= self.max_lon
        )


NEW_YORK_BOX = LatLonBox(40.45, -74.30, 41.00, -73.60)
"""The New York metro bounding box used to carve dataset N."""

CALIFORNIA_BOX = LatLonBox(32.30, -124.50, 42.10, -114.10)
"""The California bounding box used to carve dataset C."""


@dataclass
class CheckinData:
    """Parsed check-ins: per-user positions (km-space) and the POI pool."""

    users: Tuple[MovingUser, ...]
    pois: np.ndarray
    projection: EquirectangularProjection

    def dataset(
        self,
        n_candidates: int,
        n_facilities: int,
        seed: int = 0,
        name: str = "checkins",
    ) -> SpatialDataset:
        """Sample disjoint candidates and facilities from the POI pool."""
        needed = n_candidates + n_facilities
        if needed > self.pois.shape[0]:
            raise DataError(f"need {needed} POIs, pool holds {self.pois.shape[0]}")
        rng = np.random.default_rng(seed)
        idx = rng.choice(self.pois.shape[0], size=needed, replace=False)
        cands = [
            candidate(i, float(self.pois[j, 0]), float(self.pois[j, 1]))
            for i, j in enumerate(idx[:n_candidates])
        ]
        facs = [
            existing(i, float(self.pois[j, 0]), float(self.pois[j, 1]))
            for i, j in enumerate(idx[n_candidates:])
        ]
        return SpatialDataset.build(list(self.users), facs, cands, name=name)


def load_checkins(
    path: str | Path,
    bbox: Optional[LatLonBox] = None,
    min_positions: int = 2,
    max_users: Optional[int] = None,
) -> CheckinData:
    """Parse a SNAP check-in file into km-space moving users.

    Args:
        path: The ``*_totalCheckins.txt`` file.
        bbox: Optional lat/lon filter applied per check-in.
        min_positions: Users with fewer surviving positions are dropped
            (the paper uses 2).
        max_users: Optional cap, keeping the users with the most check-ins
            first (deterministic).

    Raises:
        DataError: On unparseable rows or when nothing survives filtering.
    """
    path = Path(path)
    if not path.exists():
        raise DataError(f"check-in file not found: {path}")
    raw_positions: Dict[int, List[Tuple[float, float]]] = {}
    poi_latlon: Dict[str, Tuple[float, float]] = {}
    with open(path) as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) != 5:
                raise DataError(f"{path}:{line_no}: expected 5 fields, got {len(parts)}")
            try:
                uid = int(parts[0])
                lat = float(parts[2])
                lon = float(parts[3])
            except ValueError as exc:
                raise DataError(f"{path}:{line_no}: {exc}") from exc
            if lat == 0.0 and lon == 0.0:
                continue  # SNAP dumps use (0, 0) for missing fixes
            if bbox is not None and not bbox.contains(lat, lon):
                continue
            raw_positions.setdefault(uid, []).append((lat, lon))
            poi_latlon.setdefault(parts[4], (lat, lon))
    survivors = {
        uid: pos for uid, pos in raw_positions.items() if len(pos) >= min_positions
    }
    if not survivors:
        raise DataError(f"no users with >= {min_positions} positions in {path}")
    if max_users is not None:
        keep = sorted(survivors, key=lambda uid: -len(survivors[uid]))[:max_users]
        survivors = {uid: survivors[uid] for uid in keep}

    all_latlon = np.array(
        [p for positions in survivors.values() for p in positions], dtype=float
    )
    projection = EquirectangularProjection.centered_on(all_latlon)
    users = []
    for new_uid, uid in enumerate(sorted(survivors)):
        latlon = np.array(survivors[uid], dtype=float)
        users.append(MovingUser(new_uid, projection.to_xy_array(latlon)))
    pois = projection.to_xy_array(np.array(list(poi_latlon.values()), dtype=float))
    return CheckinData(tuple(users), pois, projection)
