"""Dataset and result (de)serialisation.

Three formats:

* **NPZ** — compact binary round-trip of a full :class:`SpatialDataset`
  (users + facilities + candidates), the native interchange format.
* **JSON** — human-readable export of a solver result (selection, gains,
  objective, timings, work counters) for downstream tooling.
* **SNAP check-in text** — :func:`write_checkin_file` emits a synthetic
  file in the Brightkite/Gowalla dump format, so the whole ingestion
  pipeline (:func:`repro.data.loader.load_checkins`) can be exercised —
  and demonstrated — without the real, non-redistributable datasets.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List

import numpy as np

from ..entities import MovingUser, SpatialDataset, candidate, existing
from ..exceptions import DataError
from ..solvers import SolverResult


# ----------------------------------------------------------------------
# NPZ dataset round-trip
# ----------------------------------------------------------------------
def save_dataset_npz(dataset: SpatialDataset, path: str | Path) -> None:
    """Write a dataset to ``path`` as a compressed NPZ archive."""
    positions = np.vstack([u.positions for u in dataset.users])
    uid_of_row = np.repeat(
        np.array([u.uid for u in dataset.users], dtype=np.int64),
        np.array([u.r for u in dataset.users], dtype=np.int64),
    )
    np.savez_compressed(
        path,
        positions=positions,
        uid_of_row=uid_of_row,
        facility_ids=np.array([f.fid for f in dataset.facilities], dtype=np.int64),
        facility_xy=np.array(
            [[f.x, f.y] for f in dataset.facilities], dtype=float
        ).reshape(-1, 2),
        candidate_ids=np.array([c.fid for c in dataset.candidates], dtype=np.int64),
        candidate_xy=np.array(
            [[c.x, c.y] for c in dataset.candidates], dtype=float
        ).reshape(-1, 2),
        name=np.array(dataset.name),
    )


def load_dataset_npz(path: str | Path) -> SpatialDataset:
    """Read a dataset previously written by :func:`save_dataset_npz`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"dataset file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        uid_of_row = data["uid_of_row"]
        positions = data["positions"]
        users: List[MovingUser] = []
        # Rows were written grouped per user, so one stable pass suffices.
        order = np.argsort(uid_of_row, kind="stable")
        uid_sorted = uid_of_row[order]
        pos_sorted = positions[order]
        if uid_sorted.size:
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(uid_sorted) != 0) + 1)
            )
            ends = np.concatenate((starts[1:], [uid_sorted.size]))
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                users.append(MovingUser(int(uid_sorted[lo]), pos_sorted[lo:hi]))
        facilities = [
            existing(int(fid), float(xy[0]), float(xy[1]))
            for fid, xy in zip(data["facility_ids"], data["facility_xy"])
        ]
        candidates = [
            candidate(int(cid), float(xy[0]), float(xy[1]))
            for cid, xy in zip(data["candidate_ids"], data["candidate_xy"])
        ]
        name = str(data["name"])
    return SpatialDataset.build(users, facilities, candidates, name=name)


# ----------------------------------------------------------------------
# JSON result export
# ----------------------------------------------------------------------
def result_to_dict(result: SolverResult) -> Dict:
    """Flatten a solver result into a JSON-serialisable dict."""
    return {
        "selected": list(result.selected),
        "objective": result.objective,
        "gains": list(result.gains),
        "timings": dict(result.timings),
        "evaluations": result.evaluation.total_evaluations,
        "positions_touched": result.evaluation.positions_touched,
        "coverage": {
            str(cid): sorted(users)
            for cid, users in result.table.omega_c.items()
            if cid in result.selected
        },
    }


def save_result_json(result: SolverResult, path: str | Path) -> None:
    """Write a solver result as pretty-printed JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result), indent=2) + "\n")


def load_result_json(path: str | Path) -> Dict:
    """Read a result dict previously written by :func:`save_result_json`."""
    path = Path(path)
    if not path.exists():
        raise DataError(f"result file not found: {path}")
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# Synthetic SNAP check-in files
# ----------------------------------------------------------------------
def write_checkin_file(
    path: str | Path,
    n_users: int = 200,
    seed: int = 0,
    clustered: bool = False,
    center_lat: float = 40.75,
    center_lon: float = -73.95,
) -> int:
    """Write a synthetic check-in dump in the SNAP 5-column format.

    Users revisit a handful of favourite venues around a home point (the
    same behavioural model as :mod:`repro.data.synthetic`); ``clustered``
    concentrates homes around a few hot spots.  Returns the number of
    check-in rows written.
    """
    if n_users < 1:
        raise DataError(f"n_users must be >= 1, got {n_users}")
    rng = np.random.default_rng(seed)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    center = np.array([center_lat, center_lon])
    hotspots = (
        center + rng.normal(0, 0.08, size=(3, 2)) if clustered else None
    )
    lines: List[str] = []
    poi_counter = 0
    for uid in range(n_users):
        if hotspots is not None:
            home = hotspots[rng.integers(len(hotspots))] + rng.normal(0, 0.01, 2)
        else:
            home = center + rng.normal(0, 0.06, size=2)
        n_venues = max(1, int(rng.poisson(3)))
        venues = home + rng.normal(0, 0.02, size=(n_venues, 2))
        venue_ids = [f"poi_{poi_counter + i}" for i in range(n_venues)]
        poi_counter += n_venues
        preferences = rng.dirichlet(np.full(n_venues, 0.8))
        for _ in range(int(rng.integers(2, 25))):
            which = int(rng.choice(n_venues, p=preferences))
            lat, lon = venues[which] + rng.normal(0, 0.001, size=2)
            stamp = (
                f"2010-{int(rng.integers(1, 13)):02d}-"
                f"{int(rng.integers(1, 29)):02d}T"
                f"{int(rng.integers(0, 24)):02d}:00:00Z"
            )
            lines.append(
                f"{uid}\t{stamp}\t{lat:.6f}\t{lon:.6f}\t{venue_ids[which]}"
            )
    path.write_text("\n".join(lines) + "\n")
    return len(lines)
