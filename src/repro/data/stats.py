"""Dataset statistics — the quantities the paper uses to characterise C vs N.

Fig. 9 and the surrounding prose explain pruning behaviour through three
numbers: positions per km², the user-MBR-to-region area ratio, and the
skewness of the spatial distribution.  This module computes all of them so
the benchmark harness can print the same characterisation table for the
synthetic populations and verify the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..entities import SpatialDataset


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of one dataset.

    Attributes:
        n_users: User count.
        n_positions: Total recorded positions.
        mean_positions_per_user: Mean ``r``.
        max_positions_per_user: ``r_max`` (drives NIR).
        positions_per_km2: Position density over the region.
        mean_mbr_area_ratio: Mean user-MBR area / region area — the
            overlap driver the paper reports (0.085 in C, 0.029 in N).
        gini_cell_occupancy: Gini coefficient of per-grid-cell position
            counts: ~0 for uniform spreads, →1 for heavy clustering.
    """

    name: str
    n_users: int
    n_positions: int
    mean_positions_per_user: float
    max_positions_per_user: int
    positions_per_km2: float
    mean_mbr_area_ratio: float
    gini_cell_occupancy: float

    def as_row(self) -> dict:
        """Flat dict for benchmark reporting."""
        return {
            "dataset": self.name,
            "users": self.n_users,
            "positions": self.n_positions,
            "r_mean": round(self.mean_positions_per_user, 2),
            "r_max": self.max_positions_per_user,
            "pos_per_km2": round(self.positions_per_km2, 3),
            "mbr_ratio": round(self.mean_mbr_area_ratio, 4),
            "gini": round(self.gini_cell_occupancy, 3),
        }


def _gini(counts: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector."""
    if counts.size == 0:
        return 0.0
    sorted_counts = np.sort(counts.astype(float))
    total = sorted_counts.sum()
    if total <= 0:
        return 0.0
    n = sorted_counts.size
    cum = np.cumsum(sorted_counts)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def compute_stats(dataset: SpatialDataset, grid_cells: int = 32) -> DatasetStats:
    """Compute the characterisation statistics of a dataset.

    ``grid_cells`` controls the occupancy grid used for the Gini skewness
    measure (``grid_cells x grid_cells`` over the region).

    Degenerate populations (no users, hence no positions) produce defined
    zeros for every ratio rather than NaNs or a ``vstack`` crash — the
    cost model consumes these numbers as features and must be able to
    score an empty snapshot.
    """
    # The empty guard runs before any region access: a population with no
    # users may not have a well-defined region at all.
    if not dataset.users:
        return DatasetStats(
            name=dataset.name,
            n_users=0,
            n_positions=0,
            mean_positions_per_user=0.0,
            max_positions_per_user=0,
            positions_per_km2=0.0,
            mean_mbr_area_ratio=0.0,
            gini_cell_occupancy=0.0,
        )
    region = dataset.region
    region_area = max(region.area, 1e-12)
    counts_r = np.array([u.r for u in dataset.users])
    mbr_ratios = np.array(
        [u.mbr.area / region_area for u in dataset.users], dtype=float
    )

    all_pos = np.vstack([u.positions for u in dataset.users])
    ix = np.clip(
        ((all_pos[:, 0] - region.min_x) / max(region.width, 1e-12) * grid_cells).astype(int),
        0,
        grid_cells - 1,
    )
    iy = np.clip(
        ((all_pos[:, 1] - region.min_y) / max(region.height, 1e-12) * grid_cells).astype(int),
        0,
        grid_cells - 1,
    )
    occupancy = np.bincount(ix * grid_cells + iy, minlength=grid_cells * grid_cells)

    return DatasetStats(
        name=dataset.name,
        n_users=len(dataset.users),
        n_positions=int(counts_r.sum()),
        mean_positions_per_user=float(counts_r.mean()),
        max_positions_per_user=int(counts_r.max()),
        positions_per_km2=float(counts_r.sum()) / region_area,
        mean_mbr_area_ratio=float(mbr_ratios.mean()),
        gini_cell_occupancy=_gini(occupancy),
    )


def cost_features(dataset: SpatialDataset) -> dict:
    """The workload-independent features the tuning cost model consumes.

    Returns a flat dict of defined-everywhere numbers (zeros for empty
    datasets and zero-candidate snapshots — never a division by zero):

    * ``n_users`` / ``n_positions`` / ``n_candidates`` / ``n_facilities``
      — raw population sizes.
    * ``r_mean`` — mean positions per user (0 when there are no users).
    * ``verify_pairs`` — ``n_positions × n_candidates``, the worst-case
      position-candidate verification work of one resolve.
    * ``candidate_fan_in`` — ``verify_pairs / n_users``: mean per-user
      candidate verification fan-in (0 when there are no users).
    * ``select_cells`` — ``n_users × n_candidates``, the dense size of
      one coverage matrix (bounds one greedy round's work).
    """
    n_users = len(dataset.users)
    n_candidates = len(dataset.candidates)
    n_facilities = len(dataset.facilities)
    n_positions = sum(u.r for u in dataset.users)
    verify_pairs = float(n_positions * n_candidates)
    return {
        "n_users": n_users,
        "n_positions": n_positions,
        "n_candidates": n_candidates,
        "n_facilities": n_facilities,
        "r_mean": n_positions / n_users if n_users else 0.0,
        "verify_pairs": verify_pairs,
        "candidate_fan_in": verify_pairs / n_users if n_users else 0.0,
        "select_cells": float(n_users * n_candidates),
    }


def mbr_overlap_fraction(dataset: SpatialDataset, sample: int = 200, seed: int = 0) -> float:
    """Fraction of sampled user-MBR pairs that overlap.

    The paper motivates user-pruning hardness with "highly overlapped
    MBRs"; this measures exactly that on a random pair sample.
    """
    users = dataset.users
    if len(users) < 2:
        return 0.0
    rng = np.random.default_rng(seed)
    n = min(sample, len(users) * (len(users) - 1) // 2)
    hits = 0
    for _ in range(n):
        i, j = rng.choice(len(users), size=2, replace=False)
        if users[i].mbr.intersects(users[j].mbr):
            hits += 1
    return hits / n if n else 0.0
