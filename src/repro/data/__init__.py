"""Datasets: calibrated synthetic generators, SNAP loaders, statistics."""

from .loader import (
    CALIFORNIA_BOX,
    NEW_YORK_BOX,
    CheckinData,
    LatLonBox,
    load_checkins,
)
from .io import (
    load_dataset_npz,
    load_result_json,
    result_to_dict,
    save_dataset_npz,
    save_result_json,
    write_checkin_file,
)
from .stats import DatasetStats, compute_stats, cost_features, mbr_overlap_fraction
from .synthetic import (
    SyntheticPopulation,
    SyntheticSpec,
    california_like,
    california_spec,
    generate_population,
    new_york_like,
    new_york_spec,
)

__all__ = [
    "CALIFORNIA_BOX",
    "CheckinData",
    "DatasetStats",
    "LatLonBox",
    "NEW_YORK_BOX",
    "SyntheticPopulation",
    "SyntheticSpec",
    "california_like",
    "california_spec",
    "compute_stats",
    "cost_features",
    "generate_population",
    "load_checkins",
    "load_dataset_npz",
    "load_result_json",
    "result_to_dict",
    "save_dataset_npz",
    "save_result_json",
    "write_checkin_file",
    "mbr_overlap_fraction",
    "new_york_like",
    "new_york_spec",
]
