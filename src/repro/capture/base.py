"""The set-aware customer-choice capture contract.

The paper's evenly-split model makes one strong assumption: the share of
a user a candidate captures is independent of *which other candidates*
were selected — ``w_o = 1/(|F_o|+1)`` depends only on the user's
competitor context.  Every fast path in this repository (the CSR
:class:`~repro.solvers.CoverageMatrix` kernel, CELF, the sharded
distinct-weight merge) exploits exactly that independence.

Richer customer-choice models break it: under an MNL choice model a
second nearby selected site *cannibalises* the first one's capture, and
under simulation-based capture a user's choice is only defined relative
to the whole offer set.  :class:`CaptureModel` is the strategy contract
that makes the competition layer pluggable across both regimes:

* ``set_independent`` models expose a per-user weight
  (:attr:`CaptureModel.weight_model`) and keep every existing kernel —
  evenly-split is just the degenerate case, adapted through
  :class:`SetIndependentCapture` with **bit-identical** outputs.
* set-aware models expose a vectorized marginal-gain oracle
  (:meth:`CaptureModel.make_state`) that the CELF loop in
  :mod:`repro.capture.select` drives; the documented
  :attr:`CaptureModel.submodular` flag says whether lazy (CELF)
  evaluation — and with it the greedy ``(1 − 1/e)`` guarantee — is
  sound.

Every model also implements the *scalar reference API*
(:meth:`CaptureModel.capture_weights` / :meth:`CaptureModel.objective` /
:meth:`CaptureModel.gain`), deliberately slow and set-based: it is the
differential-test oracle the vectorized paths are checked against,
mirroring how :func:`~repro.solvers.greedy_select` anchors the CSR
kernel.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Sequence, Set, Tuple

import numpy as np

from ..competition import CompetitionModel, InfluenceTable, covered_users
from ..exceptions import CaptureError


class CaptureState(ABC):
    """Mutable per-selection oracle state of a set-aware capture model.

    Produced by :meth:`CaptureModel.make_state`; consumed by the CELF
    loop in :func:`repro.capture.select.capture_select`.  Candidates are
    addressed by their *index* ``j`` into :attr:`candidate_ids`
    (ascending-cid order) so gains vectorize over CSR segments.
    """

    #: Selectable candidates in ascending-id order.
    candidate_ids: Tuple[int, ...]

    @abstractmethod
    def gain(self, j: int) -> float:
        """Marginal objective gain of adding candidate index ``j`` now.

        Defined only for candidates not yet :meth:`add`-ed — the
        selection loop never queries a selected index, and states (e.g.
        MNL's utility masses) need not model re-adding as a no-op."""

    @abstractmethod
    def add(self, j: int) -> None:
        """Commit candidate index ``j`` to the selection."""


class CaptureModel(ABC):
    """Maps (user, selected set, competitor context) to captured demand.

    Class attributes document the model's structure for the execution
    layers:

    Attributes:
        name: Registry / display name.
        submodular: The objective ``Σ_o capture(o, G)`` is monotone
            submodular in ``G``.  CELF lazy evaluation is sound and
            greedy carries the ``(1 − 1/e)`` guarantee.  All models
            shipped here are exactly submodular; a future
            non-submodular model must set this ``False`` so selection
            falls back to full per-round rescans.
        set_independent: ``capture(o, G)`` is ``weight(o)·[o covered by
            G]`` — the weight does not depend on ``G``.  Such models run
            through the existing one-pass ``reduceat``-screened CSR
            kernel via :attr:`weight_model` (and the sharded
            distinct-weight merge remains exact for the evenly-split
            case); set-aware models run the CELF loop over
            :meth:`make_state`.
    """

    name: str = "capture"
    submodular: bool = True
    set_independent: bool = False

    # ------------------------------------------------------------------
    @abstractmethod
    def cache_key(self) -> Tuple[object, ...]:
        """Hashable identity: model id plus every objective-relevant
        parameter (and the world seed for sampled models).  Joins the
        serving engine's ``(snapshot, solver, PF, τ)`` cache keys, so two
        queries share cached work only when their capture semantics are
        identical."""

    # ------------------------------------------------------------------
    # Scalar reference API (the differential-test oracle).
    # ------------------------------------------------------------------
    @abstractmethod
    def capture_weights(
        self,
        table: InfluenceTable,
        user_ids: Sequence[int],
        selected: Set[int],
    ) -> np.ndarray:
        """Per-user captured demand under selection ``G`` (float64).

        ``out[i]`` is the share of user ``user_ids[i]`` that the selected
        set captures — 0 for users no selected candidate covers.  This is
        the contract's ground truth; vectorized states must agree with it
        (bit-identically for set-independent models, to numerical noise
        for set-aware ones)."""

    def objective(self, table: InfluenceTable, selected: Iterable[int]) -> float:
        """Total captured demand ``Σ_o capture(o, G)`` (correctly-rounded
        ``fsum``, hence independent of user enumeration order)."""
        sel = set(int(c) for c in selected)
        uids = sorted(covered_users(table, sel))
        if not uids:
            return 0.0
        return math.fsum(self.capture_weights(table, uids, sel).tolist())

    def gain(self, table: InfluenceTable, selected: Iterable[int], cid: int) -> float:
        """Marginal objective gain of adding ``cid`` to ``G`` (scalar)."""
        sel = set(int(c) for c in selected)
        return self.objective(table, sel | {int(cid)}) - self.objective(table, sel)

    # ------------------------------------------------------------------
    # Vectorized execution hooks.
    # ------------------------------------------------------------------
    def make_state(
        self, table: InfluenceTable, candidate_ids: Sequence[int]
    ) -> CaptureState:
        """A fresh vectorized oracle over ``candidate_ids`` (set-aware
        models override; set-independent models never need one)."""
        raise CaptureError(
            f"capture model {self.name!r} is set-independent; selection "
            "routes through its weight_model and the CSR kernel"
        )

    @property
    def weight_model(self) -> CompetitionModel:
        """The per-user weight model of a set-independent capture model
        (feeds :class:`~repro.solvers.CoverageMatrix` densification)."""
        raise CaptureError(
            f"capture model {self.name!r} is set-aware; it has no "
            "selection-independent per-user weights"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.cache_key()!r})"


class SetIndependentCapture(CaptureModel):
    """Adapter presenting a legacy :class:`CompetitionModel` as capture.

    The wrapped model's ``user_share`` supplies the per-user weight;
    capture is ``share(o)`` when ``G`` covers ``o`` and 0 otherwise.
    Selection through :func:`~repro.solvers.run_selection` routes to the
    unchanged scalar/CSR kernels with :attr:`weight_model`, which is what
    makes evenly-split through this contract **bit-identical** to the
    legacy path (the differential suite pins it across every solver and
    kernel knob).
    """

    set_independent = True
    submodular = True

    def __init__(
        self,
        weight_model: CompetitionModel,
        name: str,
        key: Tuple[object, ...],
    ) -> None:
        self._model = weight_model
        self.name = name
        self._key = tuple(key)

    @property
    def weight_model(self) -> CompetitionModel:
        return self._model

    def cache_key(self) -> Tuple[object, ...]:
        return self._key

    def capture_weights(
        self,
        table: InfluenceTable,
        user_ids: Sequence[int],
        selected: Set[int],
    ) -> np.ndarray:
        covered = covered_users(table, selected)
        return np.fromiter(
            (
                self._model.user_share(table, int(uid)) if uid in covered else 0.0
                for uid in user_ids
            ),
            dtype=np.float64,
            count=len(user_ids),
        )

    def objective(self, table: InfluenceTable, selected: Iterable[int]) -> float:
        # group_value fsums the identical weight multiset — bit-equal.
        return self._model.group_value(table, selected)

    def gain(self, table: InfluenceTable, selected: Iterable[int], cid: int) -> float:
        excluded = covered_users(table, selected)
        return self._model.candidate_value(table, int(cid), excluded=excluded)
