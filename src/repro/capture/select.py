"""Greedy selection over a set-aware capture oracle.

The CSR kernel's one-pass ``reduceat`` screen is only valid when a
user's weight is independent of the selected set; set-aware models get
this loop instead: CELF lazy evaluation over the model's *vectorized*
marginal-gain state (:meth:`~repro.capture.CaptureModel.make_state`) —
one numpy pass over a candidate's CSR segment per refresh.  Models with
``submodular = False`` would make stale CELF bounds unsound, so they
fall back to a full per-round rescan.

Ties break toward the smallest candidate id, matching the scalar and
CSR evenly-split paths, so selections stay reproducible across
execution modes.

``fast=False`` replaces the vectorized state with the model's scalar
reference oracle (:meth:`~repro.capture.CaptureModel.gain`, recomputed
every round) — deliberately slow, kept as the differential-test anchor
the property suite compares the fast path against.
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Set, Tuple

from ..competition import InfluenceTable
from ..exceptions import SolverError
from ..solvers.selection import CancelCheck, GreedyOutcome
from .base import CaptureModel


def _scalar_capture_greedy(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CaptureModel,
    cancel_check: CancelCheck,
) -> GreedyOutcome:
    """Recompute-every-round greedy over the scalar reference oracle."""
    remaining = sorted(int(c) for c in candidate_ids)
    selected: List[int] = []
    gains: List[float] = []
    evaluations = 0
    chosen: Set[int] = set()
    for _ in range(k):
        if cancel_check is not None:
            cancel_check()
        best_cid = None
        best_gain = -1.0
        for cid in remaining:
            gain = model.gain(table, chosen, cid)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        gains.append(best_gain)
        chosen.add(best_cid)
        remaining.remove(best_cid)
    return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)


def capture_select(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    model: CaptureModel,
    fast: bool = True,
    cancel_check: CancelCheck = None,
) -> GreedyOutcome:
    """Greedy ``k``-selection under a set-aware capture model.

    CELF over the vectorized oracle when the model declares
    submodularity; full per-round rescans otherwise.  ``cancel_check``
    runs at the top of every greedy round (the serving engine threads
    its deadline probe here, like every other selection path).
    """
    cids = tuple(sorted(set(int(c) for c in candidate_ids)))
    if k < 1 or k > len(cids):
        raise SolverError(f"k={k} infeasible for {len(cids)} candidates")
    table.validate_against(set(cids))
    if not fast:
        return _scalar_capture_greedy(table, cids, k, model, cancel_check)

    state = model.make_state(table, cids)
    n = len(state.candidate_ids)
    selected: List[int] = []
    gains: List[float] = []
    evaluations = 0
    in_play = [True] * n

    if model.submodular:
        # CELF: (-gain, j) heap — equal gains pop the smallest index,
        # i.e. the smallest candidate id.
        heap: List[Tuple[float, int]] = []
        stamp = [0] * n
        for j in range(n):
            if cancel_check is not None and j == 0:
                cancel_check()
            heap.append((-state.gain(j), j))
            evaluations += 1
        heapq.heapify(heap)
        for rnd in range(k):
            if cancel_check is not None:
                cancel_check()
            while True:
                neg_gain, j = heapq.heappop(heap)
                if stamp[j] == rnd:
                    break
                gain = state.gain(j)
                evaluations += 1
                stamp[j] = rnd
                heapq.heappush(heap, (-gain, j))
            selected.append(int(state.candidate_ids[j]))
            gains.append(-neg_gain)
            in_play[j] = False
            state.add(j)
    else:
        for _ in range(k):
            if cancel_check is not None:
                cancel_check()
            best_j = -1
            best_gain = -1.0
            for j in range(n):
                if not in_play[j]:
                    continue
                gain = state.gain(j)
                evaluations += 1
                if gain > best_gain:
                    best_gain = gain
                    best_j = j
            assert best_j >= 0
            selected.append(int(state.candidate_ids[best_j]))
            gains.append(best_gain)
            in_play[best_j] = False
            state.add(best_j)

    return GreedyOutcome(tuple(selected), sum(gains), tuple(gains), evaluations)
