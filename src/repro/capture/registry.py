"""Capture-model registry: named, parameterised, cache-keyed specs.

A :class:`CaptureSpec` is the *portable* identity of a capture model —
a frozen, hashable ``(name, params)`` record that travels through CLI
flags and :class:`~repro.service.SelectionQuery` fields, joins the
serving engine's cache keys via :meth:`CaptureSpec.cache_key`, and is
materialised into a live :class:`~repro.capture.CaptureModel` against a
concrete dataset with :meth:`CaptureSpec.build` (models need the users'
position histories and the instance ``PF`` to derive utilities).

Registered models:

========================  ============  ===========  ====================
name                      set-indep.    submodular   parameters
========================  ============  ===========  ====================
``evenly-split``          yes           yes          —
``huff``                  yes           yes          ``huff_utility``
``mnl``                   no            yes          ``mnl_beta``
``fixed-worlds``          no            yes          ``mnl_beta``,
                                                     ``worlds``,
                                                     ``world_seed``
========================  ============  ===========  ====================

Unknown names raise :class:`~repro.exceptions.CaptureError` listing the
registered models, so CLI typos fail with an actionable message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from ..competition import CompetitionModel, EvenlySplitModel, InfluenceTable
from ..entities import SpatialDataset
from ..exceptions import CaptureError
from ..influence import ProbabilityFunction
from .base import CaptureModel, SetIndependentCapture
from .mnl import MNLCaptureModel
from .utilities import SiteUtilities
from .worlds import FixedWorldsCaptureModel

#: Names accepted by :class:`CaptureSpec` (and the CLI's
#: ``--capture-model``), in presentation order.
REGISTERED_MODELS: Tuple[str, ...] = (
    "evenly-split",
    "huff",
    "mnl",
    "fixed-worlds",
)

#: Cache key of the paper's default model; the sharded execution layer
#: supports exactly this key (its distinct-weight merge hardcodes the
#: ``1/(|F_o|+1)`` weight family).
DEFAULT_CAPTURE_KEY: Tuple[object, ...] = ("evenly-split",)


class _HuffWeights(CompetitionModel):
    """Huff-style set-independent weights over :class:`SiteUtilities`.

    Same semantics as :class:`~repro.competition.DistanceWeightedModel`
    (share proportional to utility against the competitor utility mass)
    but routed through the shared utility table, so it resolves the
    two-player round's synthetic rival ids too.
    """

    def __init__(self, utilities: SiteUtilities, candidate_utility: float) -> None:
        self._utilities = utilities
        self._candidate_utility = candidate_utility
        self._cache: Dict[int, float] = {}

    def user_share(self, table: InfluenceTable, uid: int) -> float:
        cached = self._cache.get(uid)
        if cached is not None:
            return cached
        total = self._candidate_utility + math.fsum(
            self._utilities.competitor_utility(fid, uid)
            for fid in table.f_o.get(uid, ())
        )
        share = self._candidate_utility / total if total > 0 else 0.0
        self._cache[uid] = share
        return share

    def __repr__(self) -> str:
        return f"_HuffWeights(candidate_utility={self._candidate_utility})"


def evenly_split_capture() -> SetIndependentCapture:
    """The paper's model through the capture contract (degenerate case)."""
    return SetIndependentCapture(
        EvenlySplitModel(), "evenly-split", DEFAULT_CAPTURE_KEY
    )


@dataclass(frozen=True)
class CaptureSpec:
    """Portable, hashable identity of a capture model.

    Attributes:
        model: Registered model name (see :data:`REGISTERED_MODELS`).
        mnl_beta: Choice sharpness ``β`` (``mnl`` / ``fixed-worlds``).
        worlds: Sampled world count (``fixed-worlds``; at most 64).
        world_seed: World seed (``fixed-worlds``); part of the cache
            key, so cached results are bound to their exact worlds.
        huff_utility: New-candidate utility (``huff``).
    """

    model: str = "evenly-split"
    mnl_beta: float = 1.0
    worlds: int = 32
    world_seed: int = 0
    huff_utility: float = 0.5

    def __post_init__(self) -> None:
        if self.model not in REGISTERED_MODELS:
            raise CaptureError(
                f"unknown capture model {self.model!r}; registered models: "
                + ", ".join(REGISTERED_MODELS)
            )

    # ------------------------------------------------------------------
    def cache_key(self) -> Tuple[object, ...]:
        """Model id plus its objective-relevant parameters only.

        Parameters foreign to the named model are excluded, so e.g. two
        evenly-split specs with different (ignored) ``mnl_beta`` values
        share cached work.
        """
        if self.model == "evenly-split":
            return DEFAULT_CAPTURE_KEY
        if self.model == "huff":
            return ("huff", float(self.huff_utility))
        if self.model == "mnl":
            return ("mnl", float(self.mnl_beta))
        return (
            "fixed-worlds",
            float(self.mnl_beta),
            int(self.worlds),
            int(self.world_seed),
        )

    @property
    def is_default(self) -> bool:
        """Whether this spec names the paper's evenly-split model."""
        return self.cache_key() == DEFAULT_CAPTURE_KEY

    # ------------------------------------------------------------------
    def build(
        self, dataset: SpatialDataset, pf: ProbabilityFunction
    ) -> CaptureModel:
        """Materialise the model against a concrete dataset and ``PF``."""
        if self.model == "evenly-split":
            return evenly_split_capture()
        utilities = SiteUtilities(dataset, pf)
        if self.model == "huff":
            if self.huff_utility <= 0:
                raise CaptureError(
                    f"huff utility must be positive, got {self.huff_utility}"
                )
            return SetIndependentCapture(
                _HuffWeights(utilities, float(self.huff_utility)),
                "huff",
                self.cache_key(),
            )
        if self.model == "mnl":
            return MNLCaptureModel(utilities, beta=self.mnl_beta)
        return FixedWorldsCaptureModel(
            utilities,
            beta=self.mnl_beta,
            n_worlds=self.worlds,
            seed=self.world_seed,
        )
