"""Per-(site, user) utilities shared by the set-aware capture models.

Both the MNL and the fixed-worlds model need a deterministic utility
``u_s(o)`` for every site ``s`` (candidate or existing facility) and user
``o``.  Following :class:`~repro.competition.DistanceWeightedModel`, the
utility is the *cumulative influence probability* of the site over the
user's position history under the instance's distance-decay ``PF``:
``u_s(o) = 1 − Π_i (1 − PF(dist(s, p_i)))`` — already in ``[0, 1]``,
monotone in proximity, and computed from machinery the repository
calibrates anyway.

:class:`SiteUtilities` evaluates all sites for one user in a single
vectorized pass and memoises per user, so resolving a model's masses is
one ``(r × n_sites)`` distance block per user rather than one scalar
call per (site, user) pair.

**Rival-candidate convention.**  The two-player round
(:mod:`repro.capture.best_response`) lets previously *selectable*
candidates act as competitors.  Candidate ids and facility ids live in
separate namespaces (both may start at 0), so a rival candidate ``c``
entering a user's competitor set ``F_o`` is recorded under the synthetic
id ``rival_competitor_id(c) = -c - 1`` — always negative, hence
collision-free with real facility ids.  :meth:`SiteUtilities.competitor_utility`
resolves negative ids back to the candidate's utility, and the
evenly-split model simply counts them (``competitor_count`` is
id-agnostic), so *every* capture model handles rival tables untouched.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..entities import SpatialDataset
from ..exceptions import CaptureError
from ..influence import ProbabilityFunction


def rival_competitor_id(cid: int) -> int:
    """Synthetic competitor id of a rival candidate (always negative)."""
    return -int(cid) - 1


def rival_candidate_id(fid: int) -> int:
    """Invert :func:`rival_competitor_id` (requires ``fid < 0``)."""
    if fid >= 0:
        raise CaptureError(f"{fid} is not a synthetic rival competitor id")
    return -int(fid) - 1


class SiteUtilities:
    """Cumulative-influence utilities of every site for every user.

    Args:
        dataset: Supplies the users' position histories and the site
            coordinates (candidates and existing facilities).
        pf: Distance-decay probability function.

    Per-user utility vectors are computed lazily (one vectorized pass
    over all sites) and cached; the class is read-only after
    construction apart from that cache, and look-ups are deterministic,
    so one instance may back several capture models.
    """

    def __init__(self, dataset: SpatialDataset, pf: ProbabilityFunction) -> None:
        self._users = {u.uid: u for u in dataset.users}
        self._pf = pf
        candidates = list(dataset.candidates)
        facilities = list(dataset.facilities)
        self._cand_col: Dict[int, int] = {
            c.fid: j for j, c in enumerate(candidates)
        }
        self._fac_col: Dict[int, int] = {
            f.fid: len(candidates) + j for j, f in enumerate(facilities)
        }
        self._xy = np.array(
            [[s.x, s.y] for s in candidates + facilities], dtype=np.float64
        ).reshape(-1, 2)
        self._cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _user_utilities(self, uid: int) -> np.ndarray:
        cached = self._cache.get(uid)
        if cached is not None:
            return cached
        user = self._users.get(uid)
        if user is None:
            raise CaptureError(f"utilities requested for unknown user {uid}")
        pos = user.positions  # (r, 2)
        if self._xy.shape[0] == 0:
            out = np.zeros(0, dtype=np.float64)
        else:
            d = np.hypot(
                pos[:, 0, None] - self._xy[None, :, 0],
                pos[:, 1, None] - self._xy[None, :, 1],
            )  # (r, n_sites)
            survival = 1.0 - self._pf(d)
            out = 1.0 - np.prod(survival, axis=0)
        self._cache[uid] = out
        return out

    # ------------------------------------------------------------------
    def candidate_utility(self, cid: int, uid: int) -> float:
        """``u_c(o)`` of candidate ``cid`` for user ``uid``."""
        col = self._cand_col.get(int(cid))
        if col is None:
            raise CaptureError(f"unknown candidate {cid} in utility lookup")
        return float(self._user_utilities(int(uid))[col])

    def competitor_utility(self, fid: int, uid: int) -> float:
        """``u_f(o)`` of a competitor — a facility id, or a synthetic
        negative id naming a rival candidate (two-player round)."""
        fid = int(fid)
        if fid < 0:
            return self.candidate_utility(rival_candidate_id(fid), uid)
        col = self._fac_col.get(fid)
        if col is None:
            raise CaptureError(f"unknown facility {fid} in utility lookup")
        return float(self._user_utilities(int(uid))[col])


# ----------------------------------------------------------------------
# Counter-based deterministic uniforms (fixed-worlds sampling).
# ----------------------------------------------------------------------
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)
_U53 = np.uint64(11)  # top 53 bits -> float64 mantissa


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finaliser over uint64 (wraps mod 2^64)."""
    z = (x + _SPLITMIX_GAMMA).astype(np.uint64)
    z ^= z >> np.uint64(30)
    z *= _MIX_1
    z ^= z >> np.uint64(27)
    z *= _MIX_2
    z ^= z >> np.uint64(31)
    return z


def pair_uniforms(
    seed: int, cids: np.ndarray, uids: np.ndarray, n_worlds: int
) -> np.ndarray:
    """Deterministic uniforms in ``[0, 1)`` per (candidate, user, world).

    Counter-based (splitmix64 of a ``(seed, cid, uid, world)`` encoding)
    rather than stateful: the coin of a coverage pair depends only on the
    seed and the pair itself, never on how many other pairs exist or the
    order they were drawn in.  Two tables sharing a pair therefore share
    its coins — the property the two-player round's erosion accounting
    relies on (a rival entering can flip a user's choice *away*, never
    re-toss it).

    Returns a ``(len(cids), n_worlds)`` float64 array.
    """
    cids = np.asarray(cids, dtype=np.int64)
    uids = np.asarray(uids, dtype=np.int64)
    if cids.shape != uids.shape:
        raise CaptureError("cids and uids must be aligned 1-d arrays")
    with np.errstate(over="ignore"):
        base = _splitmix64(
            np.uint64(np.uint64(seed) & np.uint64(0xFFFFFFFFFFFFFFFF))
            + _splitmix64(cids.astype(np.uint64) * np.uint64(0x2545F4914F6CDD1D))
            + _splitmix64(uids.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15))
        )
        worlds = np.arange(n_worlds, dtype=np.uint64)
        mixed = _splitmix64(base[:, None] + worlds[None, :] * _SPLITMIX_GAMMA)
    return (mixed >> _U53).astype(np.float64) * (2.0 ** -53)
