"""Maximum-capture under a multinomial-logit (MNL) customer choice model.

Each user ``o`` chooses among the alternatives that influence it: the
selected candidates covering it, its existing competitors ``F_o``, and a
no-purchase option.  Under MNL the probability of choosing *some*
selected site — the share we capture — is

``capture(o, G) = S_o(G) / (S_o(G) + D_o)``,

where ``S_o(G) = Σ_{c ∈ G, o ∈ Ω_c} exp(β·u_c(o))`` is the selected
utility mass, ``D_o = w_0 + Σ_{f ∈ F_o} exp(β·u_f(o))`` the fixed
competitor-plus-opt-out mass (``w_0 = exp(β·0) = 1``), and ``u``
the cumulative-influence utilities of :class:`~repro.capture.SiteUtilities`.
``β`` scales choice sharpness: ``β → 0`` approaches an evenly-split-like
indifference, large ``β`` approaches winner-take-all on utility.

``x ↦ x/(x+D)`` is concave increasing and ``S_o`` is modular in ``G``,
so the objective is **monotone submodular** (Benati–Hansen; see also
arXiv 2102.05754 for the general MNL/GEV maximum-capture result): CELF
lazy evaluation is sound and greedy keeps the ``(1 − 1/e)`` guarantee —
the model sets ``submodular = True`` and selection runs the vectorized
CELF loop of :mod:`repro.capture.select`.

The marginal-gain oracle vectorizes per candidate: the state keeps the
per-user selected mass ``S`` and fixed mass ``D`` as dense arrays over
the covered universe; one candidate's gain is a single numpy pass over
its CSR segment.
"""

from __future__ import annotations

import math
from typing import Sequence, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..exceptions import CaptureError
from .base import CaptureModel, CaptureState
from .csr import densify_coverage
from .utilities import SiteUtilities

#: Utility of the no-purchase option (weight ``exp(β·0) = 1``).
OPT_OUT_UTILITY = 0.0


class _MNLState(CaptureState):
    """Vectorized marginal-gain oracle over per-user utility masses."""

    def __init__(
        self,
        candidate_ids: Tuple[int, ...],
        indptr: np.ndarray,
        col: np.ndarray,
        entry_w: np.ndarray,
        fixed_mass: np.ndarray,
    ) -> None:
        self.candidate_ids = candidate_ids
        self._indptr = indptr
        self._col = col
        self._entry_w = entry_w
        self._fixed = fixed_mass
        self._selected_mass = np.zeros(fixed_mass.shape[0], dtype=np.float64)

    def gain(self, j: int) -> float:
        lo, hi = self._indptr[j], self._indptr[j + 1]
        if lo == hi:
            return 0.0
        seg = self._col[lo:hi]
        w = self._entry_w[lo:hi]
        s = self._selected_mass[seg]
        d = self._fixed[seg]
        delta = (s + w) / (s + w + d) - s / (s + d)
        return math.fsum(delta.tolist())

    def add(self, j: int) -> None:
        lo, hi = self._indptr[j], self._indptr[j + 1]
        self._selected_mass[self._col[lo:hi]] += self._entry_w[lo:hi]


class MNLCaptureModel(CaptureModel):
    """Set-aware MNL capture (monotone submodular).

    Args:
        utilities: Shared per-(site, user) utility table.
        beta: Choice-sharpness parameter ``β > 0``.
    """

    name = "mnl"
    submodular = True
    set_independent = False

    def __init__(self, utilities: SiteUtilities, beta: float = 1.0) -> None:
        if not (math.isfinite(beta) and beta > 0.0):
            raise CaptureError(f"mnl beta must be finite and positive, got {beta}")
        self._utilities = utilities
        self.beta = float(beta)

    def cache_key(self) -> Tuple[object, ...]:
        return ("mnl", self.beta)

    # ------------------------------------------------------------------
    def _candidate_weight(self, cid: int, uid: int) -> float:
        return math.exp(self.beta * self._utilities.candidate_utility(cid, uid))

    def _fixed_mass(self, table: InfluenceTable, uid: int) -> float:
        """Opt-out weight plus the competitor utility mass of one user."""
        total = math.exp(self.beta * OPT_OUT_UTILITY)
        for fid in table.f_o.get(uid, ()):
            total += math.exp(
                self.beta * self._utilities.competitor_utility(fid, uid)
            )
        return total

    # ------------------------------------------------------------------
    def capture_weights(
        self,
        table: InfluenceTable,
        user_ids: Sequence[int],
        selected: Set[int],
    ) -> np.ndarray:
        sel = sorted(int(c) for c in selected)
        out = np.zeros(len(user_ids), dtype=np.float64)
        for i, uid in enumerate(user_ids):
            uid = int(uid)
            mass = math.fsum(
                self._candidate_weight(cid, uid)
                for cid in sel
                if uid in table.omega_c.get(cid, ())
            )
            if mass > 0.0:
                out[i] = mass / (mass + self._fixed_mass(table, uid))
        return out

    # ------------------------------------------------------------------
    def make_state(
        self, table: InfluenceTable, candidate_ids: Sequence[int]
    ) -> _MNLState:
        cids, user_ids, indptr, col, entry_cid = densify_coverage(
            table, candidate_ids
        )
        fixed = np.fromiter(
            (self._fixed_mass(table, int(uid)) for uid in user_ids),
            dtype=np.float64,
            count=len(user_ids),
        )
        entry_w = np.fromiter(
            (
                self._candidate_weight(int(cid), int(user_ids[u]))
                for cid, u in zip(entry_cid.tolist(), col.tolist())
            ),
            dtype=np.float64,
            count=len(entry_cid),
        )
        return _MNLState(cids, indptr, col, entry_w, fixed)
