"""Simulation-based capture over fixed sampled choice worlds.

For choice models with no closed-form capture probability, the model-free
route (arXiv 2203.11329) is to *simulate* customer choices and average.
Naively re-sampling per objective evaluation breaks greedy — sampling
noise destroys monotonicity ties — so, exactly like the social layer's
:class:`~repro.social.CascadeSampler`, the worlds are fixed up front:

* In world ``w``, candidate ``c`` wins user ``o`` head-to-head against
  ``o``'s competitor context with probability
  ``p_{c,o} = w_{c,o} / (w_{c,o} + D_o)`` (the MNL masses of
  :mod:`repro.capture.mnl`); the outcome is decided by a **counter-based
  deterministic coin** — a splitmix64 hash of ``(seed, c, o, w)``
  (:func:`~repro.capture.utilities.pair_uniforms`) — so a pair's coins
  depend only on the seed, never on table composition or draw order.
* A user is captured in world ``w`` iff *some* selected covering
  candidate wins it there; the objective is the mean captured-user count
  across worlds.

Per world the objective is a coverage function of ``G`` (a union of
per-candidate captured-user sets), so the average is **exactly**
monotone submodular — not just in expectation — and fully deterministic
given the seed: the estimate is cache-safe and the serving engine keys
it by ``(worlds, seed, β)``.

The state packs each coverage pair's ``W ≤ 64`` world outcomes into one
``uint64`` bitmask; a candidate's marginal gain is a single vectorized
``popcount(entry_bits & ~captured_bits)`` pass over its CSR segment.
"""

from __future__ import annotations

from typing import Sequence, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..exceptions import CaptureError
from .base import CaptureModel, CaptureState
from .csr import densify_coverage
from .mnl import MNLCaptureModel
from .utilities import SiteUtilities, pair_uniforms

#: Hard cap: world outcomes are packed into a single uint64 bitmask.
MAX_WORLDS = 64


class _WorldsState(CaptureState):
    """Vectorized marginal-gain oracle over packed world bitmasks."""

    def __init__(
        self,
        candidate_ids: Tuple[int, ...],
        indptr: np.ndarray,
        col: np.ndarray,
        entry_bits: np.ndarray,
        n_users: int,
        n_worlds: int,
    ) -> None:
        self.candidate_ids = candidate_ids
        self._indptr = indptr
        self._col = col
        self._entry_bits = entry_bits
        self._captured = np.zeros(n_users, dtype=np.uint64)
        self._n_worlds = n_worlds

    def gain(self, j: int) -> float:
        lo, hi = self._indptr[j], self._indptr[j + 1]
        if lo == hi:
            return 0.0
        seg = self._col[lo:hi]
        fresh = self._entry_bits[lo:hi] & ~self._captured[seg]
        return float(np.bitwise_count(fresh).sum(dtype=np.int64)) / self._n_worlds

    def add(self, j: int) -> None:
        lo, hi = self._indptr[j], self._indptr[j + 1]
        seg = self._col[lo:hi]
        self._captured[seg] |= self._entry_bits[lo:hi]


class FixedWorldsCaptureModel(CaptureModel):
    """Set-aware simulation-based capture over fixed choice worlds.

    Args:
        utilities: Shared per-(site, user) utility table.
        beta: Choice-sharpness of the underlying head-to-head masses.
        n_worlds: Number of sampled worlds (``1 ≤ n_worlds ≤ 64``).
        seed: World seed; part of :meth:`cache_key`, so cached serving
            results are bound to the exact worlds that produced them.
    """

    name = "fixed-worlds"
    submodular = True
    set_independent = False

    def __init__(
        self,
        utilities: SiteUtilities,
        beta: float = 1.0,
        n_worlds: int = 32,
        seed: int = 0,
    ) -> None:
        if not 1 <= n_worlds <= MAX_WORLDS:
            raise CaptureError(
                f"n_worlds must be in [1, {MAX_WORLDS}] "
                f"(uint64 world bitmask), got {n_worlds}"
            )
        self._mnl = MNLCaptureModel(utilities, beta=beta)
        self._utilities = utilities
        self.beta = float(beta)
        self.n_worlds = int(n_worlds)
        self.seed = int(seed)

    def cache_key(self) -> Tuple[object, ...]:
        return ("fixed-worlds", self.beta, self.n_worlds, self.seed)

    # ------------------------------------------------------------------
    def _pair_bits(
        self, table: InfluenceTable, cids: np.ndarray, uids: np.ndarray
    ) -> np.ndarray:
        """Packed world-outcome bitmask per (candidate, user) pair."""
        if cids.size == 0:
            return np.zeros(0, dtype=np.uint64)
        p = np.empty(cids.size, dtype=np.float64)
        for i, (cid, uid) in enumerate(zip(cids.tolist(), uids.tolist())):
            w = self._mnl._candidate_weight(cid, uid)
            p[i] = w / (w + self._mnl._fixed_mass(table, uid))
        wins = pair_uniforms(self.seed, cids, uids, self.n_worlds) < p[:, None]
        powers = np.uint64(1) << np.arange(self.n_worlds, dtype=np.uint64)
        return (wins.astype(np.uint64) * powers[None, :]).sum(
            axis=1, dtype=np.uint64
        )

    # ------------------------------------------------------------------
    def capture_weights(
        self,
        table: InfluenceTable,
        user_ids: Sequence[int],
        selected: Set[int],
    ) -> np.ndarray:
        sel = sorted(int(c) for c in selected)
        out = np.zeros(len(user_ids), dtype=np.float64)
        for i, uid in enumerate(user_ids):
            uid = int(uid)
            covering = [cid for cid in sel if uid in table.omega_c.get(cid, ())]
            if not covering:
                continue
            bits = self._pair_bits(
                table,
                np.asarray(covering, dtype=np.int64),
                np.full(len(covering), uid, dtype=np.int64),
            )
            captured = np.bitwise_or.reduce(bits) if bits.size else np.uint64(0)
            out[i] = float(np.bitwise_count(captured)) / self.n_worlds
        return out

    # ------------------------------------------------------------------
    def make_state(
        self, table: InfluenceTable, candidate_ids: Sequence[int]
    ) -> _WorldsState:
        cids, user_ids, indptr, col, entry_cid = densify_coverage(
            table, candidate_ids
        )
        entry_bits = self._pair_bits(table, entry_cid, user_ids[col])
        return _WorldsState(
            cids, indptr, col, entry_bits, len(user_ids), self.n_worlds
        )
