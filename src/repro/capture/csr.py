"""CSR densification of coverage pairs for the set-aware capture states.

The same candidate-major layout as :class:`~repro.solvers.CoverageMatrix`
(``indptr``/``col`` over a sorted user universe), but without the
set-independent per-user weight vector — set-aware models attach their
own per-*entry* masses or world bitmasks instead.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..competition import InfluenceTable


def densify_coverage(
    table: InfluenceTable, candidate_ids: Sequence[int]
) -> Tuple[Tuple[int, ...], np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Candidate-major CSR arrays of a table's coverage pairs.

    Returns ``(cids, user_ids, indptr, col, entry_cid)``:

    * ``cids`` — the candidate ids, ascending;
    * ``user_ids`` — int64 sorted universe of covered users;
    * ``indptr`` — int64 segment boundaries, one segment per candidate;
    * ``col`` — int64 user indices per segment, ascending within each;
    * ``entry_cid`` — int64 candidate id per CSR entry (``col``-aligned),
      the hook for per-pair deterministic sampling.
    """
    cids: Tuple[int, ...] = tuple(sorted(int(c) for c in candidate_ids))
    universe: set = set()
    for cid in cids:
        universe |= table.omega_c.get(cid, set())
    user_ids = np.fromiter(sorted(universe), dtype=np.int64, count=len(universe))
    indptr = np.zeros(len(cids) + 1, dtype=np.int64)
    segments = []
    cid_segments = []
    for j, cid in enumerate(cids):
        users = table.omega_c.get(cid)
        if users:
            seg = np.fromiter(users, dtype=np.int64, count=len(users))
            seg.sort()
            segments.append(np.searchsorted(user_ids, seg))
            cid_segments.append(np.full(len(seg), cid, dtype=np.int64))
            indptr[j + 1] = indptr[j] + len(seg)
        else:
            indptr[j + 1] = indptr[j]
    col = (
        np.concatenate(segments) if segments else np.zeros(0, dtype=np.int64)
    )
    entry_cid = (
        np.concatenate(cid_segments)
        if cid_segments
        else np.zeros(0, dtype=np.int64)
    )
    return cids, user_ids, indptr, col, entry_cid
