"""Pluggable capture subsystem: set-aware customer-choice models.

The paper's evenly-split competition model is the degenerate
*set-independent* case of the :class:`CaptureModel` strategy contract
defined here; MNL and fixed-worlds simulation-based capture are the
set-aware members.  See :mod:`repro.capture.base` for the contract,
:mod:`repro.capture.registry` for the named-spec plumbing that threads
models through CLI flags and serving-cache keys, and
:mod:`repro.capture.best_response` for the two-player round.
"""

from .base import CaptureModel, CaptureState, SetIndependentCapture
from .best_response import BestResponseReport, best_response_round, rival_table
from .csr import densify_coverage
from .mnl import MNLCaptureModel
from .registry import (
    DEFAULT_CAPTURE_KEY,
    REGISTERED_MODELS,
    CaptureSpec,
    evenly_split_capture,
)
from .select import capture_select
from .utilities import (
    SiteUtilities,
    pair_uniforms,
    rival_candidate_id,
    rival_competitor_id,
)
from .worlds import MAX_WORLDS, FixedWorldsCaptureModel

__all__ = [
    "BestResponseReport",
    "CaptureModel",
    "CaptureSpec",
    "CaptureState",
    "DEFAULT_CAPTURE_KEY",
    "FixedWorldsCaptureModel",
    "MAX_WORLDS",
    "MNLCaptureModel",
    "REGISTERED_MODELS",
    "SetIndependentCapture",
    "SiteUtilities",
    "best_response_round",
    "capture_select",
    "densify_coverage",
    "evenly_split_capture",
    "pair_uniforms",
    "rival_candidate_id",
    "rival_competitor_id",
    "rival_table",
]
