"""Two-player competitive round: leader, rival best response, re-solve.

The paper treats the competitor set as static.  This module plays one
best-response round of the induced two-player game on top of any
:class:`~repro.capture.CaptureModel`:

1. **Leader move** — greedily select the leader's set ``G₀`` on the
   original table (this is exactly the single-player MC²LS solve).
2. **Rival best response** — the rival, holding the *same* capture
   machinery, picks its ``k_rival`` sites from the remaining candidates
   against a world where ``G₀`` already operates: each selected leader
   candidate joins every covered user's competitor set under its
   synthetic rival id (:func:`~repro.capture.rival_competitor_id`), and
   the rival solves on that table restricted to ``C ∖ G₀``.
3. **Erosion accounting** — the leader's objective is re-evaluated on
   the table where the *rival's* sites ``B`` compete
   (``eroded = objective(table ⊕ B, G₀)``); the drop versus the
   uncontested objective is the **capture erosion**.
4. **Leader re-solve** — the leader re-selects ``G₁`` against the
   rival-aware table, measuring how much of the erosion a forewarned
   leader can win back.

All four steps reuse the production selection paths (CSR kernel for
set-independent models, CELF for set-aware ones), so the round doubles
as an end-to-end exercise of the capture subsystem; with a fixed-worlds
model the whole report is bit-reproducible for a given world seed, and
because pair coins are counter-based, rival entry can only flip users
*away* from the leader — erosion is exactly ``≥ 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from ..competition import InfluenceTable
from ..exceptions import CaptureError
from ..solvers.selection import CancelCheck
from .base import CaptureModel
from .select import capture_select
from .utilities import rival_competitor_id


def rival_table(table: InfluenceTable, rivals: Iterable[int]) -> InfluenceTable:
    """The table after rival candidates ``rivals`` start operating.

    Each rival candidate leaves the selectable pool (its ``Ω_c`` row is
    dropped) and joins the competitor set ``F_o`` of every user it
    covers, under its synthetic negative id — candidate and facility id
    namespaces may collide, so rivals never reuse their raw cid.
    """
    rset = {int(c) for c in rivals}
    unknown = rset - set(table.omega_c)
    if unknown:
        raise CaptureError(
            f"rival candidates {sorted(unknown)} are not in the table"
        )
    omega_c = {
        cid: set(users)
        for cid, users in table.omega_c.items()
        if cid not in rset
    }
    f_o = {uid: set(fids) for uid, fids in table.f_o.items()}
    for cid in sorted(rset):
        rid = rival_competitor_id(cid)
        for uid in table.omega_c[cid]:
            f_o.setdefault(uid, set()).add(rid)
    return InfluenceTable(omega_c=omega_c, f_o=f_o)


def _solve(
    table: InfluenceTable,
    candidate_ids: Tuple[int, ...],
    k: int,
    model: CaptureModel,
    fast: bool,
    cancel_check: CancelCheck,
):
    """One greedy solve through the model's production path."""
    if model.set_independent:
        # The CSR kernel path; imported here to avoid a package cycle.
        from ..solvers.selection import run_selection

        return run_selection(
            table,
            candidate_ids,
            k,
            model=model.weight_model,
            fast_select=fast,
            cancel_check=cancel_check,
        )
    return capture_select(
        table, candidate_ids, k, model, fast=fast, cancel_check=cancel_check
    )


@dataclass(frozen=True)
class BestResponseReport:
    """Outcome of one two-player best-response round.

    Attributes:
        leader_initial: The leader's uncontested selection ``G₀``.
        leader_objective: Uncontested objective of ``G₀``.
        rival_selected: The rival's best-response set ``B``.
        rival_objective: The rival's captured demand on its table.
        eroded_objective: ``G₀``'s objective once ``B`` competes.
        erosion: Absolute capture lost, ``leader − eroded`` (``≥ 0``).
        erosion_fraction: ``erosion / leader_objective`` (0 when the
            uncontested objective is 0).
        leader_adapted: The forewarned leader's re-solve ``G₁`` against
            the rival-aware table.
        adapted_objective: Objective of ``G₁`` on that table.
        recovered: ``adapted − eroded`` — erosion won back by adapting.
    """

    leader_initial: Tuple[int, ...]
    leader_objective: float
    rival_selected: Tuple[int, ...]
    rival_objective: float
    eroded_objective: float
    erosion: float
    erosion_fraction: float
    leader_adapted: Tuple[int, ...]
    adapted_objective: float
    recovered: float


def best_response_round(
    table: InfluenceTable,
    candidate_ids: Iterable[int],
    k: int,
    model: CaptureModel,
    k_rival: Optional[int] = None,
    fast: bool = True,
    cancel_check: CancelCheck = None,
) -> BestResponseReport:
    """Play one leader/rival best-response round (see module docstring).

    Args:
        table: The uncontested influence table.
        candidate_ids: The shared candidate pool.
        k: Leader cardinality.
        model: Capture model both players optimise under.
        k_rival: Rival cardinality (defaults to ``k``, capped by the
            candidates remaining after the leader moves).
        fast: Route both players through the vectorized kernels
            (``False`` uses the scalar differential oracles end-to-end).
        cancel_check: Optional deadline probe, threaded into every solve.
    """
    cids = tuple(sorted({int(c) for c in candidate_ids}))
    leader = _solve(table, cids, k, model, fast, cancel_check)
    g0 = tuple(sorted(leader.selected))

    pool = tuple(c for c in cids if c not in set(g0))
    k_riv = k if k_rival is None else int(k_rival)
    k_riv = min(k_riv, len(pool))
    contested = rival_table(table, g0)
    if k_riv > 0 and pool:
        riv_restricted = contested.restricted(set(pool))
        rival = _solve(riv_restricted, pool, k_riv, model, fast, cancel_check)
        b = tuple(sorted(rival.selected))
        rival_objective = rival.objective
    else:
        b = ()
        rival_objective = 0.0

    eroded_table = rival_table(table, b) if b else table
    eroded = model.objective(eroded_table.restricted(set(g0)), g0)
    erosion = leader.objective - eroded
    fraction = erosion / leader.objective if leader.objective > 0 else 0.0

    adapted_pool = tuple(c for c in cids if c not in set(b))
    k_adapt = min(k, len(adapted_pool))
    if k_adapt > 0 and adapted_pool:
        adapted_restricted = eroded_table.restricted(set(adapted_pool))
        adapted = _solve(
            adapted_restricted, adapted_pool, k_adapt, model, fast, cancel_check
        )
        g1 = tuple(sorted(adapted.selected))
        adapted_objective = adapted.objective
    else:
        g1 = ()
        adapted_objective = 0.0

    return BestResponseReport(
        leader_initial=g0,
        leader_objective=leader.objective,
        rival_selected=b,
        rival_objective=rival_objective,
        eroded_objective=eroded,
        erosion=erosion,
        erosion_fraction=fraction,
        leader_adapted=g1,
        adapted_objective=adapted_objective,
        recovered=adapted_objective - eroded,
    )
