"""Incremental MC²LS over a streaming user population.

Check-in populations are not static: users appear, accumulate positions
and churn away.  Re-solving from scratch per event wastes exactly the
work the paper's pruning machinery saves, so this module maintains the
resolved influence relationships *incrementally*:

* **arrival** — the new user is classified against the facility and
  candidate R-trees with the per-user NIB/IA rules (one range query per
  tree, exact verification only inside the interstitial region);
* **departure** — the user id is dropped from every coverage set through
  a reverse index (O(#covering facilities));
* **selection** — the greedy runs on the maintained table on demand; it
  is the cheap phase (Fig. 14), so recomputing it per query keeps the
  ``(1 − 1/e)`` guarantee at every instant.

The session is equivalent, after any event sequence, to solving the
batch problem on the surviving population — the invariant the test suite
checks, including under property-based random event streams.

For the serving engine the session additionally maintains a
:class:`DeltaLog`: the net set of users added, removed and re-positioned
since the last published snapshot.  ``snapshot()`` drains the log and
attaches it to the returned snapshot, which lets
:meth:`repro.service.PreparedInstance.patched` splice only the dirty
rows of a cached influence table instead of re-resolving every user.
Mutations that raise (unknown uid, mid-update failure) leave the log —
like every other piece of session state — bit-for-bit untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..entities import AbstractFacility, MovingUser, SpatialDataset
from ..exceptions import SolverError
from ..influence import (
    BatchInfluenceEvaluator,
    InfluenceEvaluator,
    ProbabilityFunction,
    paper_default_pf,
)
from ..pruning import PinocchioPruner
from ..solvers import GreedyOutcome, run_selection

#: Sentinel distinguishing "no dirty entry" from any recorded state when
#: saving/restoring the delta log across a failed update.
_NO_ENTRY = object()


@dataclass(frozen=True)
class DeltaLog:
    """Net user churn between two consecutive session snapshots.

    The three uid tuples are disjoint and describe the *net* effect of
    every event since the parent snapshot (add-then-remove collapses to
    nothing, remove-then-re-add to ``updated``, and so on):

    Attributes:
        parent_hash: Content hash of the snapshot this delta is relative
            to, or ``None`` when no snapshot preceded it (a patch is
            impossible; consumers must fall back to a full resolve).
        added: Uids present now that were absent at the parent.
        removed: Uids absent now that were present at the parent.
        updated: Uids present at both ends whose position history may
            have changed (re-verification decides their rows afresh).
    """

    parent_hash: Optional[str]
    added: Tuple[int, ...] = ()
    removed: Tuple[int, ...] = ()
    updated: Tuple[int, ...] = ()

    @property
    def dirty(self) -> Tuple[int, ...]:
        """Uids whose influence rows must be re-verified (added ∪ updated)."""
        return tuple(sorted(set(self.added) | set(self.updated)))

    @property
    def doomed(self) -> Tuple[int, ...]:
        """Uids whose old rows must be dropped (removed ∪ updated)."""
        return tuple(sorted(set(self.removed) | set(self.updated)))

    def __len__(self) -> int:
        return len(self.added) + len(self.removed) + len(self.updated)

    def __bool__(self) -> bool:
        return len(self) > 0


class StreamingMC2LS:
    """A live MC²LS session over fixed facilities and a streaming user set.

    Args:
        facilities: Existing competitor facilities (fixed for the session).
        candidates: Candidate sites (fixed for the session).
        k: Selection budget.
        tau: Influence threshold.
        pf: Distance-decay probability function (paper default when
            ``None``).
        early_stopping: Verification strategy for interstitial pairs.
        batch_verify: Re-verify each arriving user against all its
            interstitial facilities in one batched kernel call (default);
            ``False`` keeps the facility-at-a-time scalar loop.
        fast_select: Run selection queries through the vectorized CSR
            kernel (identical selection); ``False`` restores the scalar
            greedy.
    """

    def __init__(
        self,
        facilities: Tuple[AbstractFacility, ...],
        candidates: Tuple[AbstractFacility, ...],
        k: int,
        tau: float = 0.7,
        pf: Optional[ProbabilityFunction] = None,
        early_stopping: bool = True,
        batch_verify: bool = True,
        fast_select: bool = True,
    ):
        if k < 1 or k > len(candidates):
            raise SolverError(f"k={k} infeasible for {len(candidates)} candidates")
        self.k = k
        self.tau = tau
        self.pf = pf or paper_default_pf()
        self.facilities = tuple(facilities)
        self.candidates = tuple(candidates)
        self.batch_verify = batch_verify
        self.fast_select = fast_select
        self._evaluator = InfluenceEvaluator(
            self.pf, tau, early_stopping=early_stopping
        )
        self._batch = BatchInfluenceEvaluator(
            self.pf, tau, early_stopping=early_stopping, stats=self._evaluator.stats
        )
        self._pruner_c = PinocchioPruner(self.candidates, tau, self.pf)
        self._pruner_f = PinocchioPruner(self.facilities, tau, self.pf)
        self._users: Dict[int, MovingUser] = {}
        self._omega_c: Dict[int, Set[int]] = {c.fid: set() for c in self.candidates}
        self._f_o: Dict[int, Set[int]] = {}
        # Reverse index: uid -> candidate ids covering it (for O(deg) removal).
        self._covering: Dict[int, Set[int]] = {}
        self.events_processed = 0
        # Net churn since the last drained snapshot: uid -> "added" |
        # "removed" | "updated" (collapsed per the DeltaLog semantics).
        self._dirty: Dict[int, str] = {}
        self._parent_hash: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._users)

    def __contains__(self, uid: int) -> bool:
        return uid in self._users

    def table(self) -> InfluenceTable:
        """A snapshot of the maintained influence relationships."""
        return InfluenceTable.from_mappings(self._omega_c, self._f_o)

    def pending_delta(self) -> DeltaLog:
        """The churn accumulated since the last drained snapshot (a view;
        the log keeps accumulating)."""
        return DeltaLog(
            parent_hash=self._parent_hash,
            added=tuple(sorted(u for u, s in self._dirty.items() if s == "added")),
            removed=tuple(sorted(u for u, s in self._dirty.items() if s == "removed")),
            updated=tuple(sorted(u for u, s in self._dirty.items() if s == "updated")),
        )

    def drain_delta(self, content_hash: str) -> DeltaLog:
        """Seal the accumulated churn against a newly published snapshot.

        Returns the delta relative to the *previous* snapshot mark, then
        advances the mark to ``content_hash`` and clears the log, so the
        next drain describes churn relative to this publication.  Called
        by :meth:`repro.service.DatasetSnapshot.from_streaming`.
        """
        delta = self.pending_delta()
        self._parent_hash = content_hash
        self._dirty.clear()
        return delta

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def _verify_interstitial(
        self, facilities: Sequence[AbstractFacility], user: MovingUser
    ) -> Set[int]:
        """Ids of ``facilities`` that influence ``user`` (batch or scalar)."""
        if self.batch_verify and facilities:
            xy = np.array([[v.x, v.y] for v in facilities], dtype=np.float64)
            hit = self._batch.influences_facilities(xy, user.positions)
            return {v.fid for v, h in zip(facilities, hit) if h}
        return {
            v.fid
            for v in facilities
            if self._evaluator.influences(v.x, v.y, user.positions)
        }

    def add_user(self, user: MovingUser) -> None:
        """Process an arrival; the user is classified against all facilities."""
        if user.uid in self._users:
            raise SolverError(f"user {user.uid} already present")
        self._users[user.uid] = user
        decision = self._pruner_c.classify_user(user)
        covering = {c.fid for c in decision.confirmed}
        covering |= self._verify_interstitial(list(decision.verify), user)
        for cid in covering:
            self._omega_c[cid].add(user.uid)
        self._covering[user.uid] = covering
        # Competitor relationships are only material for covered users, but
        # coverage can appear later if candidates change — resolving now
        # keeps events O(1) in session length and the table exact.
        decision = self._pruner_f.classify_user(user)
        competitors = {f.fid for f in decision.confirmed}
        competitors |= self._verify_interstitial(list(decision.verify), user)
        self._f_o[user.uid] = competitors
        # Delta collapse: a user removed since the mark re-appearing means
        # "present at both ends, history suspect" — i.e. updated.
        if self._dirty.get(user.uid) == "removed":
            self._dirty[user.uid] = "updated"
        else:
            self._dirty[user.uid] = "added"
        self.events_processed += 1

    def remove_user(self, uid: int) -> MovingUser:
        """Process a departure; returns the removed user."""
        user = self._users.pop(uid, None)
        if user is None:
            raise SolverError(f"user {uid} not present")
        for cid in self._covering.pop(uid, ()):
            self._omega_c[cid].discard(uid)
        self._f_o.pop(uid, None)
        # Delta collapse: a user added since the mark and removed again
        # nets out to nothing relative to the parent snapshot.
        if self._dirty.get(uid) == "added":
            del self._dirty[uid]
        else:
            self._dirty[uid] = "removed"
        self.events_processed += 1
        return user

    def update_user(self, user: MovingUser) -> None:
        """Re-classify a user whose position history changed.

        Exception-safe: if re-classification of the new history fails
        after the removal succeeded, the user's prior state (position
        history, coverage, competitors, event count) is restored before
        the exception propagates, so a failed update never silently
        drops the user or skews ``events_processed``.
        """
        uid = user.uid
        if uid not in self._users:
            raise SolverError(f"user {uid} not present")
        old_user = self._users[uid]
        old_covering = set(self._covering.get(uid, ()))
        old_fo = self._f_o.get(uid)
        old_fo = set(old_fo) if old_fo is not None else None
        old_dirty = self._dirty.get(uid, _NO_ENTRY)
        events_before = self.events_processed
        self.remove_user(uid)
        try:
            self.add_user(user)
        except BaseException:
            # Drop whatever add_user managed to record before failing,
            # then put the pre-update state back.
            self._users.pop(uid, None)
            for cid in self._covering.pop(uid, ()):
                self._omega_c[cid].discard(uid)
            self._f_o.pop(uid, None)
            self._users[uid] = old_user
            for cid in old_covering:
                self._omega_c[cid].add(uid)
            self._covering[uid] = old_covering
            if old_fo is not None:
                self._f_o[uid] = old_fo
            # The remove/add pair may have rewritten (or deleted) the
            # user's delta entry; restore it so a failed update cannot
            # corrupt the next snapshot's patch.
            if old_dirty is _NO_ENTRY:
                self._dirty.pop(uid, None)
            else:
                self._dirty[uid] = old_dirty
            self.events_processed = events_before
            raise
        self.events_processed = events_before + 1  # one event per update

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_selection(self) -> GreedyOutcome:
        """Greedy ``k``-selection over the live population."""
        return run_selection(
            self.table(),
            [c.fid for c in self.candidates],
            self.k,
            fast_select=self.fast_select,
        )

    def current_dataset(self) -> SpatialDataset:
        """The surviving population as a batch dataset (for validation)."""
        if not self._users:
            raise SolverError("no users in the session")
        return SpatialDataset.build(
            [self._users[uid] for uid in sorted(self._users)],
            self.facilities,
            self.candidates,
            name="streaming-snapshot",
        )

    def snapshot(self, label: str = ""):
        """Publish the current population as a serving-engine snapshot.

        Returns a :class:`~repro.service.DatasetSnapshot` of the
        surviving users, versioned by ``events_processed`` — hand it to
        :meth:`~repro.service.SelectionEngine.publish` (or call
        ``engine.publish_streaming(session)`` directly) after a batch of
        events to make the new population queryable.  Imported lazily to
        keep the streaming module importable without the service layer.
        """
        from ..service import DatasetSnapshot

        return DatasetSnapshot.from_streaming(self, label=label)

    @staticmethod
    def from_dataset(dataset: SpatialDataset, k: int, tau: float = 0.7,
                     pf: Optional[ProbabilityFunction] = None) -> "StreamingMC2LS":
        """Bootstrap a session pre-loaded with a dataset's users."""
        session = StreamingMC2LS(
            dataset.facilities, dataset.candidates, k=k, tau=tau, pf=pf
        )
        for user in dataset.users:
            session.add_user(user)
        return session
