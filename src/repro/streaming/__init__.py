"""Streaming extension: incremental MC²LS under user arrivals/departures."""

from .dynamic import DeltaLog, StreamingMC2LS

__all__ = ["DeltaLog", "StreamingMC2LS"]
