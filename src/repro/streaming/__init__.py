"""Streaming extension: incremental MC²LS under user arrivals/departures."""

from .dynamic import StreamingMC2LS

__all__ = ["StreamingMC2LS"]
