"""Plain-text table reporting for the benchmark harness.

Every benchmark registers the rows/series its paper artifact reports;
tables are rendered as aligned text, written to ``benchmarks/results/``
and replayed in the pytest terminal summary (so ``pytest benchmarks/
--benchmark-only`` shows them even with output capture on).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Tuple

_REGISTRY: List[Tuple[str, str]] = []


def format_table(rows: Sequence[Dict], headers: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``headers`` when given, otherwise the key order
    of the first row.  Values are stringified with sensible float
    formatting.
    """
    if not rows:
        return "(no rows)"
    cols = list(headers) if headers else list(rows[0].keys())

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table = [[fmt(row.get(c, "")) for c in cols] for row in rows]
    widths = [
        max(len(cols[i]), max(len(r[i]) for r in table)) for i in range(len(cols))
    ]
    lines = [
        "  ".join(c.ljust(w) for c, w in zip(cols, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in table)
    return "\n".join(lines)


def record_table(
    title: str,
    rows: Sequence[Dict],
    headers: Sequence[str] | None = None,
    results_dir: str | Path = "benchmarks/results",
) -> str:
    """Register a result table for terminal-summary replay and persist it.

    Returns the rendered table so callers can also print it directly.
    """
    rendered = format_table(rows, headers)
    _REGISTRY.append((title, rendered))
    directory = Path(results_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        safe = "".join(ch if ch.isalnum() or ch in "-_." else "_" for ch in title)
        (directory / f"{safe}.txt").write_text(f"{title}\n\n{rendered}\n")
    except OSError:
        pass  # persistence is best-effort; the summary replay still works
    return rendered


def registered_tables() -> List[Tuple[str, str]]:
    """Return all tables recorded so far (title, rendered text)."""
    return list(_REGISTRY)


def clear_registry() -> None:
    """Drop all recorded tables (used by tests)."""
    _REGISTRY.clear()
