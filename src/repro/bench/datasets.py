"""Shared, cached benchmark populations.

Dataset generation is deterministic but not free; the sweeps reuse one
population per dataset kind and resample candidates/facilities/users from
it, exactly like the paper reuses its two fixed check-in datasets across
experiments.  Scale is configurable through environment variables so the
suite can be run at paper scale when time allows:

* ``REPRO_BENCH_USERS_C`` — California-like user count (default 1500).
* ``REPRO_BENCH_USERS_N`` — New-York-like user count (default 550).
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..data import SyntheticPopulation, california_spec, generate_population, new_york_spec
from ..entities import SpatialDataset

DEFAULT_USERS_C = 1500
DEFAULT_USERS_N = 550

# The paper's default experiment parameters (§VII-A).
DEFAULT_N_CANDIDATES = 100
DEFAULT_N_FACILITIES = 200
DEFAULT_K = 10
DEFAULT_TAU = 0.7
DEFAULT_D_HAT = 2.0
TAU_SWEEP = (0.1, 0.3, 0.5, 0.7, 0.9)
SIZE_SWEEP = (100, 200, 300, 400, 500)
K_SWEEP = (5, 10, 15, 20, 25)
R_SWEEP = (10, 15, 20, 25, 30)


def bench_users(kind: str) -> int:
    """Resolve the configured user count for dataset kind ``"C"``/``"N"``."""
    if kind == "C":
        return int(os.environ.get("REPRO_BENCH_USERS_C", DEFAULT_USERS_C))
    if kind == "N":
        return int(os.environ.get("REPRO_BENCH_USERS_N", DEFAULT_USERS_N))
    raise ValueError(f"unknown dataset kind {kind!r}")


@lru_cache(maxsize=4)
def population(kind: str) -> SyntheticPopulation:
    """The cached user population for dataset kind ``"C"`` or ``"N"``."""
    n = bench_users(kind)
    spec = california_spec(n_users=n) if kind == "C" else new_york_spec(n_users=n)
    return generate_population(spec, seed=0)


@lru_cache(maxsize=32)
def dataset(
    kind: str,
    n_candidates: int = DEFAULT_N_CANDIDATES,
    n_facilities: int = DEFAULT_N_FACILITIES,
    seed: int = 1,
) -> SpatialDataset:
    """A cached dataset of the given kind with sampled facility sets."""
    return population(kind).dataset(
        n_candidates, n_facilities, seed=seed, name=f"{kind}-like"
    )
