"""Experiment definitions: one function per table/figure of the paper.

Each function runs the paper's protocol at the configured benchmark scale
and returns the rows the corresponding artifact reports.  The bench files
under ``benchmarks/`` are thin wrappers that time a headline operation
with pytest-benchmark and register these row tables for the terminal
summary.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..data import compute_stats, mbr_overlap_fraction
from ..pruning import measure_iquadtree_pruning, measure_pinocchio_pruning
from ..solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    ExactSolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
    Solver,
    SolverResult,
    greedy_select,
    lazy_greedy_select,
)
from . import datasets
from .datasets import (
    DEFAULT_D_HAT,
    DEFAULT_K,
    DEFAULT_TAU,
    K_SWEEP,
    R_SWEEP,
    SIZE_SWEEP,
    TAU_SWEEP,
)


def standard_solvers(d_hat: float = DEFAULT_D_HAT) -> List[Solver]:
    """The four algorithms every runtime figure compares (Figs. 10–16)."""
    return [
        BaselineGreedySolver(),
        AdaptedKCIFPSolver(),
        IQTSolver(d_hat=d_hat, variant=IQTVariant.IQT_C),
        IQTSolver(d_hat=d_hat, variant=IQTVariant.IQT),
    ]


def _run(solver: Solver, problem: MC2LSProblem) -> SolverResult:
    return solver.solve(problem)


def _runtime_row(base: Dict, results: Dict[str, SolverResult]) -> Dict:
    row = dict(base)
    for name, result in results.items():
        row[f"{name}_s"] = result.total_time
    return row


def _sweep_solvers(
    problems: Sequence[tuple[Dict, MC2LSProblem]],
    solvers: Sequence[Solver] | None = None,
    check_agreement: bool = True,
) -> List[Dict]:
    """Run every solver on every problem; report per-point runtimes."""
    solvers = solvers if solvers is not None else standard_solvers()
    rows = []
    for base, problem in problems:
        results = {s.name: _run(s, problem) for s in solvers}
        if check_agreement:
            selections = {r.selected for r in results.values()}
            assert len(selections) == 1, f"solver disagreement at {base}: {selections}"
        rows.append(_runtime_row(base, results))
    return rows


# ----------------------------------------------------------------------
# Fig. 7 — effect of the IS and NIR pruning rules
# ----------------------------------------------------------------------
def fig07a_rule_effect(kind: str) -> List[Dict]:
    """Fraction of (facility, user) pairs decided by IS vs NIR, per τ."""
    ds = datasets.dataset(kind)
    rows = []
    for tau in TAU_SWEEP:
        stats, _ = measure_iquadtree_pruning(
            ds.users, ds.abstract_facilities, tau, _pf(), DEFAULT_D_HAT, ds.region
        )
        rows.append(
            {
                "dataset": kind,
                "tau": tau,
                "IS_confirmed_frac": stats.confirmed_fraction,
                "NIR_pruned_frac": stats.pruned_fraction,
                "verify_frac": stats.verify_fraction,
            }
        )
    return rows


def fig07b_variant_effect(kind: str) -> List[Dict]:
    """Pruning effect and runtime of IQT-C vs IQT vs IQT-PINO, per τ."""
    ds = datasets.dataset(kind)
    variants = [IQTVariant.IQT_C, IQTVariant.IQT, IQTVariant.IQT_PINO]
    rows = []
    for tau in TAU_SWEEP:
        row: Dict = {"dataset": kind, "tau": tau}
        problem = MC2LSProblem(ds, k=DEFAULT_K, tau=tau)
        for variant in variants:
            result = IQTSolver(variant=variant).solve(problem)
            assert result.pruning is not None
            row[f"{variant.value}_saved_frac"] = result.pruning.saved_fraction
            row[f"{variant.value}_s"] = result.total_time
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Fig. 8 — IS vs IA and NIR vs NIB, head to head
# ----------------------------------------------------------------------
def fig08_rule_comparison(kind: str) -> List[Dict]:
    """Confirmed/pruned pair fractions of the four rules, per τ."""
    ds = datasets.dataset(kind)
    rows = []
    for tau in TAU_SWEEP:
        iq_stats, _ = measure_iquadtree_pruning(
            ds.users, ds.abstract_facilities, tau, _pf(), DEFAULT_D_HAT, ds.region
        )
        pino_stats = measure_pinocchio_pruning(
            ds.users, ds.abstract_facilities, tau, _pf(), use_ia=True
        )
        rows.append(
            {
                "dataset": kind,
                "tau": tau,
                "IS_confirmed": iq_stats.confirmed_fraction,
                "IA_confirmed": pino_stats.confirmed_fraction,
                "NIR_pruned": iq_stats.pruned_fraction,
                "NIB_pruned": pino_stats.pruned_fraction,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 9 — dataset characterisation
# ----------------------------------------------------------------------
def fig09_distributions() -> List[Dict]:
    """Distribution statistics distinguishing the C and N datasets."""
    rows = []
    for kind in ("C", "N"):
        ds = datasets.dataset(kind)
        row = compute_stats(ds).as_row()
        row["mbr_overlap_frac"] = mbr_overlap_fraction(ds)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table I — IQT vs IQT-PINO runtime as abstract facilities grow
# ----------------------------------------------------------------------
def table1_iqt_vs_pino(kind: str = "N", tau: float = 0.9) -> List[Dict]:
    """Wall time of IQT vs IQT-PINO varying |C ∪ F| (paper: 300 → 1100).

    The paper runs this at τ = 0.9, the only setting where IQT-PINO's
    extra IA pruning shows any gain — and still loses on time.
    """
    rows = []
    for total in (300, 500, 700, 900, 1100):
        n_c = total // 3
        n_f = total - n_c
        ds = datasets.dataset(kind, n_candidates=n_c, n_facilities=n_f)
        problem = MC2LSProblem(ds, k=DEFAULT_K, tau=tau)
        iqt = IQTSolver(variant=IQTVariant.IQT).solve(problem)
        pino = IQTSolver(variant=IQTVariant.IQT_PINO).solve(problem)
        rows.append(
            {
                "abstract_facilities": total,
                "IQT_s": iqt.total_time,
                "IQT-PINO_s": pino.total_time,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table II — index construction cost
# ----------------------------------------------------------------------
def table2_index_build() -> List[Dict]:
    """IQuad-tree vs R-tree construction time, total and per object."""
    from ..spatial import IQuadTree, RTree

    rows = []
    for kind in ("C", "N"):
        ds = datasets.dataset(kind, n_candidates=100, n_facilities=200)
        t0 = time.perf_counter()
        IQuadTree(ds.users, DEFAULT_D_HAT, DEFAULT_TAU, _pf(), ds.region)
        iq_elapsed = time.perf_counter() - t0
        n_positions = ds.n_positions
        t0 = time.perf_counter()
        tree = RTree()
        for v in ds.abstract_facilities:
            tree.insert_point(v.location, v)
        rt_elapsed = time.perf_counter() - t0
        rows.append(
            {
                "dataset": kind,
                "IQuadTree_s": iq_elapsed,
                "IQT_positions": n_positions,
                "IQT_ms_per_obj": iq_elapsed / n_positions * 1e3,
                "RTree_s": rt_elapsed,
                "RT_objects": len(ds.abstract_facilities),
                "RT_ms_per_obj": rt_elapsed / len(ds.abstract_facilities) * 1e3,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figs. 10–14 — runtime sweeps
# ----------------------------------------------------------------------
def fig10_vary_users(kind: str) -> List[Dict]:
    """Runtime and verification work of all four algorithms as |Ω| grows."""
    full = datasets.dataset(kind)
    n_total = len(full.users)
    fractions = (0.2, 0.4, 0.6, 0.8, 1.0)
    rows = []
    for frac in fractions:
        n = max(1, int(n_total * frac))
        ds = full if n == n_total else full.subsample_users(n, seed=3)
        problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
        row: Dict = {"dataset": kind, "users": n}
        reference = None
        for solver in standard_solvers():
            result = solver.solve(problem)
            if reference is None:
                reference = result.selected
            assert result.selected == reference
            row[f"{solver.name}_s"] = result.total_time
            row[f"{solver.name}_evals"] = result.evaluation.total_evaluations
        rows.append(row)
    return rows


def fig11_vary_candidates(kind: str) -> List[Dict]:
    """Runtime as |C| sweeps 100 → 500."""
    problems = []
    for n_c in SIZE_SWEEP:
        ds = datasets.dataset(kind, n_candidates=n_c)
        problems.append(
            ({"dataset": kind, "candidates": n_c}, MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU))
        )
    return _sweep_solvers(problems)


def fig12_vary_facilities(kind: str) -> List[Dict]:
    """Runtime as |F| sweeps 100 → 500."""
    problems = []
    for n_f in SIZE_SWEEP:
        ds = datasets.dataset(kind, n_facilities=n_f)
        problems.append(
            ({"dataset": kind, "facilities": n_f}, MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU))
        )
    return _sweep_solvers(problems)


def fig13_vary_tau(kind: str) -> List[Dict]:
    """Runtime as τ sweeps 0.1 → 0.9."""
    ds = datasets.dataset(kind)
    problems = [
        ({"dataset": kind, "tau": tau}, MC2LSProblem(ds, k=DEFAULT_K, tau=tau))
        for tau in TAU_SWEEP
    ]
    return _sweep_solvers(problems)


def fig14_vary_k(kind: str) -> List[Dict]:
    """Runtime as k sweeps 5 → 25; all algorithms must return the same set."""
    ds = datasets.dataset(kind)
    problems = [
        ({"dataset": kind, "k": k}, MC2LSProblem(ds, k=k, tau=DEFAULT_TAU))
        for k in K_SWEEP
    ]
    return _sweep_solvers(problems, check_agreement=True)


# ----------------------------------------------------------------------
# Figs. 15–16 — effect of r (positions per user)
# ----------------------------------------------------------------------
def fig15_16_vary_r(kind: str) -> List[Dict]:
    """Runtime and verification cost as r grows (users with ≥ 30 positions).

    Mirrors the paper's protocol: keep only users with more than 30
    positions and sample exactly r of them.  Verification cost is the
    number of positions actually touched by exact probability checks.
    """
    full = datasets.dataset(kind)
    rows = []
    for r in R_SWEEP:
        ds = full.subsample_positions(r, seed=4)
        problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
        row: Dict = {"dataset": kind, "r": r, "eligible_users": len(ds.users)}
        for solver in standard_solvers():
            result = solver.solve(problem)
            row[f"{solver.name}_s"] = result.total_time
            row[f"{solver.name}_pos_touched"] = result.evaluation.positions_touched
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Effect of d̂ (§VII prose) and ablations
# ----------------------------------------------------------------------
def fig_dhat_leaf_diagonal(kind: str) -> List[Dict]:
    """IQT runtime and index share as the leaf diagonal d̂ sweeps 1 → 2.5 km."""
    ds = datasets.dataset(kind)
    rows = []
    for d_hat in (1.0, 1.5, 2.0, 2.5):
        problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
        result = IQTSolver(d_hat=d_hat).solve(problem)
        rows.append(
            {
                "dataset": kind,
                "d_hat_km": d_hat,
                "IQT_s": result.total_time,
                "index_s": result.timings.get("index", 0.0),
                "index_share": result.timings.get("index", 0.0) / result.total_time,
                "saved_frac": result.pruning.saved_fraction if result.pruning else 0.0,
            }
        )
    return rows


def ablation_early_stopping(kind: str) -> List[Dict]:
    """IQT with and without the PINOCCHIO early-stopping verification."""
    ds = datasets.dataset(kind)
    problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
    rows = []
    for early in (True, False):
        result = IQTSolver(early_stopping=early).solve(problem)
        rows.append(
            {
                "dataset": kind,
                "early_stopping": early,
                "IQT_s": result.total_time,
                "positions_touched": result.evaluation.positions_touched,
                "evaluations": result.evaluation.total_evaluations,
            }
        )
    return rows


def ablation_exact_rounded(kind: str) -> List[Dict]:
    """NIR via the rounded square's MBR (paper) vs the exact shape."""
    ds = datasets.dataset(kind)
    problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
    rows = []
    for exact in (False, True):
        result = IQTSolver(exact_rounded=exact).solve(problem)
        assert result.pruning is not None
        rows.append(
            {
                "dataset": kind,
                "exact_rounded": exact,
                "IQT_s": result.total_time,
                "pruned_frac": result.pruning.pruned_fraction,
                "verify_frac": result.pruning.verify_fraction,
            }
        )
    return rows


def ablation_greedy(kind: str = "N") -> List[Dict]:
    """Eager vs CELF lazy greedy, plus quality vs the exact optimum.

    The exact solver runs on a reduced instance (|C| = 12, k = 4) to keep
    enumeration tractable; the greedy comparison runs at full scale.
    """
    ds = datasets.dataset(kind)
    problem = MC2LSProblem(ds, k=DEFAULT_K, tau=DEFAULT_TAU)
    reference = BaselineGreedySolver().solve(problem)
    cids = [c.fid for c in ds.candidates]

    t0 = time.perf_counter()
    eager = greedy_select(reference.table, cids, problem.k)
    eager_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    lazy = lazy_greedy_select(reference.table, cids, problem.k)
    lazy_s = time.perf_counter() - t0
    assert lazy.selected == eager.selected

    small = datasets.dataset(kind, n_candidates=12, n_facilities=50)
    small_problem = MC2LSProblem(small, k=4, tau=DEFAULT_TAU)
    exact = ExactSolver().solve(small_problem)
    greedy_small = BaselineGreedySolver().solve(small_problem)
    ratio = (
        greedy_small.objective / exact.objective if exact.objective > 0 else 1.0
    )
    return [
        {
            "dataset": kind,
            "eager_evals": eager.evaluations,
            "lazy_evals": lazy.evaluations,
            "eager_s": eager_s,
            "lazy_s": lazy_s,
            "greedy_over_exact": ratio,
            "guarantee": 1 - 1 / 2.718281828,
        }
    ]


def _pf():
    from ..influence import paper_default_pf

    return paper_default_pf()
