"""Standalone SVG line charts — the paper's figures as actual figures.

No plotting stack is available offline, so this is a small hand-rolled
SVG writer: multi-series line charts with axes, ticks, legends and
optional logarithmic y (the paper's runtime figures are log-scale).
The bench suite uses it to render each runtime sweep next to its row
table under ``benchmarks/results/``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import DataError

_PALETTE = ("#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#a463f2", "#97bbf5")


@dataclass
class Series:
    """One named line on the chart."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.points:
            raise DataError(f"series {self.name!r} has no points")


def _nice_ticks(lo: float, hi: float, n: int = 5) -> List[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** math.floor(math.log10(span / max(n, 1)))
    for mult in (1, 2, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + 1e-12:
        ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def _log_ticks(lo: float, hi: float) -> List[float]:
    ticks = []
    e = math.floor(math.log10(lo))
    while 10**e <= hi * 1.0001:
        if 10**e >= lo * 0.9999:
            ticks.append(10.0**e)
        e += 1
    return ticks or [lo, hi]


class LineChart:
    """A multi-series line chart rendered to SVG.

    Args:
        title: Chart title.
        x_label / y_label: Axis labels.
        log_y: Logarithmic y axis (the paper's runtime figures).
        width / height: Pixel dimensions.
    """

    def __init__(
        self,
        title: str,
        x_label: str = "",
        y_label: str = "",
        log_y: bool = False,
        width: int = 560,
        height: int = 360,
    ):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.log_y = log_y
        self.width = width
        self.height = height
        self._series: List[Series] = []

    def add_series(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        """Add one named line (x, y pairs; y must be positive when log)."""
        pts = [(float(x), float(y)) for x, y in points]
        if self.log_y and any(y <= 0 for _, y in pts):
            raise DataError(f"log-scale series {name!r} needs positive y values")
        self._series.append(Series(name, pts))

    @staticmethod
    def from_rows(
        rows: Sequence[Dict],
        x_key: str,
        y_keys: Sequence[str],
        title: str,
        log_y: bool = True,
        x_label: Optional[str] = None,
        y_label: str = "seconds",
    ) -> "LineChart":
        """Build a chart straight from benchmark row dicts."""
        chart = LineChart(
            title, x_label=x_label or x_key, y_label=y_label, log_y=log_y
        )
        for key in y_keys:
            chart.add_series(
                key.removesuffix("_s"),
                [(row[x_key], row[key]) for row in rows],
            )
        return chart

    # ------------------------------------------------------------------
    def _y_transform(self, y: float) -> float:
        return math.log10(y) if self.log_y else y

    def render(self) -> str:
        """Return the chart as an SVG document string."""
        if not self._series:
            raise DataError("chart has no series")
        margin_l, margin_r, margin_t, margin_b = 64, 140, 40, 48
        plot_w = self.width - margin_l - margin_r
        plot_h = self.height - margin_t - margin_b

        xs = [x for s in self._series for x, _ in s.points]
        ys = [y for s in self._series for _, y in s.points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1
        ticks_x = _nice_ticks(x_lo, x_hi)
        ticks_y = _log_ticks(y_lo, y_hi) if self.log_y else _nice_ticks(
            min(0.0, y_lo) if y_lo > 0 else y_lo, y_hi
        )
        t_lo = self._y_transform(min(ticks_y + [y_lo]))
        t_hi = self._y_transform(max(ticks_y + [y_hi]))
        if t_hi == t_lo:
            t_hi = t_lo + 1

        def px(x: float) -> float:
            return margin_l + (x - x_lo) / (x_hi - x_lo) * plot_w

        def py(y: float) -> float:
            t = self._y_transform(y)
            return margin_t + (t_hi - t) / (t_hi - t_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{margin_l}" y="22" font-size="14" font-weight="bold">'
            f"{self.title}</text>",
        ]
        # Axes + grid.
        for tx in ticks_x:
            if not x_lo <= tx <= x_hi:
                continue
            x = px(tx)
            parts.append(
                f'<line x1="{x:.1f}" y1="{margin_t}" x2="{x:.1f}" '
                f'y2="{margin_t + plot_h}" stroke="#eee"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{margin_t + plot_h + 16}" '
                f'text-anchor="middle">{tx:g}</text>'
            )
        for ty in ticks_y:
            y = py(ty)
            parts.append(
                f'<line x1="{margin_l}" y1="{y:.1f}" x2="{margin_l + plot_w}" '
                f'y2="{y:.1f}" stroke="#eee"/>'
            )
            parts.append(
                f'<text x="{margin_l - 6}" y="{y + 4:.1f}" '
                f'text-anchor="end">{ty:g}</text>'
            )
        parts.append(
            f'<rect x="{margin_l}" y="{margin_t}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="#999"/>'
        )
        # Series.
        for i, series in enumerate(self._series):
            color = _PALETTE[i % len(_PALETTE)]
            path = " ".join(
                f"{'M' if j == 0 else 'L'}{px(x):.1f},{py(y):.1f}"
                for j, (x, y) in enumerate(sorted(series.points))
            )
            parts.append(
                f'<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>'
            )
            for x, y in series.points:
                parts.append(
                    f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" '
                    f'fill="{color}"/>'
                )
            ly = margin_t + 14 + i * 16
            lx = margin_l + plot_w + 12
            parts.append(
                f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 18}" y2="{ly - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(f'<text x="{lx + 22}" y="{ly}">{series.name}</text>')
        # Axis labels.
        if self.x_label:
            parts.append(
                f'<text x="{margin_l + plot_w / 2:.0f}" y="{self.height - 10}" '
                f'text-anchor="middle">{self.x_label}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{margin_t + plot_h / 2:.0f}" text-anchor="middle" '
                f'transform="rotate(-90 16 {margin_t + plot_h / 2:.0f})">'
                f"{self.y_label}</text>"
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> None:
        """Write the SVG document to disk."""
        Path(path).write_text(self.render())


def save_runtime_figure(
    rows: Sequence[Dict],
    x_key: str,
    title: str,
    filename: str,
    results_dir: str | Path = "benchmarks/results",
) -> Optional[Path]:
    """Render a runtime sweep (all ``*_s`` columns) as a log-scale SVG.

    Best-effort: returns the written path, or ``None`` when the results
    directory is not writable (the row tables remain the primary record).
    """
    y_keys = [k for k in rows[0] if k.endswith("_s")]
    if not y_keys:
        raise DataError("no *_s runtime columns in rows")
    chart = LineChart.from_rows(rows, x_key, y_keys, title=title, log_y=True)
    directory = Path(results_dir)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / filename
        chart.save(path)
        return path
    except OSError:
        return None
