"""ASCII rendering of spatial distributions (the Fig. 9 scatter plots).

No plotting stack is assumed; a density grid rendered with a character
ramp is enough to *see* the uniform-vs-skewed contrast between the two
datasets and to eyeball where a solver placed its selection.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..entities import SpatialDataset
from ..geo import Rect

_RAMP = " .:-=+*#%@"


def density_grid(
    xy: np.ndarray, region: Rect, width: int = 64, height: int = 24
) -> np.ndarray:
    """Bin points into a ``(height, width)`` count grid over ``region``."""
    ix = np.clip(
        ((xy[:, 0] - region.min_x) / max(region.width, 1e-12) * width).astype(int),
        0,
        width - 1,
    )
    iy = np.clip(
        ((xy[:, 1] - region.min_y) / max(region.height, 1e-12) * height).astype(int),
        0,
        height - 1,
    )
    grid = np.zeros((height, width), dtype=int)
    np.add.at(grid, (iy, ix), 1)
    return grid


def render_density(
    xy: np.ndarray,
    region: Rect,
    width: int = 64,
    height: int = 24,
    markers: Optional[Sequence[Tuple[float, float, str]]] = None,
) -> str:
    """Render a point cloud as ASCII density art (origin bottom-left).

    ``markers`` are ``(x, y, char)`` overlays drawn on top of the density
    ramp — used to show facilities and selected candidates.
    """
    grid = density_grid(xy, region, width, height)
    peak = max(int(grid.max()), 1)
    # Log scaling keeps sparse structure visible next to dense clusters.
    levels = np.log1p(grid) / np.log1p(peak)
    chars: List[List[str]] = [
        [_RAMP[min(int(level * (len(_RAMP) - 1)), len(_RAMP) - 1)] for level in row]
        for row in levels
    ]
    if markers:
        for x, y, char in markers:
            ix = min(
                max(int((x - region.min_x) / max(region.width, 1e-12) * width), 0),
                width - 1,
            )
            iy = min(
                max(int((y - region.min_y) / max(region.height, 1e-12) * height), 0),
                height - 1,
            )
            chars[iy][ix] = char[0]
    border = "+" + "-" * width + "+"
    rows = ["|" + "".join(row) + "|" for row in reversed(chars)]
    return "\n".join([border] + rows + [border])


def render_dataset(
    dataset: SpatialDataset,
    width: int = 64,
    height: int = 24,
    selected: Iterable[int] = (),
) -> str:
    """Render a dataset: user-position density, facilities and candidates.

    Overlays: ``F`` existing facilities, ``c`` candidates, ``$`` selected
    candidates.
    """
    xy = np.vstack([u.positions for u in dataset.users])
    selected_set = set(selected)
    markers: List[Tuple[float, float, str]] = []
    markers.extend((f.x, f.y, "F") for f in dataset.facilities)
    markers.extend(
        (c.x, c.y, "$" if c.fid in selected_set else "c")
        for c in dataset.candidates
    )
    art = render_density(xy, dataset.region, width, height, markers)
    legend = "density: ' ' low .. '@' high | F existing  c candidate  $ selected"
    return f"{art}\n{legend}"
