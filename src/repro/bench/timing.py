"""Repeat-timing discipline shared by the benchmark scripts.

Every recorded trajectory point follows the same protocol: run the
workload ``repeats`` times, report the **median** wall-clock as the
headline number and the min/max **spread** alongside it, so a single
scheduler hiccup can neither flatter nor tank a committed point.  The
helpers here keep that discipline in one place instead of re-implementing
``best-of`` loops per script.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple


@dataclass(frozen=True)
class TimingSample:
    """Wall-clock measurements of one workload over several repeats.

    Attributes:
        times: Per-repeat wall-clock seconds, in run order.
        result: The workload's return value from the final repeat (the
            workloads benchmarked here are deterministic, so any repeat's
            result is representative).
    """

    times: Tuple[float, ...]
    result: Any

    @property
    def median_s(self) -> float:
        """The headline number: median over repeats."""
        return statistics.median(self.times)

    @property
    def best_s(self) -> float:
        return min(self.times)

    @property
    def spread_s(self) -> float:
        """Max minus min over repeats — the jitter band width."""
        return max(self.times) - min(self.times)

    @property
    def repeats(self) -> int:
        return len(self.times)

    def summary(self) -> Dict[str, Any]:
        """JSON-ready record of this sample (times, median, spread)."""
        return {
            "median_s": self.median_s,
            "best_s": self.best_s,
            "spread_s": self.spread_s,
            "repeats": self.repeats,
            "times_s": list(self.times),
        }


def repeat_timed(fn: Callable[[], Any], repeats: int) -> TimingSample:
    """Run ``fn`` ``repeats`` times (>= 1) and collect the sample."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - t0)
    return TimingSample(tuple(times), result)
