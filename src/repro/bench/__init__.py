"""Benchmark harness: experiment definitions, cached datasets, reporting."""

from . import ascii_viz, datasets, experiments
from .reporting import clear_registry, format_table, record_table, registered_tables
from .timing import TimingSample, repeat_timed

__all__ = [
    "TimingSample",
    "ascii_viz",
    "clear_registry",
    "datasets",
    "experiments",
    "format_table",
    "record_table",
    "registered_tables",
    "repeat_timed",
]
