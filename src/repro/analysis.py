"""Post-solve analysis: compare plans, diagnose coverage, audit fairness.

Utilities a deployment team runs *after* the solver: how different are
two plans, which selected site depends on which users, how contested is
the captured demand, and what the marginal-value curve says about the
budget.  Everything operates on resolved :class:`InfluenceTable` objects
so any solver's output can be analysed uniformly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from .competition import InfluenceTable, covered_users
from .solvers.coverage import CoverageMatrix


def selection_jaccard(a: Sequence[int], b: Sequence[int]) -> float:
    """Jaccard similarity of two candidate-id selections."""
    sa, sb = set(a), set(b)
    if not sa and not sb:
        return 1.0
    return len(sa & sb) / len(sa | sb)


def coverage_jaccard(table: InfluenceTable, a: Sequence[int], b: Sequence[int]) -> float:
    """Jaccard similarity of the *user sets* two selections capture.

    Two plans with disjoint sites can still serve the same market; this
    measures outcome similarity rather than site similarity.
    """
    ca, cb = covered_users(table, a), covered_users(table, b)
    if not ca and not cb:
        return 1.0
    return len(ca & cb) / len(ca | cb)


@dataclass(frozen=True)
class SiteReport:
    """Coverage diagnostics of one selected site within a plan.

    Attributes:
        cid: Candidate id.
        covered: Users the site influences.
        exclusive: Users no *other selected site* reaches — the demand
            lost outright if this site is dropped.
        value: Evenly-split weight of ``covered``.
        exclusive_value: Evenly-split weight of ``exclusive``.
        mean_competition: Average ``|F_o|`` over covered users — how
            contested this site's market is.
    """

    cid: int
    covered: frozenset
    exclusive: frozenset
    value: float
    exclusive_value: float
    mean_competition: float


def site_reports(table: InfluenceTable, selected: Sequence[int]) -> List[SiteReport]:
    """Per-site diagnostics for a selection."""
    reports = []
    for cid in selected:
        covered = frozenset(table.omega_c.get(cid, frozenset()))
        others: Set[int] = set()
        for other in selected:
            if other != cid:
                others |= table.omega_c.get(other, set())
        exclusive = frozenset(covered - others)
        weigh = lambda uids: math.fsum(
            1.0 / (table.competitor_count(u) + 1) for u in uids
        )
        competition = (
            sum(table.competitor_count(u) for u in covered) / len(covered)
            if covered
            else 0.0
        )
        reports.append(
            SiteReport(
                cid=cid,
                covered=covered,
                exclusive=exclusive,
                value=weigh(covered),
                exclusive_value=weigh(exclusive),
                mean_competition=competition,
            )
        )
    return reports


def redundancy_index(table: InfluenceTable, selected: Sequence[int]) -> float:
    """Share of (site, user) coverage pairs that are redundant overlaps.

    0 means every site's coverage is disjoint; values near 1 mean the
    plan stacked sites on the same market.  This quantifies exactly the
    overlap waste Definition 6 refuses to reward.
    """
    total_pairs = sum(len(table.omega_c.get(cid, ())) for cid in selected)
    if total_pairs == 0:
        return 0.0
    distinct = len(covered_users(table, selected))
    return 1.0 - distinct / total_pairs


def marginal_curve(table: InfluenceTable, selected: Sequence[int]) -> List[Tuple[int, float]]:
    """``(prefix length, cinf of prefix)`` along the selection order.

    Reading the knee off this curve is the budget-sizing question the
    billboard example walks through.

    One CSR densification plus an incrementally grown coverage mask —
    ``fsum`` over each prefix's covered-weight multiset is bit-equal to
    the per-prefix :func:`~repro.competition.cinf_group` rebuild it
    replaces (the scalar oracle the differential suite still pins
    against), without re-walking Python sets per prefix.
    """
    if not selected:
        return []
    matrix = CoverageMatrix(table.restricted(set(selected)), sorted(set(selected)))
    index = {cid: j for j, cid in enumerate(matrix.candidate_ids)}
    covered = matrix.new_covered_mask()
    curve = []
    for i, cid in enumerate(selected, start=1):
        matrix.cover(index[cid], covered)
        curve.append((i, math.fsum(matrix.weights[covered].tolist())))
    return curve


def drop_one_regret(table: InfluenceTable, selected: Sequence[int]) -> Dict[int, float]:
    """Objective loss from dropping each selected site (no replacement).

    Sites with near-zero regret are candidates for divestment; the sum of
    regrets understates ``cinf`` exactly by the overlap structure.

    Shares a single :class:`~repro.solvers.CoverageMatrix` across the
    ``|G| + 1`` group evaluations (one vectorized union each) instead of
    rebuilding per-user sets per drop; values are bit-equal to the
    scalar :func:`~repro.competition.cinf_group` path.
    """
    if not selected:
        return {}
    matrix = CoverageMatrix(table.restricted(set(selected)), sorted(set(selected)))
    full = matrix.objective_of(list(selected))
    out = {}
    for cid in selected:
        rest = [c for c in selected if c != cid]
        out[cid] = full - matrix.objective_of(rest)
    return out


def contested_share(table: InfluenceTable, selected: Sequence[int]) -> float:
    """Fraction of captured users that at least one competitor also serves.

    1.0 means the whole captured market is being fought over; 0.0 means
    the plan found uncontested demand.
    """
    covered = covered_users(table, selected)
    if not covered:
        return 0.0
    contested = sum(1 for uid in covered if table.competitor_count(uid) > 0)
    return contested / len(covered)
