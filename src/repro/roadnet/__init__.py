"""Road-network extension: graph substrate and network-distance MC²LS."""

from .influence import NetworkInfluenceModel, NetworkSolveResult, solve_on_network
from .network import RoadNetwork, grid_network, radial_network

__all__ = [
    "NetworkInfluenceModel",
    "NetworkSolveResult",
    "RoadNetwork",
    "grid_network",
    "radial_network",
    "solve_on_network",
]
