"""Influence evaluation under road-network distances.

Replaces the Euclidean metric in the cumulative influence model with
*network* distance: user positions and facilities snap to their nearest
road nodes, and ``d(v, p) = snap(v) + shortest_path + snap(p)``.  One
Dijkstra per abstract facility (with a cutoff beyond which ``PF`` is
numerically zero) resolves that facility against the whole population —
the network analogue of the batch-wise property.

Positions farther than the cutoff contribute a survival factor of
exactly 1 (``PF = 0``), which truncates the logistic tail below 1e-12;
the truncation is part of the network model's definition and the tests
compare against a brute-force evaluator with the same semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..entities import AbstractFacility, SpatialDataset
from ..exceptions import DataError
from ..influence import ProbabilityFunction, paper_default_pf
from ..solvers import GreedyOutcome, run_selection
from .network import RoadNetwork

_PF_EPSILON = 1e-12


def _default_cutoff(pf: ProbabilityFunction) -> float:
    """Distance beyond which PF is numerically negligible (< 1e-12)."""
    try:
        return pf.inverse(_PF_EPSILON)
    except Exception:  # pragma: no cover - exotic PFs without tiny support
        return 50.0


class NetworkInfluenceModel:
    """Cumulative influence over a road network for a fixed population.

    Args:
        network: The road graph.
        dataset: Users (and the facility sets resolved later).
        pf: Distance-decay probability function.
        tau: Influence threshold.
        cutoff: Search radius per facility; defaults to the distance at
            which ``PF`` falls below 1e-12.
    """

    def __init__(
        self,
        network: RoadNetwork,
        dataset: SpatialDataset,
        pf: Optional[ProbabilityFunction] = None,
        tau: float = 0.7,
        cutoff: Optional[float] = None,
    ):
        if len(network) == 0:
            raise DataError("road network is empty")
        self.network = network
        self.dataset = dataset
        self.pf = pf or paper_default_pf()
        self.tau = tau
        self.cutoff = cutoff if cutoff is not None else _default_cutoff(self.pf)
        # Snap every user position once; group rows per snapped node so a
        # facility's Dijkstra result maps straight onto positions.
        self._user_nodes: Dict[int, np.ndarray] = {}
        self._user_offsets: Dict[int, np.ndarray] = {}
        for user in dataset.users:
            nodes, offsets = network.snap_many(user.positions)
            self._user_nodes[user.uid] = nodes
            self._user_offsets[user.uid] = offsets
        self.dijkstra_runs = 0

    # ------------------------------------------------------------------
    def influenced_users(self, facility: AbstractFacility) -> Set[int]:
        """All users influenced by ``facility`` under network distance."""
        v_node, v_offset = self.network.nearest_node(facility.x, facility.y)
        reach = self.network.shortest_paths(
            v_node, cutoff=max(self.cutoff - v_offset, 0.0)
        )
        self.dijkstra_runs += 1
        target = 1.0 - self.tau
        out: Set[int] = set()
        for user in self.dataset.users:
            nodes = self._user_nodes[user.uid]
            offsets = self._user_offsets[user.uid]
            q = 1.0
            for node, offset in zip(nodes.tolist(), offsets.tolist()):
                base = reach.get(node)
                if base is None:
                    continue  # beyond cutoff: survival factor 1
                d = v_offset + base + offset
                if d >= self.cutoff:
                    continue
                q *= 1.0 - float(self.pf(d))
                if q <= target:
                    break
            if q <= target:
                out.add(user.uid)
        return out

    def build_table(self) -> InfluenceTable:
        """Resolve ``Ω_c`` and ``F_o`` for the dataset's facility sets."""
        omega_c = {
            c.fid: self.influenced_users(c) for c in self.dataset.candidates
        }
        f_o: Dict[int, Set[int]] = {u.uid: set() for u in self.dataset.users}
        for f in self.dataset.facilities:
            for uid in self.influenced_users(f):
                f_o[uid].add(f.fid)
        return InfluenceTable(omega_c, f_o)


@dataclass(frozen=True)
class NetworkSolveResult:
    """Selection under the network metric, with the resolved table."""

    selected: Tuple[int, ...]
    objective: float
    gains: Tuple[float, ...]
    table: InfluenceTable
    dijkstra_runs: int


def solve_on_network(
    dataset: SpatialDataset,
    network: RoadNetwork,
    k: int,
    tau: float = 0.7,
    pf: Optional[ProbabilityFunction] = None,
    cutoff: Optional[float] = None,
    fast_select: bool = True,
) -> NetworkSolveResult:
    """Solve MC²LS with network distances end to end.

    ``fast_select`` routes the greedy through the vectorized CSR kernel
    (identical selection); ``False`` restores the scalar greedy.
    """
    model = NetworkInfluenceModel(network, dataset, pf=pf, tau=tau, cutoff=cutoff)
    table = model.build_table()
    outcome: GreedyOutcome = run_selection(
        table, [c.fid for c in dataset.candidates], k, fast_select=fast_select
    )
    return NetworkSolveResult(
        selected=outcome.selected,
        objective=outcome.objective,
        gains=outcome.gains,
        table=table,
        dijkstra_runs=model.dijkstra_runs,
    )
