"""Road networks: a from-scratch weighted graph with shortest-path queries.

The Euclidean metric under-estimates real travel effort in cities; the
CLS literature the paper builds on (e.g. optimal-location queries on road
networks, k-facility relocation) therefore also studies network
distances.  This module supplies the substrate: an adjacency-list road
graph with non-negative edge weights (km), Dijkstra single-source
shortest paths with a binary heap, nearest-node snapping for off-network
points, and generators for grid and randomly-perturbed city networks.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..exceptions import DataError
from ..geo import Point


class RoadNetwork:
    """An undirected, weighted road graph embedded in the plane.

    Nodes are integer ids with coordinates; edge weights default to the
    Euclidean length of the segment but may be overridden (e.g. to model
    congestion).
    """

    def __init__(self) -> None:
        self._xy: Dict[int, Tuple[float, float]] = {}
        self._adj: Dict[int, Dict[int, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: int, x: float, y: float) -> None:
        """Add (or reposition) a node at ``(x, y)``."""
        self._xy[node] = (float(x), float(y))
        self._adj.setdefault(node, {})

    def add_edge(self, a: int, b: int, length: Optional[float] = None) -> None:
        """Add an undirected road segment; length defaults to Euclidean."""
        if a not in self._xy or b not in self._xy:
            raise DataError(f"both endpoints must exist before edge ({a}, {b})")
        if a == b:
            raise DataError(f"self-loop on node {a}")
        if length is None:
            ax, ay = self._xy[a]
            bx, by = self._xy[b]
            length = math.hypot(ax - bx, ay - by)
        if length < 0:
            raise DataError(f"edge length must be non-negative, got {length}")
        self._adj[a][b] = float(length)
        self._adj[b][a] = float(length)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._xy)

    @property
    def n_edges(self) -> int:
        """Number of undirected road segments."""
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> List[int]:
        """All node ids, sorted."""
        return sorted(self._xy)

    def position(self, node: int) -> Point:
        """Coordinates of a node."""
        if node not in self._xy:
            raise DataError(f"unknown node {node}")
        return Point(*self._xy[node])

    def neighbors(self, node: int) -> Dict[int, float]:
        """``neighbor -> segment length`` for one node."""
        return dict(self._adj.get(node, {}))

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate undirected edges once each as ``(a, b, length)``."""
        for a in sorted(self._adj):
            for b, w in sorted(self._adj[a].items()):
                if a < b:
                    yield (a, b, w)

    # ------------------------------------------------------------------
    # Shortest paths
    # ------------------------------------------------------------------
    def shortest_paths(self, source: int, cutoff: Optional[float] = None) -> Dict[int, float]:
        """Dijkstra distances from ``source`` to every reachable node.

        ``cutoff`` bounds the search radius (km): nodes farther than the
        cutoff are omitted, which is what the influence evaluation uses —
        beyond a few km the influence probability is negligible anyway.
        """
        if source not in self._xy:
            raise DataError(f"unknown source node {source}")
        dist: Dict[int, float] = {source: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        settled: set[int] = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            for nbr, w in self._adj[node].items():
                nd = d + w
                if cutoff is not None and nd > cutoff:
                    continue
                if nd < dist.get(nbr, math.inf):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return dist

    def shortest_path_length(self, a: int, b: int) -> float:
        """Network distance between two nodes (inf when disconnected)."""
        if b not in self._xy:
            raise DataError(f"unknown node {b}")
        return self.shortest_paths(a).get(b, math.inf)

    # ------------------------------------------------------------------
    # Snapping
    # ------------------------------------------------------------------
    def nearest_node(self, x: float, y: float) -> Tuple[int, float]:
        """Return ``(node, offset)`` of the network node closest to a point.

        ``offset`` is the Euclidean snap distance, added to network
        distances when evaluating off-network points.
        """
        if not self._xy:
            raise DataError("network has no nodes")
        best_node = -1
        best_d = math.inf
        for node, (nx, ny) in self._xy.items():
            d = math.hypot(nx - x, ny - y)
            if d < best_d:
                best_d = d
                best_node = node
        return best_node, best_d

    def snap_many(self, xy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised nearest-node snap for an ``(n, 2)`` array.

        Returns ``(node ids, offsets)`` as arrays.
        """
        if not self._xy:
            raise DataError("network has no nodes")
        ids = np.array(sorted(self._xy), dtype=np.int64)
        coords = np.array([self._xy[i] for i in ids.tolist()], dtype=float)
        dx = xy[:, 0][:, None] - coords[:, 0][None, :]
        dy = xy[:, 1][:, None] - coords[:, 1][None, :]
        d2 = dx * dx + dy * dy
        nearest = np.argmin(d2, axis=1)
        return ids[nearest], np.sqrt(d2[np.arange(xy.shape[0]), nearest])


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def grid_network(
    side_km: float,
    spacing_km: float,
    jitter: float = 0.0,
    drop_fraction: float = 0.0,
    seed: int = 0,
) -> RoadNetwork:
    """A Manhattan-style grid covering ``[0, side] x [0, side]``.

    ``jitter`` perturbs intersections (km); ``drop_fraction`` removes a
    random share of segments (one-way closures, rivers) while keeping the
    network connected by only dropping edges whose endpoints retain
    degree ≥ 2.
    """
    if spacing_km <= 0 or side_km <= 0:
        raise DataError("side_km and spacing_km must be positive")
    n = max(2, int(round(side_km / spacing_km)) + 1)
    rng = np.random.default_rng(seed)
    net = RoadNetwork()
    for i in range(n):
        for j in range(n):
            x = i * spacing_km + (rng.normal(0, jitter) if jitter else 0.0)
            y = j * spacing_km + (rng.normal(0, jitter) if jitter else 0.0)
            net.add_node(i * n + j, min(max(x, 0.0), side_km), min(max(y, 0.0), side_km))
    for i in range(n):
        for j in range(n):
            node = i * n + j
            if i + 1 < n:
                net.add_edge(node, (i + 1) * n + j)
            if j + 1 < n:
                net.add_edge(node, i * n + j + 1)
    if drop_fraction > 0:
        edges = list(net.edges())
        rng.shuffle(edges)
        to_drop = int(len(edges) * drop_fraction)
        for a, b, _ in edges[:to_drop]:
            if len(net._adj[a]) > 2 and len(net._adj[b]) > 2:
                del net._adj[a][b]
                del net._adj[b][a]
    return net


def radial_network(
    center: Point, rings: int, spokes: int, ring_spacing_km: float
) -> RoadNetwork:
    """A ring-and-spoke city: ``rings`` concentric rings, ``spokes`` radials."""
    if rings < 1 or spokes < 3:
        raise DataError("need rings >= 1 and spokes >= 3")
    net = RoadNetwork()
    net.add_node(0, center.x, center.y)
    node = 1
    previous_ring: List[int] = [0] * spokes
    for ring in range(1, rings + 1):
        radius = ring * ring_spacing_km
        current: List[int] = []
        for s in range(spokes):
            angle = 2 * math.pi * s / spokes
            net.add_node(node, center.x + radius * math.cos(angle),
                         center.y + radius * math.sin(angle))
            current.append(node)
            node += 1
        for s in range(spokes):
            net.add_edge(current[s], current[(s + 1) % spokes])  # ring
            net.add_edge(current[s], previous_ring[s])  # spoke segment
        previous_ring = current
    return net
