"""Time-aware influence: positions carry timestamps, facilities have hours.

The CLS literature the paper builds on includes time-aware variants
(TAILOR; MaxBRNN over time slots): a coffee kiosk only competes for the
positions users record while it is open.  This module adds the temporal
layer:

* :class:`TimeWindow` — a wrap-around hour-of-day interval;
* :class:`TimedUser` — a moving user whose positions carry hour labels;
* :func:`windowed_positions` / :class:`TimedInfluenceEvaluator` — the
  cumulative influence model restricted to the positions falling inside
  a facility's opening window.

With the full-day window the model reduces exactly to the base MC²LS
influence semantics (tested), so the temporal layer is a strict
generalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from ..entities import MovingUser
from ..exceptions import DataError
from ..influence import InfluenceEvaluator, ProbabilityFunction

HOURS_PER_DAY = 24


@dataclass(frozen=True, slots=True)
class TimeWindow:
    """A half-open hour-of-day interval ``[start, end)`` with wrap-around.

    ``TimeWindow(22, 6)`` covers the night hours 22, 23, 0 … 5.  The
    full-day window is ``TimeWindow(0, 24)`` (alias :data:`ALL_DAY`).
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if not 0 <= self.start < HOURS_PER_DAY:
            raise DataError(f"start hour must be in [0, 24), got {self.start}")
        if not 0 < self.end <= HOURS_PER_DAY:
            raise DataError(f"end hour must be in (0, 24], got {self.end}")

    @property
    def wraps(self) -> bool:
        """Whether the window crosses midnight."""
        return self.end <= self.start

    @property
    def duration(self) -> int:
        """Number of covered hours."""
        if self.wraps:
            return HOURS_PER_DAY - self.start + self.end
        return self.end - self.start

    def contains(self, hour: int) -> bool:
        """Whether an hour label falls inside the window."""
        hour %= HOURS_PER_DAY
        if self.wraps:
            return hour >= self.start or hour < self.end
        return self.start <= hour < self.end

    def mask(self, hours: np.ndarray) -> np.ndarray:
        """Vectorised membership over an hour-label array."""
        h = np.mod(hours, HOURS_PER_DAY)
        if self.wraps:
            return (h >= self.start) | (h < self.end)
        return (h >= self.start) & (h < self.end)

    def __str__(self) -> str:
        return f"{self.start:02d}-{self.end % HOURS_PER_DAY:02d}h"


ALL_DAY = TimeWindow(0, 24)
"""The always-open window; reduces the temporal model to base MC²LS."""


@dataclass(frozen=True)
class TimedUser:
    """A moving user whose positions carry hour-of-day labels.

    Attributes:
        user: The underlying :class:`MovingUser` (positions, MBR, uid).
        hours: ``(r,)`` integer array, ``hours[i]`` labelling
            ``user.positions[i]``.
    """

    user: MovingUser
    hours: np.ndarray = field(compare=False)

    def __post_init__(self) -> None:
        hours = np.asarray(self.hours, dtype=np.int64)
        if hours.shape != (self.user.r,):
            raise DataError(
                f"user {self.user.uid}: need {self.user.r} hour labels, "
                f"got shape {hours.shape}"
            )
        if ((hours < 0) | (hours >= HOURS_PER_DAY)).any():
            raise DataError(f"user {self.user.uid}: hour labels must be in [0, 24)")
        hours = np.ascontiguousarray(hours)
        hours.setflags(write=False)
        object.__setattr__(self, "hours", hours)

    @property
    def uid(self) -> int:
        """The user id."""
        return self.user.uid

    def positions_in(self, window: TimeWindow) -> np.ndarray:
        """The positions recorded during ``window`` (possibly empty)."""
        return self.user.positions[window.mask(self.hours)]


class TimedInfluenceEvaluator:
    """Influence decisions restricted to a facility's opening window."""

    def __init__(self, pf: ProbabilityFunction, tau: float, early_stopping: bool = True):
        self._inner = InfluenceEvaluator(pf, tau, early_stopping=early_stopping)

    @property
    def stats(self):
        """Work counters of the underlying evaluator."""
        return self._inner.stats

    def influences(
        self, vx: float, vy: float, user: TimedUser, window: TimeWindow
    ) -> bool:
        """Definition 2 over the positions recorded while ``v`` is open."""
        positions = user.positions_in(window)
        if positions.shape[0] == 0:
            return False
        return self._inner.influences(vx, vy, positions)


def attach_hours(
    users: Sequence[MovingUser],
    seed: int = 0,
    peaks: Tuple[Tuple[float, float], ...] = ((8.5, 1.5), (12.5, 1.0), (19.0, 2.0)),
) -> Tuple[TimedUser, ...]:
    """Label positions with realistic daily-rhythm hours.

    Hours are drawn from a mixture of Gaussians at the given
    ``(mean hour, std)`` peaks — commute, lunch, evening — mirroring the
    check-in time histograms of the LBS datasets.
    """
    rng = np.random.default_rng(seed)
    out = []
    means = np.array([p[0] for p in peaks])
    stds = np.array([p[1] for p in peaks])
    for user in users:
        which = rng.integers(len(peaks), size=user.r)
        hours = rng.normal(means[which], stds[which])
        out.append(TimedUser(user, np.mod(np.round(hours), HOURS_PER_DAY).astype(int)))
    return tuple(out)
