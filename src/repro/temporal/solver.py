"""Time-aware MC²LS: pick k sites *and* an opening window for each.

The decision variable becomes a ``(candidate, window)`` pair drawn from a
per-candidate window menu, with at most one window per site — a
partition-matroid constraint.  The objective is the evenly-split
competitive influence where a user counts as captured iff some selected
``(site, window)`` influences the positions recorded during that window,
and a competitor (with its own fixed hours) contends for a user iff it
influences them during *its* hours.

Greedy over a matroid guarantees a 1/2-approximation for monotone
submodular objectives (Fisher–Nemhauser–Wolsey) — weaker than the
uniform-matroid `1 − 1/e` of base MC²LS, and documented as such.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..competition import InfluenceTable
from ..entities import AbstractFacility
from ..exceptions import SolverError
from ..influence import ProbabilityFunction, paper_default_pf
from .model import ALL_DAY, TimeWindow, TimedUser


@dataclass(frozen=True)
class TimedPlacement:
    """One selected ``(candidate id, opening window)`` pair."""

    cid: int
    window: TimeWindow


@dataclass
class TimeAwareResult:
    """Outcome of a time-aware solve."""

    placements: Tuple[TimedPlacement, ...]
    objective: float
    gains: Tuple[float, ...]
    coverage: Dict[Tuple[int, str], Set[int]]


class TimeAwareMC2LS:
    """Greedy (site, window) selection under a partition matroid.

    Args:
        users: The timed population.
        facilities: Competitors, each open during ``competitor_window``.
        candidates: Candidate sites.
        windows: The opening-window menu offered to every candidate.
        k: Number of sites to open.
        tau: Influence threshold.
        pf: Distance-decay probability function.
        competitor_window: Competitors' (fixed) opening hours.
    """

    def __init__(
        self,
        users: Sequence[TimedUser],
        facilities: Sequence[AbstractFacility],
        candidates: Sequence[AbstractFacility],
        windows: Sequence[TimeWindow],
        k: int,
        tau: float = 0.7,
        pf: Optional[ProbabilityFunction] = None,
        competitor_window: TimeWindow = ALL_DAY,
    ):
        if not windows:
            raise SolverError("need at least one candidate window")
        if k < 1 or k > len(candidates):
            raise SolverError(f"k={k} infeasible for {len(candidates)} candidates")
        self.users = tuple(users)
        self.facilities = tuple(facilities)
        self.candidates = tuple(candidates)
        self.windows = tuple(windows)
        self.k = k
        self.tau = tau
        self.pf = pf or paper_default_pf()
        self.competitor_window = competitor_window

    # ------------------------------------------------------------------
    def _resolve(self) -> Tuple[Dict[Tuple[int, str], Set[int]], Dict[int, int]]:
        """Coverage per (candidate, window) and competitor counts per user."""
        from .model import TimedInfluenceEvaluator

        evaluator = TimedInfluenceEvaluator(self.pf, self.tau)
        coverage: Dict[Tuple[int, str], Set[int]] = {}
        for c in self.candidates:
            for window in self.windows:
                covered = {
                    u.uid
                    for u in self.users
                    if evaluator.influences(c.x, c.y, u, window)
                }
                coverage[(c.fid, str(window))] = covered
        competitor_count: Dict[int, int] = {}
        for u in self.users:
            competitor_count[u.uid] = sum(
                1
                for f in self.facilities
                if evaluator.influences(f.x, f.y, u, self.competitor_window)
            )
        return coverage, competitor_count

    def solve(self) -> TimeAwareResult:
        """Partition-matroid greedy over all (candidate, window) pairs."""
        coverage, competitor_count = self._resolve()
        weight = {uid: 1.0 / (count + 1) for uid, count in competitor_count.items()}

        selected: List[TimedPlacement] = []
        gains: List[float] = []
        covered: Set[int] = set()
        used_sites: Set[int] = set()
        options = sorted(coverage)  # deterministic tie-break: (cid, window)
        for _ in range(self.k):
            best_key: Optional[Tuple[int, str]] = None
            best_gain = -1.0
            for key in options:
                cid, _ = key
                if cid in used_sites:
                    continue
                gain = math.fsum(
                    weight[uid] for uid in coverage[key] - covered
                )
                if gain > best_gain:
                    best_gain = gain
                    best_key = key
            if best_key is None:
                break
            cid, window_str = best_key
            window = next(w for w in self.windows if str(w) == window_str)
            selected.append(TimedPlacement(cid, window))
            gains.append(best_gain)
            covered |= coverage[best_key]
            used_sites.add(cid)
        return TimeAwareResult(
            placements=tuple(selected),
            objective=math.fsum(gains),
            gains=tuple(gains),
            coverage=coverage,
        )

    # ------------------------------------------------------------------
    def as_influence_table(self, window: TimeWindow) -> InfluenceTable:
        """The base-model table when every candidate uses one window.

        With :data:`ALL_DAY` for candidates and competitors this matches
        the base MC²LS resolution exactly (the reduction test).
        """
        coverage, competitor_count = self._resolve_single(window)
        f_o = {
            uid: set(range(count))  # only the cardinality matters
            for uid, count in competitor_count.items()
        }
        return InfluenceTable(coverage, f_o)

    def _resolve_single(
        self, window: TimeWindow
    ) -> Tuple[Dict[int, Set[int]], Dict[int, int]]:
        from .model import TimedInfluenceEvaluator

        evaluator = TimedInfluenceEvaluator(self.pf, self.tau)
        coverage = {
            c.fid: {
                u.uid for u in self.users if evaluator.influences(c.x, c.y, u, window)
            }
            for c in self.candidates
        }
        competitor_count = {
            u.uid: sum(
                1
                for f in self.facilities
                if evaluator.influences(f.x, f.y, u, self.competitor_window)
            )
            for u in self.users
        }
        return coverage, competitor_count
