"""Time-aware extension: opening windows over timestamped positions."""

from .model import (
    ALL_DAY,
    HOURS_PER_DAY,
    TimedInfluenceEvaluator,
    TimedUser,
    TimeWindow,
    attach_hours,
)
from .solver import TimeAwareMC2LS, TimeAwareResult, TimedPlacement

__all__ = [
    "ALL_DAY",
    "HOURS_PER_DAY",
    "TimeAwareMC2LS",
    "TimeAwareResult",
    "TimedInfluenceEvaluator",
    "TimedPlacement",
    "TimedUser",
    "TimeWindow",
    "attach_hours",
]
