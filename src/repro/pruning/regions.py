"""IA and NIB pruning regions (PINOCCHIO, used by adapted k-CIFP).

These are the *facility-pruning* regions of Wang et al.'s PINOCCHIO,
derived from a user's position MBR and the influence radius ``mMR(τ, r)``:

* **IA (Influence Arcs)** — the locus of abstract facilities that
  *necessarily* influence the user: every position is within ``mMR`` of
  the facility.  Because positions lie inside the user MBR, a facility
  whose distance to the *farthest MBR corner* is at most ``mMR`` qualifies
  (Corollary 1).
* **NIB (Non-Influence Boundary)** — the locus outside of which a facility
  *cannot* influence the user: if even the *nearest point of the MBR* is
  farther than ``mMR``, no position can be within reach (Corollary 2).
  The NIB shape is the Minkowski sum of the MBR with a disc of radius
  ``mMR``; its own MBR is the rectangle used for R-tree range queries.

Facilities inside NIB but not inside IA fall in the interstitial region of
Fig. 2(a) and must be verified with the exact cumulative probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..entities import MovingUser
from ..geo import Point, Rect
from ..influence import ProbabilityFunction, min_max_radius


@dataclass(frozen=True)
class UserPruningRegions:
    """The IA/NIB machinery of one user for a fixed ``(τ, PF)``.

    Attributes:
        user: The moving user.
        mmr: The user's influence radius ``mMR(τ, r)``.
    """

    user: MovingUser
    mmr: float

    # ------------------------------------------------------------------
    # Query rectangles (what goes into the R-tree range query)
    # ------------------------------------------------------------------
    def nib_rect(self) -> Rect:
        """MBR of the NIB region: the user MBR expanded by ``mMR``.

        Any facility outside this rectangle is certainly outside NIB and
        therefore cannot influence the user.
        """
        return self.user.mbr.expanded(self.mmr)

    # ------------------------------------------------------------------
    # Point classification
    # ------------------------------------------------------------------
    def ia_contains(self, p: Point) -> bool:
        """``True`` when a facility at ``p`` *necessarily* influences the user.

        Sound via the MBR: if the farthest MBR corner is within ``mMR``,
        all positions are.  When ``mMR`` is 0 (threshold unreachable for
        this position count) the IA region is empty.
        """
        if self.mmr <= 0.0:
            return False
        return self.user.mbr.max_distance_to_point(p) <= self.mmr

    def nib_contains(self, p: Point) -> bool:
        """``True`` when a facility at ``p`` might influence the user.

        Exact NIB shape test (rounded rectangle): distance from ``p`` to
        the user MBR at most ``mMR``.  ``False`` certifies non-influence.
        """
        return self.user.mbr.min_distance_to_point(p) <= self.mmr

    def classify(self, p: Point) -> str:
        """Classify a facility location: ``"influenced"`` (IA),
        ``"pruned"`` (outside NIB) or ``"verify"`` (interstitial)."""
        if self.ia_contains(p):
            return "influenced"
        if not self.nib_contains(p):
            return "pruned"
        return "verify"


def regions_for(
    user: MovingUser, tau: float, pf: ProbabilityFunction
) -> UserPruningRegions:
    """Build the IA/NIB regions of ``user`` for threshold ``τ`` and ``PF``."""
    return UserPruningRegions(user, min_max_radius(tau, user.r, pf))
