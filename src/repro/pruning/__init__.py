"""Pruning rules: IA / NIB (facility-pruning) and IS / NIR (user-pruning)."""

from .regions import UserPruningRegions, regions_for
from .rules import (
    FacilityClassification,
    IQuadTreeStatsView,
    PinocchioPruner,
    is_rule_confirms,
    measure_iquadtree_pruning,
    measure_pinocchio_pruning,
    nir_rule_prunes,
)
from .stats import PruningStats

__all__ = [
    "FacilityClassification",
    "IQuadTreeStatsView",
    "PinocchioPruner",
    "PruningStats",
    "UserPruningRegions",
    "is_rule_confirms",
    "measure_iquadtree_pruning",
    "measure_pinocchio_pruning",
    "nir_rule_prunes",
    "regions_for",
]
