"""The four pruning rules as first-class, measurable objects.

Two families:

* **Facility-pruning** (PINOCCHIO; used by adapted k-CIFP): for each user,
  the IA region confirms facilities and the NIB region eliminates them —
  :class:`PinocchioPruner` runs both against an R-tree of facilities.
* **User-pruning** (this paper's contribution): the IS rule (Lemma 2)
  confirms users within a square by position count; the NIR rule (Lemma 3)
  eliminates users with no position near the square.  The stateless
  single-square forms live here for direct testing and for the rule-level
  benchmarks (Fig. 8); the hierarchical, memoised deployment lives in
  :class:`repro.spatial.iquadtree.IQuadTree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..entities import AbstractFacility, MovingUser
from ..geo import Rect, RoundedSquare, Square
from ..influence import ProbabilityFunction
from ..spatial.rtree import RTree
from .regions import UserPruningRegions, regions_for
from .stats import PruningStats


# ----------------------------------------------------------------------
# Single-square forms of the paper's rules (Lemmas 2 and 3)
# ----------------------------------------------------------------------
def is_rule_confirms(
    square: Rect,
    eta: int,
    positions: np.ndarray,
) -> bool:
    """Lemma 2 (IS rule): ``True`` when any facility inside ``square``
    necessarily influences the user.

    ``square`` must be a square whose diagonal is the ``d̂`` from which
    ``eta = ⌈η(τ, PF, d̂)⌉`` was computed; the rule holds when at least
    ``eta`` of the user's positions fall inside the square.
    """
    if eta >= 2**62:
        return False
    return square.count_inside(positions) >= eta


def nir_rule_prunes(
    square: Rect,
    nir: float,
    positions: np.ndarray,
    exact_rounded: bool = False,
) -> bool:
    """Lemma 3 (NIR rule): ``True`` when no facility inside ``square`` can
    influence the user.

    The sound test is "no position inside the NIR rounded square"; the
    paper relaxes to the rounded square's MBR (rectangle ``EFGH``), which
    is what ``exact_rounded=False`` checks.
    """
    if exact_rounded:
        shape = RoundedSquare(Square.from_rect(square), nir)
        return not shape.contains_mask(positions).any()
    expanded = square.expanded(nir)
    return not expanded.contains_mask(positions).any()


# ----------------------------------------------------------------------
# PINOCCHIO facility pruning (IA + NIB over an R-tree)
# ----------------------------------------------------------------------
@dataclass
class FacilityClassification:
    """Outcome of IA/NIB pruning of all facilities against one user."""

    confirmed: List[AbstractFacility]
    verify: List[AbstractFacility]


class PinocchioPruner:
    """Runs the IA and NIB rules for users against an indexed facility set.

    Args:
        facilities: The abstract facilities to classify (candidates or
            competitors — Algorithm 1 uses one pruner per set).
        tau: Influence threshold.
        pf: Distance-decay probability function.
        use_ia: When ``False``, the IA confirmation step is skipped and
            everything inside NIB goes to verification (this is how the
            IQT algorithm consumes NIB — the paper drops IA because the IS
            rule subsumes it, cf. Table I).
    """

    def __init__(
        self,
        facilities: Sequence[AbstractFacility],
        tau: float,
        pf: ProbabilityFunction,
        use_ia: bool = True,
        max_entries: int = 8,
    ):
        self.facilities = list(facilities)
        self.tau = tau
        self.pf = pf
        self.use_ia = use_ia
        self.stats = PruningStats()
        self.range_queries = 0
        self._tree = RTree.from_points(
            ((f.location, f) for f in self.facilities), max_entries=max_entries
        )

    def regions_for_user(self, user: MovingUser) -> UserPruningRegions:
        """Build the user's IA/NIB regions under this pruner's ``(τ, PF)``."""
        return regions_for(user, self.tau, self.pf)

    def classify_user(self, user: MovingUser) -> FacilityClassification:
        """Classify every indexed facility against ``user``.

        Facilities not returned in either list were pruned by NIB.
        """
        regions = self.regions_for_user(user)
        self.range_queries += 1
        in_nib_rect = self._tree.range_query(regions.nib_rect())
        confirmed: List[AbstractFacility] = []
        verify: List[AbstractFacility] = []
        for facility in in_nib_rect:
            # The range query uses the NIB MBR; refine with the exact
            # rounded-rectangle NIB shape.
            if not regions.nib_contains(facility.location):
                continue
            if self.use_ia and regions.ia_contains(facility.location):
                confirmed.append(facility)
            else:
                verify.append(facility)
        self.stats.add(
            confirmed=len(confirmed),
            verify=len(verify),
            pruned=len(self.facilities) - len(confirmed) - len(verify),
        )
        return FacilityClassification(confirmed, verify)


# ----------------------------------------------------------------------
# Rule-level measurement helpers (Fig. 8 compares these head-to-head)
# ----------------------------------------------------------------------
def measure_pinocchio_pruning(
    users: Sequence[MovingUser],
    facilities: Sequence[AbstractFacility],
    tau: float,
    pf: ProbabilityFunction,
    use_ia: bool = True,
) -> PruningStats:
    """Classify all (facility, user) pairs with IA/NIB and return the stats."""
    pruner = PinocchioPruner(facilities, tau, pf, use_ia=use_ia)
    for user in users:
        pruner.classify_user(user)
    return pruner.stats


def measure_iquadtree_pruning(
    users: Sequence[MovingUser],
    facilities: Sequence[AbstractFacility],
    tau: float,
    pf: ProbabilityFunction,
    d_hat: float,
    region: Rect,
    exact_rounded: bool = False,
) -> Tuple[PruningStats, "IQuadTreeStatsView"]:
    """Classify all (facility, user) pairs with the IS/NIR rules.

    Returns aggregate :class:`PruningStats` plus a view of the underlying
    IQuad-tree counters (cache hits etc.) for the deeper analyses.
    """
    from ..spatial.iquadtree import IQuadTree  # local import avoids a cycle

    tree = IQuadTree(users, d_hat=d_hat, tau=tau, pf=pf, region=region,
                     exact_rounded=exact_rounded)
    for facility in facilities:
        tree.traverse(facility.x, facility.y)
    stats = PruningStats(
        confirmed=tree.stats.pairs_is_confirmed,
        pruned=tree.stats.pairs_nir_pruned,
        verify=tree.stats.pairs_to_verify,
    )
    return stats, IQuadTreeStatsView(
        traversals=tree.stats.traversals,
        leaf_cache_hits=tree.stats.leaf_cache_hits,
        nodes=tree.node_count,
        leaves=tree.leaf_count,
    )


@dataclass
class IQuadTreeStatsView:
    """Read-only snapshot of IQuad-tree traversal counters."""

    traversals: int
    leaf_cache_hits: int
    nodes: int
    leaves: int
