"""Counters describing how a pruning strategy classified (facility, user) pairs.

Every pruning experiment in the paper (Figs. 7–8, 15–16) reports the
fraction of work a rule saved; these counters are the common currency the
benchmark harness aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PruningStats:
    """Three-way pair classification counts.

    ``confirmed`` pairs were certified influenced without probability
    evaluation; ``pruned`` pairs were certified *not* influenced; ``verify``
    pairs fell through to the exact cumulative-probability check.
    """

    confirmed: int = 0
    pruned: int = 0
    verify: int = 0

    @property
    def total(self) -> int:
        """All classified pairs."""
        return self.confirmed + self.pruned + self.verify

    @property
    def confirmed_fraction(self) -> float:
        """Share of pairs certified influenced (IS/IA effectiveness)."""
        return self.confirmed / self.total if self.total else 0.0

    @property
    def pruned_fraction(self) -> float:
        """Share of pairs certified uninfluenced (NIR/NIB effectiveness)."""
        return self.pruned / self.total if self.total else 0.0

    @property
    def verify_fraction(self) -> float:
        """Share of pairs needing exact verification (the residual cost)."""
        return self.verify / self.total if self.total else 0.0

    @property
    def saved_fraction(self) -> float:
        """Share of pairs decided without verification — the headline number."""
        return 1.0 - self.verify_fraction if self.total else 0.0

    def add(self, confirmed: int = 0, pruned: int = 0, verify: int = 0) -> None:
        """Accumulate classified pairs."""
        self.confirmed += confirmed
        self.pruned += pruned
        self.verify += verify

    def merge(self, other: "PruningStats") -> None:
        """Accumulate another stats object into this one."""
        self.confirmed += other.confirmed
        self.pruned += other.pruned
        self.verify += other.verify

    def as_row(self) -> dict:
        """Flat dict for benchmark reporting."""
        return {
            "confirmed": self.confirmed,
            "pruned": self.pruned,
            "verify": self.verify,
            "confirmed_frac": round(self.confirmed_fraction, 4),
            "pruned_frac": round(self.pruned_fraction, 4),
            "verify_frac": round(self.verify_fraction, 4),
        }
