"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by library code derive from :class:`ReproError` so
callers can catch everything the package raises with a single handler while
still being able to distinguish configuration problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GeometryError(ReproError):
    """Raised for degenerate or invalid geometric constructions."""


class ProbabilityError(ReproError):
    """Raised when a probability value or threshold is outside ``[0, 1]``."""


class IndexError_(ReproError):
    """Raised when a spatial index is queried or built inconsistently.

    Named with a trailing underscore to avoid shadowing the built-in
    :class:`IndexError`.
    """


class SolverError(ReproError):
    """Raised when a solver is configured with an infeasible instance."""


class DataError(ReproError):
    """Raised when a dataset file or generator specification is invalid."""


class CaptureError(SolverError):
    """Raised when a capture model is misconfigured or misused.

    Covers unknown model names in a :class:`~repro.capture.CaptureSpec`,
    invalid parameters (``worlds`` outside the bitmask width, non-finite
    ``beta``), and asking a set-independent-only execution path to run a
    set-aware model.
    """


class ServiceError(ReproError):
    """Raised for serving-engine misuse (no snapshot, unknown solver, …)."""


class QueryCancelledError(ServiceError):
    """Raised inside a query when its cancellation token has been fired."""


class DeadlineExceededError(QueryCancelledError):
    """Raised inside a query when its deadline passes mid-execution."""


class EngineSaturatedError(ServiceError):
    """Raised at admission when the scheduler's queue is already full."""


class TuningError(ServiceError):
    """Raised by the workload record/replay and autotuning layer.

    Covers malformed or version-incompatible trace files, replaying a
    trace whose dataset spec cannot be rebuilt, and calibrating or
    searching with an empty/degenerate configuration space.
    """


class CampaignError(ReproError):
    """Raised by the campaign runner (:mod:`repro.campaign`).

    Covers malformed campaign specs (unknown solvers, capture models or
    axis names), result-store records whose realized dataset content
    hash contradicts their key, and driving a runner against a store
    that belongs to a different campaign.
    """


class ShardError(ServiceError):
    """Raised when the sharded execution layer fails mid-flight.

    Covers worker-process death, broken coordinator↔worker pipes and
    shared-memory segments vanishing under a live coordinator.  Raising
    it always follows teardown: the coordinator terminates its workers
    and unlinks its shared segments before surfacing the error.
    """
