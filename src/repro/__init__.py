"""``repro`` — MC²LS: collective location selection in competition.

A from-scratch reproduction of "MC²LS: Towards Efficient Collective
Location Selection in Competition" (Wang et al., TKDE 2025): the
mobility-aware cumulative influence model, the evenly-split competition
model, the IQuad-tree index with the IS/NIR pruning rules, the adapted
k-CIFP and baseline solvers, calibrated dataset generators and a full
benchmark harness for every table and figure of the paper.

Quickstart::

    from repro import MC2LSProblem, IQTSolver
    from repro.data import california_like

    dataset = california_like(n_users=500)
    result = IQTSolver().solve(MC2LSProblem(dataset, k=5, tau=0.7))
    print(result.selected, result.objective)
"""

from .competition import EvenlySplitModel, InfluenceTable, cinf_group
from .entities import AbstractFacility, MovingUser, SpatialDataset, candidate, existing
from .exceptions import (
    DataError,
    GeometryError,
    IndexError_,
    ProbabilityError,
    ReproError,
    SolverError,
)
from .geo import Point, Rect
from .influence import InfluenceEvaluator, SigmoidPF, paper_default_pf
from .service import (
    DatasetSnapshot,
    QueryResult,
    SelectionEngine,
    SelectionQuery,
)
from .solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    CapacitatedGreedySolver,
    ExactSolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
    SolverResult,
)
from .spatial import IQuadTree, QuadTree, RTree

__version__ = "1.0.0"

__all__ = [
    "AbstractFacility",
    "AdaptedKCIFPSolver",
    "BaselineGreedySolver",
    "CapacitatedGreedySolver",
    "DataError",
    "DatasetSnapshot",
    "EvenlySplitModel",
    "ExactSolver",
    "GeometryError",
    "IQTSolver",
    "IQTVariant",
    "IQuadTree",
    "IndexError_",
    "InfluenceEvaluator",
    "InfluenceTable",
    "MC2LSProblem",
    "MovingUser",
    "Point",
    "ProbabilityError",
    "QuadTree",
    "QueryResult",
    "RTree",
    "Rect",
    "ReproError",
    "SelectionEngine",
    "SelectionQuery",
    "SigmoidPF",
    "SolverError",
    "SolverResult",
    "SpatialDataset",
    "candidate",
    "cinf_group",
    "existing",
    "paper_default_pf",
]
