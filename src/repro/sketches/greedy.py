"""Sketch-based approximate greedy — the k-CIFP acceleration.

For the *uncompeted* coverage objective ``inf(G) = |Ω_G|`` (the setting
of the k-CIFP paper), each candidate's covered-user set is summarised as
an FM sketch; the greedy's marginal gain for candidate ``c`` given the
running union sketch ``S`` is estimated as
``estimate(S ∪ sketch(c)) − estimate(S)`` — O(m) per evaluation no
matter how large the coverage sets grow.

The trade is exactness for memory/time at scale: the selection can
deviate from the exact greedy when two candidates' gains fall within the
sketch's noise (σ ≈ 1.3/√m relative), which the ablation bench
quantifies against the exact coverage greedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..competition import InfluenceTable
from ..exceptions import SolverError
from .fm import FMSketch


@dataclass(frozen=True)
class SketchedOutcome:
    """Selection of the sketch-based coverage greedy.

    Attributes:
        selected: Candidate ids in greedy order.
        estimated_coverage: The sketch's estimate of ``|Ω_G|``.
        exact_coverage: The true ``|Ω_G|`` of the returned selection
            (cheap to compute once at the end, for reporting).
        gains: Estimated marginal gains per round.
    """

    selected: Tuple[int, ...]
    estimated_coverage: float
    exact_coverage: int
    gains: Tuple[float, ...]


def sketched_coverage_greedy(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    n_registers: int = 256,
    seed: int = 0,
) -> SketchedOutcome:
    """Greedy maximisation of ``|Ω_G|`` using FM sketches.

    Args:
        table: Resolved influence relationships (only ``omega_c`` is read
            — the plain-coverage objective ignores competition weights).
        candidate_ids: Candidates to choose from.
        k: Selection size.
        n_registers: Sketch size; more registers → estimates closer to the
            exact greedy.
        seed: Sketch hash seed.
    """
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    sketches: Dict[int, FMSketch] = {
        cid: FMSketch.of(table.omega_c.get(cid, ()), n_registers, seed)
        for cid in candidate_ids
    }
    union = FMSketch(n_registers, seed)
    current = 0.0
    remaining = sorted(candidate_ids)
    selected: List[int] = []
    gains: List[float] = []
    for _ in range(k):
        best_cid = None
        best_gain = -1.0
        for cid in remaining:
            gain = union.union(sketches[cid]).estimate() - current
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        gains.append(best_gain)
        union.union_update(sketches[best_cid])
        current = union.estimate()
        remaining.remove(best_cid)
    covered: Set[int] = set()
    for cid in selected:
        covered |= table.omega_c.get(cid, set())
    return SketchedOutcome(
        selected=tuple(selected),
        estimated_coverage=current,
        exact_coverage=len(covered),
        gains=tuple(gains),
    )


def exact_coverage_greedy(
    table: InfluenceTable, candidate_ids: Sequence[int], k: int
) -> Tuple[Tuple[int, ...], int]:
    """Exact greedy for ``|Ω_G|`` (the sketched greedy's reference)."""
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    covered: Set[int] = set()
    remaining = sorted(candidate_ids)
    selected: List[int] = []
    for _ in range(k):
        best_cid = None
        best_gain = -1
        for cid in remaining:
            gain = len(table.omega_c.get(cid, set()) - covered)
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        covered |= table.omega_c.get(best_cid, set())
        remaining.remove(best_cid)
    return tuple(selected), len(covered)
