"""Sketch-based approximate greedy — the k-CIFP acceleration.

For the *uncompeted* coverage objective ``inf(G) = |Ω_G|`` (the setting
of the k-CIFP paper), each candidate's covered-user set is summarised as
an FM sketch; the greedy's marginal gain for candidate ``c`` given the
running union sketch ``S`` is estimated as
``estimate(S ∪ sketch(c)) − estimate(S)`` — O(m) per evaluation no
matter how large the coverage sets grow.

The trade is exactness for memory/time at scale: the selection can
deviate from the exact greedy when two candidates' gains fall within the
sketch's noise (σ ≈ 1.3/√m relative), which the ablation bench
quantifies against the exact coverage greedy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from ..competition import InfluenceTable
from ..exceptions import SolverError
from .fm import _ALPHA, FMSketch


def _estimate_from_counts(m: int, empty: int, total: int) -> float:
    """:meth:`FMSketch.estimate` as a function of its integer aggregates.

    The estimate depends on the registers only through ``empty`` (count
    of untouched registers) and ``total`` (sum of ``rank + 1`` over the
    touched ones); replicating the same scalar float expressions here
    makes estimates computed from vectorized register maxima bit-equal
    to building the union sketch and calling ``estimate()``.
    """
    if empty == m:
        return 0.0
    mean = total / m
    raw = m * (2.0**mean) * _ALPHA
    if empty > 0 and (raw < 2.5 * m or 2 * empty > m):
        return m * math.log(m / empty)
    return raw


@dataclass(frozen=True)
class SketchedOutcome:
    """Selection of the sketch-based coverage greedy.

    Attributes:
        selected: Candidate ids in greedy order.
        estimated_coverage: The sketch's estimate of ``|Ω_G|``.
        exact_coverage: The true ``|Ω_G|`` of the returned selection
            (cheap to compute once at the end, for reporting).
        gains: Estimated marginal gains per round.
    """

    selected: Tuple[int, ...]
    estimated_coverage: float
    exact_coverage: int
    gains: Tuple[float, ...]


def sketched_coverage_greedy(
    table: InfluenceTable,
    candidate_ids: Sequence[int],
    k: int,
    n_registers: int = 256,
    seed: int = 0,
    fast_select: bool = True,
) -> SketchedOutcome:
    """Greedy maximisation of ``|Ω_G|`` using FM sketches.

    Estimated marginal gains are clamped at zero: a union sketch covers
    the running union register-wise, but the estimator's small-range
    correction is not monotone across its branch boundary, so raw
    estimate differences can go negative — previously, a round where
    every remaining gain fell at or below the ``-1.0`` sentinel crashed
    the selection outright.

    Args:
        table: Resolved influence relationships (only ``omega_c`` is read
            — the plain-coverage objective ignores competition weights).
        candidate_ids: Candidates to choose from.
        k: Selection size.
        n_registers: Sketch size; more registers → estimates closer to the
            exact greedy.
        seed: Sketch hash seed.
        fast_select: Evaluate each round's estimates from register-wise
            maxima over a dense ``(n, m)`` register matrix instead of
            building a throwaway union sketch per candidate — the
            estimates (and hence the selection) are bit-identical;
            ``False`` restores the sketch-object loop.
    """
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    sketches: Dict[int, FMSketch] = {
        cid: FMSketch.of(table.omega_c.get(cid, ()), n_registers, seed)
        for cid in candidate_ids
    }
    if fast_select:
        selected, gains, current = _sketched_rounds_fast(
            sketches, sorted(candidate_ids), k, n_registers
        )
    else:
        selected, gains, current = _sketched_rounds(
            sketches, sorted(candidate_ids), k, n_registers, seed
        )
    covered: Set[int] = set()
    for cid in selected:
        covered |= table.omega_c.get(cid, set())
    return SketchedOutcome(
        selected=tuple(selected),
        estimated_coverage=current,
        exact_coverage=len(covered),
        gains=tuple(gains),
    )


def _sketched_rounds(
    sketches: Dict[int, FMSketch],
    remaining: List[int],
    k: int,
    n_registers: int,
    seed: int,
) -> Tuple[List[int], List[float], float]:
    """Scalar reference loop: one throwaway union sketch per evaluation."""
    union = FMSketch(n_registers, seed)
    current = 0.0
    selected: List[int] = []
    gains: List[float] = []
    for _ in range(k):
        best_cid = None
        best_gain = 0.0
        for cid in remaining:
            gain = max(0.0, union.union(sketches[cid]).estimate() - current)
            if best_cid is None or gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        gains.append(best_gain)
        union.union_update(sketches[best_cid])
        current = union.estimate()
        remaining.remove(best_cid)
    return selected, gains, current


def _sketched_rounds_fast(
    sketches: Dict[int, FMSketch],
    remaining_ids: List[int],
    k: int,
    n_registers: int,
) -> Tuple[List[int], List[float], float]:
    """Vectorized rounds: register maxima in place, no union objects.

    A round's estimates need only each candidate's ``empty``/``total``
    aggregates over ``max(union, registers)``; those are integer
    reductions over a dense matrix, and the float estimate itself is
    formed with the exact scalar arithmetic of ``FMSketch.estimate``,
    so every gain — and therefore the selection — is bit-equal to the
    scalar loop's.
    """
    cand = np.array(remaining_ids, dtype=np.int64)
    regs = np.array(
        [sketches[int(cid)]._registers for cid in cand], dtype=np.int64
    )
    union_regs = np.full(n_registers, -1, dtype=np.int64)
    current = 0.0
    alive = np.ones(len(cand), dtype=bool)
    selected: List[int] = []
    gains: List[float] = []
    for _ in range(k):
        live = np.flatnonzero(alive)
        mx = np.maximum(regs[live], union_regs)
        touched = mx >= 0
        empties = n_registers - touched.sum(axis=1)
        totals = np.where(touched, mx + 1, 0).sum(axis=1)
        best_i = None
        best_gain = 0.0
        for i, e, t in zip(
            live.tolist(), empties.tolist(), totals.tolist()
        ):  # ascending index == ascending cid
            gain = max(
                0.0, _estimate_from_counts(n_registers, e, t) - current
            )
            if best_i is None or gain > best_gain:
                best_gain = gain
                best_i = i
        assert best_i is not None
        selected.append(int(cand[best_i]))
        gains.append(best_gain)
        np.maximum(union_regs, regs[best_i], out=union_regs)
        touched_u = union_regs >= 0
        current = _estimate_from_counts(
            n_registers,
            int(n_registers - touched_u.sum()),
            int(np.where(touched_u, union_regs + 1, 0).sum()),
        )
        alive[best_i] = False
    return selected, gains, current


def exact_coverage_greedy(
    table: InfluenceTable, candidate_ids: Sequence[int], k: int
) -> Tuple[Tuple[int, ...], int]:
    """Exact greedy for ``|Ω_G|`` (the sketched greedy's reference)."""
    if k < 1 or k > len(candidate_ids):
        raise SolverError(f"k={k} infeasible for {len(candidate_ids)} candidates")
    covered: Set[int] = set()
    remaining = sorted(candidate_ids)
    selected: List[int] = []
    for _ in range(k):
        best_cid = None
        best_gain = -1
        for cid in remaining:
            gain = len(table.omega_c.get(cid, set()) - covered)
            if gain > best_gain:
                best_gain = gain
                best_cid = cid
        assert best_cid is not None
        selected.append(best_cid)
        covered |= table.omega_c.get(best_cid, set())
        remaining.remove(best_cid)
    return tuple(selected), len(covered)
