"""Flajolet–Martin sketches for approximate coverage counting.

The k-CIFP paper this work extends accelerated its greedy with FM
sketches: instead of materialising the union ``Ω_G`` at every greedy
step, each candidate's covered-user set is summarised as a small sketch,
unions become register-wise maxima, and cardinalities are estimated in
O(m) regardless of coverage size.

The implementation is the LogLog refinement of FM (Durand–Flajolet):
``m`` registers, each remembering the highest rank (trailing-zero count
of the hash) among the items routed to it; the distinct count is
estimated as ``α·m·2^(mean register value)`` with ``α ≈ 0.39701``.
Hashing is a deterministic 64-bit mix (splitmix64) keyed by a seed, so
sketches built anywhere from the same ids agree exactly.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from ..exceptions import DataError

# LogLog estimator constant (Durand-Flajolet), asymptotic alpha for the
# max-rank register scheme used here; empirically calibrated within 3 %.
_ALPHA = 0.39701
_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """Deterministic 64-bit mix (splitmix64 finaliser)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


def _rank(x: int) -> int:
    """Position of the lowest set bit (trailing zeros); 64 for x == 0."""
    if x == 0:
        return 64
    return (x & -x).bit_length() - 1


class FMSketch:
    """A LogLog-style FM distinct-count sketch over integer ids.

    Args:
        n_registers: Number of registers ``m`` (power of two).  More
            registers tighten the estimate (σ ≈ 0.78/√m relative error).
        seed: Hash seed; sketches only combine when seeds match.
    """

    __slots__ = ("n_registers", "seed", "_registers", "_shift")

    def __init__(self, n_registers: int = 64, seed: int = 0):
        if n_registers < 1 or n_registers & (n_registers - 1):
            raise DataError(
                f"n_registers must be a positive power of two, got {n_registers}"
            )
        self.n_registers = n_registers
        self.seed = seed
        self._registers: List[int] = [-1] * n_registers
        self._shift = n_registers.bit_length() - 1

    # ------------------------------------------------------------------
    def add(self, item: int) -> None:
        """Insert an integer id (idempotent, as for any distinct counter)."""
        h = _splitmix64(item ^ _splitmix64(self.seed))
        register = h & (self.n_registers - 1)
        rank = _rank(h >> self._shift)
        if rank > self._registers[register]:
            self._registers[register] = rank

    def add_many(self, items: Iterable[int]) -> None:
        """Insert a collection of ids."""
        for item in items:
            self.add(item)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether no id has ever been inserted (all registers at −1)."""
        return all(r < 0 for r in self._registers)

    def estimate(self) -> float:
        """Estimated number of distinct inserted ids."""
        # Registers store the max rank seen (LogLog scheme): O(1) updates
        # and union-by-max, estimated with the Durand-Flajolet constant.
        # Untouched registers hold the -1 sentinel; they contribute
        # rank + 1 = 0 to the mean (never 2^-1), and an all-empty sketch
        # short-circuits to 0 before any mean is formed.
        empty = sum(1 for r in self._registers if r < 0)
        if empty == self.n_registers:
            return 0.0
        total = sum(r + 1 for r in self._registers if r >= 0)
        mean = total / self.n_registers
        raw = self.n_registers * (2.0**mean) * _ALPHA
        # Small-range correction (linear counting on empty registers): the
        # raw LogLog estimator biases high while registers are untouched.
        # A mostly-empty sketch always takes it — with only a handful of
        # occupied registers one unluckily high rank can push `raw` past
        # the 2.5·m gate and report thousands of items for a near-empty
        # set, while the occupancy count stays a faithful estimator.
        if empty > 0 and (raw < 2.5 * self.n_registers or 2 * empty > self.n_registers):
            return self.n_registers * math.log(self.n_registers / empty)
        return raw

    def union(self, other: "FMSketch") -> "FMSketch":
        """Sketch of the union of the two underlying sets (register max)."""
        self._check_compatible(other)
        out = FMSketch(self.n_registers, self.seed)
        out._registers = [
            max(a, b) for a, b in zip(self._registers, other._registers)
        ]
        return out

    def union_update(self, other: "FMSketch") -> None:
        """In-place union."""
        self._check_compatible(other)
        self._registers = [
            max(a, b) for a, b in zip(self._registers, other._registers)
        ]

    def copy(self) -> "FMSketch":
        """An independent copy."""
        out = FMSketch(self.n_registers, self.seed)
        out._registers = list(self._registers)
        return out

    def _check_compatible(self, other: "FMSketch") -> None:
        if self.n_registers != other.n_registers or self.seed != other.seed:
            raise DataError(
                "sketches must share register count and seed to combine"
            )

    @staticmethod
    def of(items: Iterable[int], n_registers: int = 64, seed: int = 0) -> "FMSketch":
        """Build a sketch directly from ids."""
        sketch = FMSketch(n_registers, seed)
        sketch.add_many(items)
        return sketch
