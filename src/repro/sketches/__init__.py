"""FM sketches and sketch-based approximate coverage greedy (k-CIFP lineage)."""

from .fm import FMSketch
from .greedy import SketchedOutcome, exact_coverage_greedy, sketched_coverage_greedy

__all__ = [
    "FMSketch",
    "SketchedOutcome",
    "exact_coverage_greedy",
    "sketched_coverage_greedy",
]
