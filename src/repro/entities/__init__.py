"""Entity model: moving users, abstract facilities and datasets."""

from .dataset import SpatialDataset
from .facility import AbstractFacility, FacilityKind, candidate, existing
from .user import MovingUser

__all__ = [
    "AbstractFacility",
    "FacilityKind",
    "MovingUser",
    "SpatialDataset",
    "candidate",
    "existing",
]
