"""Problem-instance container: users, competitors and candidates together.

A :class:`SpatialDataset` bundles the three entity collections of an MC²LS
instance plus derived quantities every solver needs (region MBR, maximum
position count ``r_max``).  Datasets are immutable after construction;
experiment sweeps derive new datasets via the ``with_*`` / ``subsample``
methods instead of mutating shared state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DataError
from ..geo import Rect
from ..influence.batch import PositionArena
from .facility import AbstractFacility, FacilityKind
from .user import MovingUser


@dataclass(frozen=True)
class SpatialDataset:
    """An immutable MC²LS problem instance (without k / τ / PF).

    Attributes:
        users: The moving-user population ``Ω``.
        facilities: Existing competitor facilities ``F``.
        candidates: Candidate locations ``C``.
        name: Human-readable label used in benchmark output.
    """

    users: tuple[MovingUser, ...]
    facilities: tuple[AbstractFacility, ...]
    candidates: tuple[AbstractFacility, ...]
    name: str = "dataset"
    _region: Rect = field(init=False, repr=False, compare=False)
    _r_max: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.users:
            raise DataError("a dataset needs at least one user")
        for f in self.facilities:
            if f.kind is not FacilityKind.EXISTING:
                raise DataError(f"facility {f.fid} is not of kind EXISTING")
        for c in self.candidates:
            if c.kind is not FacilityKind.CANDIDATE:
                raise DataError(f"candidate {c.fid} is not of kind CANDIDATE")
        uids = [u.uid for u in self.users]
        if len(set(uids)) != len(uids):
            raise DataError("duplicate user ids in dataset")
        region = self.users[0].mbr
        for u in self.users[1:]:
            region = region.union(u.mbr)
        for v in list(self.facilities) + list(self.candidates):
            region = region.union(Rect.from_point(v.location))
        object.__setattr__(self, "_region", region)
        object.__setattr__(self, "_r_max", max(u.r for u in self.users))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def region(self) -> Rect:
        """MBR of everything in the dataset (users and facilities)."""
        return self._region

    @property
    def r_max(self) -> int:
        """Maximum position count over all users (drives ``NIR``)."""
        return self._r_max

    @property
    def n_positions(self) -> int:
        """Total number of recorded positions across all users."""
        return sum(u.r for u in self.users)

    @property
    def abstract_facilities(self) -> tuple[AbstractFacility, ...]:
        """All abstract facilities ``C ∪ F`` (candidates first)."""
        return self.candidates + self.facilities

    @property
    def arena(self) -> PositionArena:
        """CSR packing of all users' positions, built lazily and cached.

        The batched verification kernel
        (:class:`repro.influence.BatchInfluenceEvaluator`) reads user
        segments out of this arena; derived datasets (``with_*`` /
        ``subsample_*``) build their own.
        """
        cached = getattr(self, "_arena", None)
        if cached is None:
            cached = PositionArena.from_users(self.users)
            object.__setattr__(self, "_arena", cached)
        return cached

    def describe(self) -> str:
        """One-line summary used by benchmark reports."""
        return (
            f"{self.name}: |Ω|={len(self.users)} positions={self.n_positions} "
            f"|F|={len(self.facilities)} |C|={len(self.candidates)} "
            f"region={self.region.width:.1f}x{self.region.height:.1f} km"
        )

    # ------------------------------------------------------------------
    # Derivation helpers for experiment sweeps
    # ------------------------------------------------------------------
    def with_users(self, users: Iterable[MovingUser]) -> "SpatialDataset":
        """Return a copy with a different user population."""
        return SpatialDataset(tuple(users), self.facilities, self.candidates, self.name)

    def with_candidates(self, candidates: Iterable[AbstractFacility]) -> "SpatialDataset":
        """Return a copy with a different candidate set."""
        return SpatialDataset(self.users, self.facilities, tuple(candidates), self.name)

    def with_facilities(self, facilities: Iterable[AbstractFacility]) -> "SpatialDataset":
        """Return a copy with a different competitor set."""
        return SpatialDataset(self.users, tuple(facilities), self.candidates, self.name)

    def subsample_users(self, n: int, seed: int = 0) -> "SpatialDataset":
        """Return a copy keeping ``n`` users sampled without replacement."""
        if not 1 <= n <= len(self.users):
            raise DataError(f"cannot sample {n} of {len(self.users)} users")
        rng = np.random.default_rng(seed)
        idx = rng.choice(len(self.users), size=n, replace=False)
        return self.with_users(self.users[i] for i in np.sort(idx))

    def subsample_positions(self, r: int, seed: int = 0) -> "SpatialDataset":
        """Keep users with at least ``r`` positions, sampled down to ``r``.

        This mirrors the paper's "effect of r" protocol (Figs. 15–16):
        choose users with over ``r`` positions and randomly sample exactly
        ``r`` from each.
        """
        rng = np.random.default_rng(seed)
        kept = [u.subsampled(r, rng) for u in self.users if u.r >= r]
        if not kept:
            raise DataError(f"no user has >= {r} positions")
        return self.with_users(kept)

    @staticmethod
    def build(
        users: Sequence[MovingUser],
        facilities: Sequence[AbstractFacility],
        candidates: Sequence[AbstractFacility],
        name: str = "dataset",
    ) -> "SpatialDataset":
        """Convenience constructor accepting any sequences."""
        return SpatialDataset(tuple(users), tuple(facilities), tuple(candidates), name)
