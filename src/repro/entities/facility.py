"""Facilities and candidate locations.

Both existing (competitor) facilities and candidate locations are
stationary points; the paper calls their union *abstract facilities*
``v ∈ C ∪ F``.  We model that with a shared base class and two concrete
kinds so code can be written once over abstract facilities while identity
(candidate vs competitor) stays explicit where it matters — the competitive
influence computation treats the two differently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..geo import Point


class FacilityKind(enum.Enum):
    """Whether an abstract facility is a candidate site or a competitor."""

    CANDIDATE = "candidate"
    EXISTING = "existing"


@dataclass(frozen=True, slots=True)
class AbstractFacility:
    """A stationary abstract facility ``v ∈ C ∪ F``.

    Attributes:
        fid: Identifier, unique within its kind (candidate ids and facility
            ids live in separate namespaces, matching the paper's notation
            ``c_i`` / ``f_j``).
        location: The facility's fixed position in km-space.
        kind: Candidate or existing competitor.
    """

    fid: int
    location: Point
    kind: FacilityKind

    @property
    def x(self) -> float:
        """Horizontal coordinate (km)."""
        return self.location.x

    @property
    def y(self) -> float:
        """Vertical coordinate (km)."""
        return self.location.y

    @property
    def is_candidate(self) -> bool:
        """``True`` for candidate sites."""
        return self.kind is FacilityKind.CANDIDATE


def candidate(fid: int, x: float, y: float) -> AbstractFacility:
    """Build a candidate location ``c_fid`` at ``(x, y)``."""
    return AbstractFacility(fid, Point(x, y), FacilityKind.CANDIDATE)


def existing(fid: int, x: float, y: float) -> AbstractFacility:
    """Build an existing competitor facility ``f_fid`` at ``(x, y)``."""
    return AbstractFacility(fid, Point(x, y), FacilityKind.EXISTING)
