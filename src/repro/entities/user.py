"""Moving users — multisets of activity positions (paper §III-A).

A moving user is a series of ``r`` recorded positions in the plane.  The
order of positions is irrelevant to the influence model (the cumulative
probability is a product over positions), so a user is effectively a point
multiset with an identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import DataError
from ..geo import Point, Rect


@dataclass(frozen=True)
class MovingUser:
    """A moving user with an id and an immutable ``(r, 2)`` position array.

    Attributes:
        uid: Stable integer identifier, unique within a dataset.
        positions: ``(r, 2)`` float array of activity positions (km-space).
            The array is marked read-only at construction so cached
            derived values (the MBR) can never go stale.
    """

    uid: int
    positions: np.ndarray
    _mbr: Rect = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=float)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] == 0:
            raise DataError(
                f"user {self.uid}: positions must be a non-empty (r, 2) array, "
                f"got shape {pos.shape}"
            )
        if not np.isfinite(pos).all():
            raise DataError(f"user {self.uid}: positions contain NaN/inf")
        pos = np.ascontiguousarray(pos)
        pos.setflags(write=False)
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "_mbr", Rect.from_array(pos))

    @property
    def r(self) -> int:
        """Number of recorded positions."""
        return self.positions.shape[0]

    @property
    def mbr(self) -> Rect:
        """Minimum bounding rectangle of the user's positions (cached)."""
        return self._mbr

    def points(self) -> list[Point]:
        """Return the positions as :class:`Point` objects (slow path)."""
        return [Point(float(x), float(y)) for x, y in self.positions]

    def subsampled(self, r: int, rng: np.random.Generator) -> "MovingUser":
        """Return a copy keeping ``r`` positions sampled without replacement.

        Used by the "effect of r" experiments (Figs. 15–16), which fix the
        user population and vary how many positions each user contributes.
        """
        if not 1 <= r <= self.r:
            raise DataError(
                f"user {self.uid}: cannot sample {r} of {self.r} positions"
            )
        idx = rng.choice(self.r, size=r, replace=False)
        return MovingUser(self.uid, self.positions[np.sort(idx)])

    def __hash__(self) -> int:
        return hash(self.uid)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MovingUser):
            return NotImplemented
        return self.uid == other.uid

    @staticmethod
    def from_points(uid: int, points: Sequence[Point]) -> "MovingUser":
        """Build a user from a sequence of :class:`Point` objects."""
        if not points:
            raise DataError(f"user {uid}: needs at least one position")
        return MovingUser(uid, np.array([[p.x, p.y] for p in points], dtype=float))
