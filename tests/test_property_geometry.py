"""Property-based tests of the geometry algebra and Morton codes.

These invariants are what the spatial indexes silently rely on; a
violation anywhere would corrupt pruning soundness downstream.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Point, Rect
from repro.spatial import QuadTree
from repro.spatial.iquadtree import morton_code

coords = st.floats(min_value=-500, max_value=500, allow_nan=False, width=32)


@st.composite
def rects(draw):
    x1, x2 = sorted((draw(coords), draw(coords)))
    y1, y2 = sorted((draw(coords), draw(coords)))
    return Rect(x1, y1, x2, y2)


@st.composite
def points(draw):
    return Point(draw(coords), draw(coords))


class TestRectAlgebra:
    @given(rects(), rects())
    @settings(max_examples=100)
    def test_union_contains_both(self, a, b):
        u = a.union(b)
        assert u.contains_rect(a) and u.contains_rect(b)

    @given(rects(), rects())
    @settings(max_examples=100)
    def test_union_commutative(self, a, b):
        assert a.union(b) == b.union(a)

    @given(rects(), rects())
    @settings(max_examples=100)
    def test_intersection_symmetric_and_contained(self, a, b):
        i1 = a.intersection(b)
        i2 = b.intersection(a)
        assert i1 == i2
        if i1 is not None:
            assert a.contains_rect(i1) and b.contains_rect(i1)

    @given(rects(), rects())
    @settings(max_examples=100)
    def test_intersects_iff_intersection_exists(self, a, b):
        assert a.intersects(b) == (a.intersection(b) is not None)

    @given(rects(), points())
    @settings(max_examples=100)
    def test_min_le_max_distance(self, r, p):
        assert r.min_distance_to_point(p) <= r.max_distance_to_point(p) + 1e-9

    @given(rects(), points())
    @settings(max_examples=100)
    def test_containment_iff_zero_min_distance(self, r, p):
        inside = r.contains_point(p)
        assert inside == (r.min_distance_to_point(p) == 0.0)

    @given(rects(), st.floats(min_value=0, max_value=100))
    @settings(max_examples=100)
    def test_expand_monotone(self, r, margin):
        assert r.expanded(margin).contains_rect(r)
        assert r.expanded(margin).area >= r.area

    @given(rects(), rects())
    @settings(max_examples=100)
    def test_enlargement_non_negative(self, a, b):
        assert a.enlargement(b) >= -1e-9

    @given(rects())
    @settings(max_examples=50)
    def test_corners_inside(self, r):
        for c in r.corners():
            assert r.contains_point(c)
        assert r.diagonal == pytest.approx(
            r.corners()[0].distance_to(r.corners()[2])
        )


class TestMortonCodes:
    @given(
        ix=st.integers(0, 2**16 - 1),
        iy=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=200)
    def test_roundtrip_via_bit_extraction(self, ix, iy):
        code = int(morton_code(ix, iy))
        rx = ry = 0
        for bit in range(16):
            rx |= ((code >> (2 * bit)) & 1) << bit
            ry |= ((code >> (2 * bit + 1)) & 1) << bit
        assert (rx, ry) == (ix, iy)

    @given(
        ix=st.integers(0, 2**15 - 1),
        iy=st.integers(0, 2**15 - 1),
        level_drop=st.integers(1, 8),
    )
    @settings(max_examples=200)
    def test_truncation_gives_parent(self, ix, iy, level_drop):
        """Shifting a Morton code by 2*L bits yields the L-level ancestor."""
        code = int(morton_code(ix, iy))
        parent = int(morton_code(ix >> level_drop, iy >> level_drop))
        assert code >> (2 * level_drop) == parent

    def test_vectorised_matches_scalar(self):
        rng = np.random.default_rng(0)
        ix = rng.integers(0, 2**16, size=200)
        iy = rng.integers(0, 2**16, size=200)
        vec = morton_code(ix, iy)
        for i in range(200):
            assert int(vec[i]) == int(morton_code(int(ix[i]), int(iy[i])))

    def test_distinct_cells_distinct_codes(self):
        codes = set()
        for ix in range(32):
            for iy in range(32):
                codes.add(int(morton_code(ix, iy)))
        assert len(codes) == 32 * 32


class TestQuadTreeNearest:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(5)
        region = Rect(0, 0, 100, 100)
        pts = [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, (150, 2))]
        qt = QuadTree(region, capacity=8)
        for i, p in enumerate(pts):
            qt.insert(p, i)
        q = Point(42.0, 57.0)
        expected = sorted(range(150), key=lambda i: q.distance_to(pts[i]))[:5]
        assert qt.nearest(q, k=5) == expected

    def test_k_larger_than_population(self):
        qt = QuadTree(Rect(0, 0, 10, 10))
        qt.insert(Point(1, 1), "a")
        assert qt.nearest(Point(0, 0), k=3) == ["a"]

    def test_validation(self):
        from repro.exceptions import IndexError_

        qt = QuadTree(Rect(0, 0, 10, 10))
        with pytest.raises(IndexError_):
            qt.nearest(Point(0, 0), k=0)
