"""Tests for the standalone SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.svg_charts import LineChart, _log_ticks, _nice_ticks
from repro.exceptions import DataError

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestTicks:
    def test_nice_ticks_cover_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] >= 0.0 and ticks[-1] <= 10.0 + 1e-9
        assert len(ticks) >= 2

    def test_nice_ticks_degenerate(self):
        assert _nice_ticks(5.0, 5.0)  # must not loop forever or be empty

    def test_log_ticks_powers_of_ten(self):
        ticks = _log_ticks(0.02, 30.0)
        assert ticks == [0.1, 1.0, 10.0]


class TestLineChart:
    def make_chart(self, log_y=True):
        chart = LineChart("runtime vs users", x_label="users",
                          y_label="seconds", log_y=log_y)
        chart.add_series("baseline", [(100, 1.0), (200, 2.2), (300, 3.1)])
        chart.add_series("iqt", [(100, 0.1), (200, 0.15), (300, 0.2)])
        return chart

    def test_renders_valid_xml(self):
        root = parse(self.make_chart().render())
        assert root.tag == f"{SVG_NS}svg"

    def test_contains_series_paths_and_legend(self):
        root = parse(self.make_chart().render())
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 2
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "baseline" in texts and "iqt" in texts
        assert "runtime vs users" in texts

    def test_points_drawn(self):
        root = parse(self.make_chart().render())
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 6

    def test_log_and_linear_differ(self):
        log_svg = self.make_chart(log_y=True).render()
        lin_svg = self.make_chart(log_y=False).render()
        assert log_svg != lin_svg

    def test_validation(self):
        chart = LineChart("empty")
        with pytest.raises(DataError):
            chart.render()
        with pytest.raises(DataError):
            chart.add_series("bad", [])
        with pytest.raises(DataError):
            LineChart("log", log_y=True).add_series("neg", [(1, -1.0)])

    def test_from_rows(self):
        rows = [
            {"users": 100, "baseline_s": 1.0, "iqt_s": 0.1},
            {"users": 200, "baseline_s": 2.0, "iqt_s": 0.2},
        ]
        chart = LineChart.from_rows(rows, "users", ["baseline_s", "iqt_s"],
                                    title="Fig 10")
        root = parse(chart.render())
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "baseline" in texts and "iqt" in texts  # _s suffix stripped

    def test_save(self, tmp_path):
        path = tmp_path / "chart.svg"
        self.make_chart().save(path)
        assert path.read_text().startswith("<svg")

    def test_single_x_value(self):
        chart = LineChart("point", log_y=False)
        chart.add_series("s", [(5, 1.0), (5, 2.0)])
        parse(chart.render())  # must not divide by zero
