"""Tests for dataset/result serialisation and synthetic check-in files."""

import numpy as np
import pytest

from repro.data import (
    load_checkins,
    load_dataset_npz,
    load_result_json,
    result_to_dict,
    save_dataset_npz,
    save_result_json,
    write_checkin_file,
)
from repro.exceptions import DataError
from repro.solvers import IQTSolver, MC2LSProblem
from tests.conftest import build_instance


class TestNpzRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        ds = build_instance(seed=3, n_users=15, n_candidates=6, n_facilities=4)
        path = tmp_path / "ds.npz"
        save_dataset_npz(ds, path)
        back = load_dataset_npz(path)
        assert back.name == ds.name
        assert len(back.users) == len(ds.users)
        by_uid = {u.uid: u for u in back.users}
        for u in ds.users:
            assert np.allclose(np.sort(by_uid[u.uid].positions, axis=0),
                               np.sort(u.positions, axis=0))
        assert [(f.fid, f.x, f.y) for f in back.facilities] == [
            (f.fid, f.x, f.y) for f in ds.facilities
        ]
        assert [(c.fid, c.x, c.y) for c in back.candidates] == [
            (c.fid, c.x, c.y) for c in ds.candidates
        ]

    def test_roundtrip_solves_identically(self, tmp_path):
        ds = build_instance(seed=4, n_users=20)
        path = tmp_path / "ds.npz"
        save_dataset_npz(ds, path)
        back = load_dataset_npz(path)
        a = IQTSolver().solve(MC2LSProblem(ds, k=3, tau=0.5))
        b = IQTSolver().solve(MC2LSProblem(back, k=3, tau=0.5))
        assert a.selected == b.selected
        assert a.objective == pytest.approx(b.objective)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_dataset_npz(tmp_path / "nope.npz")

    def test_no_facilities_edge_case(self, tmp_path):
        ds = build_instance(seed=5, n_users=5, n_facilities=0)
        path = tmp_path / "ds.npz"
        save_dataset_npz(ds, path)
        back = load_dataset_npz(path)
        assert back.facilities == ()


class TestResultJson:
    def test_roundtrip(self, tmp_path):
        ds = build_instance(seed=6, n_users=15)
        result = IQTSolver().solve(MC2LSProblem(ds, k=3, tau=0.5))
        path = tmp_path / "result.json"
        save_result_json(result, path)
        loaded = load_result_json(path)
        assert loaded["selected"] == list(result.selected)
        assert loaded["objective"] == pytest.approx(result.objective)
        assert set(loaded["coverage"]) == {str(c) for c in result.selected}
        assert loaded["evaluations"] == result.evaluation.total_evaluations

    def test_dict_is_json_safe(self):
        ds = build_instance(seed=7, n_users=10)
        result = IQTSolver().solve(MC2LSProblem(ds, k=2, tau=0.5))
        import json

        json.dumps(result_to_dict(result))  # must not raise

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_result_json(tmp_path / "nope.json")


class TestWriteCheckinFile:
    def test_file_loads_back(self, tmp_path):
        path = tmp_path / "checkins.txt"
        n = write_checkin_file(path, n_users=40, seed=1)
        assert n > 0
        data = load_checkins(path)
        assert 1 <= len(data.users) <= 40
        assert data.pois.shape[0] > 0

    def test_clustered_flag_changes_output(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        write_checkin_file(a, n_users=30, seed=2, clustered=False)
        write_checkin_file(b, n_users=30, seed=2, clustered=True)
        assert a.read_text() != b.read_text()

    def test_deterministic(self, tmp_path):
        a = tmp_path / "a.txt"
        b = tmp_path / "b.txt"
        write_checkin_file(a, n_users=20, seed=3)
        write_checkin_file(b, n_users=20, seed=3)
        assert a.read_text() == b.read_text()

    def test_validation(self, tmp_path):
        with pytest.raises(DataError):
            write_checkin_file(tmp_path / "x.txt", n_users=0)
