"""Tests for the experiment definitions at miniature scale.

The bench suite runs these functions at full scale; here they run on
tiny cached populations (via the scale env vars) so the experiment
*logic* — row structure, invariants, agreement checks — is covered by
the fast test suite too.
"""

import pytest

from repro.bench import datasets
from repro.bench.experiments import (
    ablation_early_stopping,
    ablation_exact_rounded,
    ablation_greedy,
    fig07a_rule_effect,
    fig07b_variant_effect,
    fig08_rule_comparison,
    fig09_distributions,
    fig10_vary_users,
    fig13_vary_tau,
    fig14_vary_k,
    fig_dhat_leaf_diagonal,
    table1_iqt_vs_pino,
    table2_index_build,
)


@pytest.fixture(autouse=True)
def tiny_bench(monkeypatch):
    """Shrink the cached bench populations for fast experiment runs."""
    monkeypatch.setenv("REPRO_BENCH_USERS_C", "120")
    monkeypatch.setenv("REPRO_BENCH_USERS_N", "100")
    datasets.population.cache_clear()
    datasets.dataset.cache_clear()
    yield
    datasets.population.cache_clear()
    datasets.dataset.cache_clear()


class TestRuleExperiments:
    def test_fig07a_rows(self):
        rows = fig07a_rule_effect("N")
        assert len(rows) == 5  # one per tau
        for row in rows:
            total = (
                row["IS_confirmed_frac"]
                + row["NIR_pruned_frac"]
                + row["verify_frac"]
            )
            assert total == pytest.approx(1.0)

    def test_fig07b_monotone_variants(self):
        rows = fig07b_variant_effect("N")
        for row in rows:
            assert row["iqt_saved_frac"] >= row["iqt-c_saved_frac"] - 1e-9
            assert row["iqt-pino_saved_frac"] >= row["iqt_saved_frac"] - 1e-9

    def test_fig08_fractions_bounded(self):
        rows = fig08_rule_comparison("C")
        for row in rows:
            for key in ("IS_confirmed", "IA_confirmed", "NIR_pruned", "NIB_pruned"):
                assert 0.0 <= row[key] <= 1.0


class TestDatasetExperiments:
    def test_fig09_contrast(self):
        rows = fig09_distributions()
        by = {r["dataset"]: r for r in rows}
        assert by["N-like"]["gini"] > by["C-like"]["gini"]

    def test_table2_per_object_costs(self):
        rows = table2_index_build()
        for row in rows:
            assert row["IQuadTree_s"] > 0
            assert row["RT_ms_per_obj"] > 0


class TestRuntimeSweeps:
    def test_fig10_row_shape_and_agreement(self):
        rows = fig10_vary_users("N")
        assert len(rows) == 5
        assert rows[-1]["users"] > rows[0]["users"]
        for row in rows:
            for name in ("baseline", "k-cifp", "iqt-c", "iqt"):
                assert row[f"{name}_s"] > 0
                assert row[f"{name}_evals"] >= 0

    def test_fig13_baseline_flat(self):
        rows = fig13_vary_tau("N")
        times = [r["baseline_s"] for r in rows]
        assert max(times) < 4 * min(times)

    def test_fig14_contains_all_k(self):
        rows = fig14_vary_k("N")
        assert [r["k"] for r in rows] == [5, 10, 15, 20, 25]

    def test_table1_shape(self):
        rows = table1_iqt_vs_pino("N")
        assert [r["abstract_facilities"] for r in rows] == [300, 500, 700, 900, 1100]

    def test_dhat_rows(self):
        rows = fig_dhat_leaf_diagonal("N")
        assert [r["d_hat_km"] for r in rows] == [1.0, 1.5, 2.0, 2.5]
        for row in rows:
            assert 0 <= row["index_share"] <= 1


class TestAblations:
    def test_early_stopping_touches_fewer(self):
        rows = {r["early_stopping"]: r for r in ablation_early_stopping("N")}
        assert rows[True]["positions_touched"] <= rows[False]["positions_touched"]
        assert rows[True]["evaluations"] == rows[False]["evaluations"]

    def test_exact_rounded_prunes_no_less(self):
        rows = {r["exact_rounded"]: r for r in ablation_exact_rounded("N")}
        assert rows[True]["pruned_frac"] >= rows[False]["pruned_frac"] - 1e-9

    def test_greedy_ablation_invariants(self):
        row = ablation_greedy("N")[0]
        assert row["lazy_evals"] <= row["eager_evals"]
        assert row["guarantee"] < row["greedy_over_exact"] <= 1.0 + 1e-9
