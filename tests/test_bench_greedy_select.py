"""Smoke test: the greedy-selection microbenchmark must run and record.

Invokes ``benchmarks/bench_micro_core_ops.py --bench greedy --smoke`` the
way a user would (as a subprocess) and asserts the trajectory point has
the selection-identity checks green and the speedup above the smoke
floor.  The smoke run writes to a temporary path so the committed
full-scale ``BENCH_greedy_select.json`` at the repo root (>= 50k users,
>= 500 candidates) is not overwritten by test runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_smoke_records_trajectory_point(tmp_path):
    out_path = tmp_path / "BENCH_greedy_select.json"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "benchmarks" / "bench_micro_core_ops.py"),
            "--bench",
            "greedy",
            "--smoke",
            "--out",
            str(out_path),
        ],
        capture_output=True,
        text=True,
        timeout=300,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert out_path.exists()
    payload = json.loads(out_path.read_text())
    assert payload["benchmark"] == "greedy_select"
    assert payload["n_users"] >= 5000
    assert payload["n_candidates"] >= 100
    assert payload["selections_equal"] is True
    assert payload["gains_equal"] is True
    assert payload["speedup"] >= 2.0


def test_committed_trajectory_point_is_full_scale():
    """The recorded repo-root point meets the acceptance floor."""
    payload = json.loads((REPO_ROOT / "BENCH_greedy_select.json").read_text())
    assert payload["n_users"] >= 50_000
    assert payload["n_candidates"] >= 500
    assert payload["selections_equal"] is True
    assert payload["gains_equal"] is True
    assert payload["speedup"] >= 5.0
