"""Shard planning and shard-additivity of the selection kernels.

The distributed greedy's correctness rests on two facts, property-tested
here without any worker processes:

* per-shard ``screened_gains`` summed across shards stays within the
  merged tolerance of the exact whole-matrix gain, and
* per-shard distinct-weight live counts summed across shards reproduce
  the whole-matrix ``exact_gain`` **bit-for-bit** through
  :func:`~repro.solvers.merged_exact_gain` — so a merged greedy round
  (ascending-id ``gain > best`` scan) picks the same winner as
  ``coverage_select``.
"""

import numpy as np
import pytest

from repro.competition import InfluenceTable
from repro.exceptions import SolverError
from repro.service.sharding import ShardPlan, ShardedCoverageMatrix
from repro.solvers import CoverageMatrix, coverage_select, merged_exact_gain
from repro.solvers.coverage import _SUM_ULP


def _random_matrix(rng, n_users=400, n_candidates=25):
    sizes = np.clip(
        rng.lognormal(mean=np.log(n_users / 8.0), sigma=0.9, size=n_candidates),
        1,
        n_users,
    ).astype(np.int64)
    omega = {
        cid: set(rng.choice(n_users, size=int(sizes[cid]), replace=False).tolist())
        for cid in range(n_candidates)
    }
    f_o = {
        uid: set(range(500, 500 + int(c)))
        for uid, c in enumerate(rng.integers(0, 5, size=n_users).tolist())
    }
    table = InfluenceTable.from_mappings(omega, f_o)
    return table, CoverageMatrix(table, list(range(n_candidates)))


def _shards(matrix, boundaries):
    """Build per-shard views of ``matrix`` for the given row cuts."""
    uw, winv = np.unique(matrix.weights, return_inverse=True)
    winv = np.ascontiguousarray(winv.astype(np.int64))
    plan = ShardPlan(tuple(boundaries))
    shards = [
        ShardedCoverageMatrix.from_global_arrays(
            matrix.candidate_ids,
            matrix.user_ids,
            matrix.weights,
            matrix.indptr,
            matrix.col,
            winv,
            int(uw.shape[0]),
            lo,
            hi,
        )
        for lo, hi in plan
    ]
    return uw, shards


def _random_boundaries(rng, n_users, n_shards):
    cuts = np.sort(rng.choice(n_users + 1, size=n_shards - 1, replace=True))
    return [0, *cuts.tolist(), n_users]


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
def test_balanced_plan_partitions_all_rows():
    rng = np.random.default_rng(0)
    for n, shards in [(1, 1), (7, 3), (100, 4), (100, 1), (1000, 7)]:
        costs = rng.lognormal(0, 1, size=n)
        plan = ShardPlan.balanced(costs, shards)
        assert plan.n_shards == shards
        bounds = plan.boundaries
        assert bounds[0] == 0 and bounds[-1] == n
        assert all(a <= b for a, b in zip(bounds, bounds[1:]))
        # Every row lands in exactly one shard.
        assert sum(hi - lo for lo, hi in plan) == n
        # Enough rows -> every shard is non-empty.
        assert all(hi > lo for lo, hi in plan)


def test_balanced_plan_pads_empty_tail_shards():
    """More shards than rows: the tail shards are empty, never dropped —
    a fixed-size worker fleet must receive one shard each."""
    plan = ShardPlan.balanced([1.0, 1.0, 1.0], 5)
    assert plan.n_shards == 5
    sizes = [hi - lo for lo, hi in plan]
    assert sizes == [1, 1, 1, 0, 0]


def test_balanced_plan_tracks_cost_skew():
    # All the cost in the first rows: the first shard must be small.
    costs = np.zeros(100)
    costs[:10] = 100.0
    costs[10:] = 1.0
    plan = ShardPlan.balanced(costs, 2)
    lo, hi = plan.shard(0)
    assert hi - lo < 50


def test_balanced_plan_rejects_zero_rows():
    with pytest.raises(SolverError):
        ShardPlan.balanced([], 2)


# ----------------------------------------------------------------------
# Shard additivity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(5))
def test_screened_gains_shard_additive_within_tolerance(seed):
    """Merged screened intervals always contain the exact gain."""
    rng = np.random.default_rng(seed)
    table, matrix = _random_matrix(rng)
    n_users = matrix.n_users
    uw, shards = _shards(matrix, _random_boundaries(rng, n_users, rng.integers(2, 6)))
    covered = rng.random(n_users) < 0.3
    js = np.arange(len(matrix.candidate_ids), dtype=np.int64)

    g = np.zeros(js.shape[0])
    t = np.zeros(js.shape[0])
    for shard in shards:
        sg, st = shard.screened_gains(js, covered[shard.lo : shard.hi])
        g += sg
        t += st
    t += len(shards) * _SUM_ULP * g

    for i, j in enumerate(js.tolist()):
        exact = matrix.exact_gain(j, covered)
        assert g[i] - t[i] <= exact <= g[i] + t[i]


@pytest.mark.parametrize("seed", range(5))
def test_merged_exact_counts_match_exact_gain_bitwise(seed):
    """Summed per-shard live counts reproduce exact_gain bit-for-bit."""
    rng = np.random.default_rng(100 + seed)
    table, matrix = _random_matrix(rng)
    n_users = matrix.n_users
    uw, shards = _shards(matrix, _random_boundaries(rng, n_users, rng.integers(2, 6)))
    covered = rng.random(n_users) < 0.4

    for j in range(len(matrix.candidate_ids)):
        counts = sum(
            shard.exact_live_counts(j, covered[shard.lo : shard.hi])
            for shard in shards
        )
        merged = merged_exact_gain(uw, counts)
        assert merged == matrix.exact_gain(j, covered)


@pytest.mark.parametrize("seed", range(3))
def test_merged_greedy_rounds_match_coverage_select(seed):
    """A merged greedy (exact confirm + ascending-id scan over shards)
    selects identically to the single-process kernel, tie-breaks
    included."""
    rng = np.random.default_rng(200 + seed)
    table, matrix = _random_matrix(rng, n_users=300, n_candidates=20)
    n_users = matrix.n_users
    k = 6
    uw, shards = _shards(matrix, _random_boundaries(rng, n_users, 4))

    covered = [s.new_covered_mask() for s in shards]
    in_play = np.ones(len(matrix.candidate_ids), dtype=bool)
    selected, gains = [], []
    for _ in range(k):
        best_j, best_gain = -1, -1.0
        for j in np.flatnonzero(in_play).tolist():  # ascending candidate id
            counts = sum(
                s.exact_live_counts(j, covered[i]) for i, s in enumerate(shards)
            )
            gain = merged_exact_gain(uw, counts)
            if gain > best_gain:
                best_gain, best_j = gain, j
        selected.append(matrix.candidate_ids[best_j])
        gains.append(best_gain)
        in_play[best_j] = False
        for i, s in enumerate(shards):
            s.cover(best_j, covered[i])

    ref = coverage_select(table, list(matrix.candidate_ids), k)
    assert tuple(selected) == ref.selected
    assert tuple(gains) == ref.gains
    assert sum(gains) == ref.objective


def test_degenerate_shards_are_harmless():
    """Empty shards contribute zero gains and zero counts."""
    rng = np.random.default_rng(7)
    table, matrix = _random_matrix(rng, n_users=50, n_candidates=8)
    uw, shards = _shards(matrix, [0, 0, 25, 25, 50, 50])
    covered = np.zeros(50, dtype=bool)
    js = np.arange(8, dtype=np.int64)
    empties = [s for s in shards if s.hi == s.lo]
    assert empties
    for s in empties:
        g, t = s.screened_gains(js, covered[s.lo : s.hi])
        assert not g.any() and not t.any()
        assert not s.exact_live_counts(0, covered[s.lo : s.hi]).any()


# ----------------------------------------------------------------------
# CSR payload contract (mappability into SharedArrayStore)
# ----------------------------------------------------------------------
def test_csr_arrays_contract_and_roundtrip():
    rng = np.random.default_rng(3)
    table, matrix = _random_matrix(rng, n_users=120, n_candidates=10)
    payload = matrix.csr_arrays()
    assert payload["user_ids"].dtype == np.int64
    assert payload["weights"].dtype == np.float64
    assert payload["indptr"].dtype == np.int64
    assert payload["col"].dtype == np.int64
    for arr in payload.values():
        assert arr.flags.c_contiguous
    rebuilt = CoverageMatrix.from_csr_arrays(
        matrix.candidate_ids, **payload, table=table
    )
    ref = matrix.select(4)
    out = rebuilt.select(4)
    assert out.selected == ref.selected and out.gains == ref.gains


def test_restrict_and_patched_stay_contiguous():
    rng = np.random.default_rng(4)
    table, matrix = _random_matrix(rng, n_users=120, n_candidates=10)
    sub = matrix.restrict(list(range(0, 10, 2)))
    for arr in sub.csr_arrays().values():
        assert arr.flags.c_contiguous
