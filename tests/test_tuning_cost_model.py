"""Cost model: affine fits, calibration, the exact cache simulation.

Also covers the degenerate-input satellite: ``compute_stats`` and
``cost_features`` must return defined zeros (never divide by zero) on
empty or candidate-free populations.
"""

import pytest

from repro.data import california_like, compute_stats, cost_features
from repro.exceptions import TuningError
from repro.tuning import CostModel, EngineConfig, record_canned
from repro.tuning.cost_model import _fit_affine

SMALL = dict(n_users=50, n_candidates=8, n_facilities=16, seed=3)


def _toy_model(resolve=0.010, select=0.001, hit=1e-5):
    """A hand-built model: resolve/select constant per call, so predicted
    totals count cache events exactly."""
    return CostModel(
        resolve_coeff={True: (resolve, 0.0), False: (2 * resolve, 0.0)},
        select_coeff={True: (select, 0.0), False: (2 * select, 0.0)},
        hit_seconds=hit,
    )


# ----------------------------------------------------------------------
# Affine fitting
# ----------------------------------------------------------------------
class TestFitAffine:
    def test_exact_affine_recovered(self):
        xs = [10.0, 20.0, 40.0]
        ys = [0.001 + 2e-5 * x for x in xs]
        c0, c1 = _fit_affine(xs, ys)
        assert c0 == pytest.approx(0.001, rel=1e-6)
        assert c1 == pytest.approx(2e-5, rel=1e-6)

    def test_coefficients_never_negative(self):
        # A decreasing series would fit a negative slope; it is clamped.
        c0, c1 = _fit_affine([10.0, 20.0, 40.0], [0.003, 0.002, 0.001])
        assert c0 >= 0 and c1 >= 0
        # A negative intercept refits the slope through the origin.
        c0, c1 = _fit_affine([10.0, 20.0], [1e-5, 2e-2])
        assert c0 >= 0 and c1 >= 0

    def test_single_sample(self):
        assert _fit_affine([10.0], [0.01]) == (0.0, 0.001)
        assert _fit_affine([0.0], [0.01]) == (0.01, 0.0)

    def test_empty_rejected(self):
        with pytest.raises(TuningError):
            _fit_affine([], [])


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------
class TestCalibration:
    def test_calibrate_produces_positive_costs(self):
        model = CostModel.calibrate(
            scales=((40, 6), (80, 10)), repeats=1
        )
        features = cost_features(california_like(
            n_users=60, n_candidates=8, n_facilities=16, seed=0
        ))
        for knob in (True, False):
            assert model.resolve_seconds(features, knob) > 0
            assert model.select_seconds(features, 3, knob) > 0
        assert model.hit_seconds > 0

    def test_calibrate_rejects_zero_repeats(self):
        with pytest.raises(TuningError, match="repeats"):
            CostModel.calibrate(repeats=0)

    def test_round_trips_through_json_dict(self):
        model = _toy_model()
        back = CostModel.from_dict(model.as_dict())
        assert back.resolve_coeff == model.resolve_coeff
        assert back.select_coeff == model.select_coeff
        assert back.hit_seconds == model.hit_seconds

    def test_calibrate_fits_capture_select_coefficients(self):
        model = CostModel.calibrate(scales=((40, 6),), repeats=1)
        assert set(model.capture_select_coeff) == {"mnl", "fixed-worlds"}
        features = cost_features(california_like(
            n_users=60, n_candidates=8, n_facilities=16, seed=0
        ))
        for name in ("mnl", "fixed-worlds"):
            assert model.select_seconds(features, 3, capture_model=name) > 0

    def test_capture_coefficients_round_trip(self):
        model = _toy_model()
        model = CostModel(
            resolve_coeff=model.resolve_coeff,
            select_coeff=model.select_coeff,
            hit_seconds=model.hit_seconds,
            capture_select_coeff={"mnl": (0.5, 0.0)},
            calibrated_worlds=16,
        )
        back = CostModel.from_dict(model.as_dict())
        assert back == model

    def test_old_serialisations_load_without_capture_coefficients(self):
        old = _toy_model().as_dict()
        del old["capture_select_coeff"]
        del old["calibrated_worlds"]
        back = CostModel.from_dict(old)
        assert back.capture_select_coeff == {}
        assert back.calibrated_worlds == 8


# ----------------------------------------------------------------------
# Trace cost prediction (the cache simulation)
# ----------------------------------------------------------------------
class TestPredictTrace:
    def test_detects_prepared_cache_thrash(self):
        """The bursty workload's τ set is wider than the default prepared
        cache: the simulation must predict all-miss at default size and
        hits once capacity covers the working set."""
        trace = record_canned("bursty", None, **SMALL)
        model = _toy_model()
        thrashed = model.predict_trace(trace, EngineConfig())
        roomy = model.predict_trace(
            trace, EngineConfig(prepared_cache_size=32)
        )
        assert thrashed.prepared_hits == 0
        assert thrashed.resolves == 40
        assert roomy.prepared_hits == 20
        assert roomy.resolves == 20
        assert roomy.total_s < thrashed.total_s

    def test_result_cache_hits_priced_as_hits(self):
        trace = record_canned("cold-start", None, **SMALL)
        # Duplicate the whole query stream: second pass is all result hits.
        trace.events = trace.events + trace.events
        model = _toy_model()
        predicted = model.predict_trace(trace, EngineConfig())
        assert predicted.result_hits == 30
        assert predicted.resolves == 30

    def test_failed_queries_cost_nothing(self):
        trace = record_canned("bursty", None, **SMALL)
        model = _toy_model()
        predicted = model.predict_trace(trace, EngineConfig())
        # 44 journaled query events, 4 of them deadline/cancelled.
        assert predicted.queries == 40

    def test_publish_invalidates_result_cache(self):
        trace = record_canned("churn", None, **SMALL)
        model = _toy_model()
        incremental = model.predict_trace(trace, EngineConfig())
        dropped = model.predict_trace(
            trace, EngineConfig(incremental=False)
        )
        # Non-incremental republish re-resolves after each publish.
        assert dropped.resolves > incremental.resolves
        assert dropped.total_s > incremental.total_s

    def test_capture_model_routes_to_its_own_coefficient(self):
        """A set-aware capture model with a calibrated CELF fit must be
        priced by that fit, not the kernel fit; models without one keep
        the kernel fallback."""
        base = _toy_model()
        fitted = CostModel(
            resolve_coeff=base.resolve_coeff,
            select_coeff=base.select_coeff,
            hit_seconds=base.hit_seconds,
            capture_select_coeff={"mnl": (0.010, 0.0)},  # 10x the kernel fit
        )
        features = {"n_users": 50, "verify_pairs": 100}
        kernel = fitted.select_seconds(features, 3)
        assert fitted.select_seconds(features, 3, capture_model="mnl") == \
            pytest.approx(10 * kernel)
        # huff has no CELF fit: falls back to the kernel coefficient.
        assert fitted.select_seconds(features, 3, capture_model="huff") == \
            pytest.approx(kernel)

    def test_fixed_worlds_cost_scales_from_calibrated_worlds(self):
        base = _toy_model()
        fitted = CostModel(
            resolve_coeff=base.resolve_coeff,
            select_coeff=base.select_coeff,
            hit_seconds=base.hit_seconds,
            capture_select_coeff={"fixed-worlds": (0.004, 0.0)},
            calibrated_worlds=8,
        )
        trace = record_canned("cold-start", None, **SMALL)
        for event in trace.events:
            if event.kind == "query":
                event.query["capture"] = {
                    "model": "fixed-worlds", "mnl_beta": 2.0,
                    "worlds": 16, "world_seed": 0,
                }
        narrow = fitted.predict_trace(trace, EngineConfig(worlds=8))
        wide = fitted.predict_trace(trace, EngineConfig(worlds=32))
        # 8 worlds = the calibrated cost, 32 worlds = 4x of it.
        assert wide.total_s > narrow.total_s
        resolves = narrow.resolves
        assert (wide.total_s - narrow.total_s) == pytest.approx(
            narrow.queries * (32 / 8 - 1) * 0.004, rel=1e-6
        )
        assert resolves == wide.resolves

    def test_mnl_queries_priced_by_celf_fit_in_simulation(self):
        trace = record_canned("cold-start", None, **SMALL)
        for event in trace.events:
            if event.kind == "query":
                event.query["capture"] = {"model": "mnl", "mnl_beta": 2.0}
        base = _toy_model()
        fitted = CostModel(
            resolve_coeff=base.resolve_coeff,
            select_coeff=base.select_coeff,
            hit_seconds=base.hit_seconds,
            capture_select_coeff={"mnl": (0.010, 0.0)},
        )
        assert fitted.predict_trace(trace, EngineConfig()).total_s > \
            base.predict_trace(trace, EngineConfig()).total_s

    def test_scalar_kernel_override_costs_more(self):
        trace = record_canned("cold-start", None, **SMALL)
        model = _toy_model()
        fast = model.predict_trace(trace, EngineConfig())
        scalar = model.predict_trace(
            trace, EngineConfig(batch_verify=False, fast_select=False)
        )
        assert scalar.total_s > fast.total_s


# ----------------------------------------------------------------------
# Degenerate dataset features (satellite)
# ----------------------------------------------------------------------
class _Stub:
    """The minimal surface ``compute_stats``/``cost_features`` touch."""

    def __init__(self, users=(), candidates=(), facilities=()):
        self.users = list(users)
        self.candidates = list(candidates)
        self.facilities = list(facilities)
        self.name = "stub"
        self.region = (0.0, 0.0, 1.0, 1.0)


class TestDegenerateFeatures:
    def test_compute_stats_empty_dataset_is_all_zeros(self):
        stats = compute_stats(_Stub())
        assert stats.n_users == 0
        assert stats.n_positions == 0
        assert stats.mean_positions_per_user == 0.0
        assert stats.max_positions_per_user == 0
        assert stats.positions_per_km2 == 0.0
        assert stats.mean_mbr_area_ratio == 0.0

    def test_cost_features_empty_dataset_is_all_zeros(self):
        features = cost_features(_Stub())
        assert features["n_users"] == 0
        assert features["verify_pairs"] == 0
        assert features["candidate_fan_in"] == 0.0
        assert features["select_cells"] == 0

    def test_cost_features_zero_candidates_no_division_error(self):
        dataset = california_like(
            n_users=20, n_candidates=2, n_facilities=4, seed=0
        )
        stub = _Stub(users=dataset.users, candidates=(), facilities=dataset.facilities)
        features = cost_features(stub)
        assert features["n_candidates"] == 0
        assert features["verify_pairs"] == 0
        assert features["candidate_fan_in"] == 0.0

    def test_cost_features_real_dataset_consistent(self):
        dataset = california_like(
            n_users=30, n_candidates=5, n_facilities=10, seed=0
        )
        features = cost_features(dataset)
        assert features["n_users"] == 30
        assert features["n_candidates"] == 5
        assert features["verify_pairs"] == features["n_positions"] * 5
        assert features["candidate_fan_in"] == pytest.approx(
            features["verify_pairs"] / 30
        )

    def test_model_prices_degenerate_features_finitely(self):
        model = _toy_model()
        features = cost_features(_Stub())
        assert model.resolve_seconds(features) == pytest.approx(0.010)
        assert model.select_seconds(features, 5) == pytest.approx(0.001)
