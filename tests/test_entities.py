"""Unit tests for the entity model (users, facilities, datasets)."""

import numpy as np
import pytest

from repro.entities import (
    AbstractFacility,
    FacilityKind,
    MovingUser,
    SpatialDataset,
    candidate,
    existing,
)
from repro.exceptions import DataError
from repro.geo import Point


def make_user(uid=0, n=3, offset=0.0):
    rng = np.random.default_rng(uid)
    return MovingUser(uid, rng.uniform(0, 10, size=(n, 2)) + offset)


class TestMovingUser:
    def test_basic_properties(self):
        u = MovingUser(7, np.array([[0.0, 0.0], [2.0, 3.0]]))
        assert u.uid == 7
        assert u.r == 2
        assert u.mbr.min_x == 0 and u.mbr.max_y == 3

    def test_positions_are_read_only(self):
        u = make_user()
        with pytest.raises(ValueError):
            u.positions[0, 0] = 99.0

    def test_rejects_empty_and_bad_shape(self):
        with pytest.raises(DataError):
            MovingUser(1, np.zeros((0, 2)))
        with pytest.raises(DataError):
            MovingUser(1, np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(DataError):
            MovingUser(1, np.array([[0.0, np.nan]]))

    def test_from_points(self):
        u = MovingUser.from_points(3, [Point(1, 2), Point(3, 4)])
        assert u.r == 2
        assert u.points()[1] == Point(3, 4)
        with pytest.raises(DataError):
            MovingUser.from_points(3, [])

    def test_subsampled(self):
        u = make_user(n=20)
        rng = np.random.default_rng(0)
        s = u.subsampled(5, rng)
        assert s.r == 5
        assert s.uid == u.uid
        # every sampled row must come from the original
        orig = {tuple(row) for row in u.positions}
        assert all(tuple(row) in orig for row in s.positions)

    def test_subsampled_validation(self):
        u = make_user(n=3)
        rng = np.random.default_rng(0)
        with pytest.raises(DataError):
            u.subsampled(4, rng)
        with pytest.raises(DataError):
            u.subsampled(0, rng)

    def test_hash_eq_by_uid(self):
        a = MovingUser(1, np.array([[0.0, 0.0]]))
        b = MovingUser(1, np.array([[5.0, 5.0]]))
        assert a == b
        assert hash(a) == hash(b)
        assert a != "not a user"


class TestFacilities:
    def test_constructors(self):
        c = candidate(0, 1.0, 2.0)
        f = existing(0, 3.0, 4.0)
        assert c.is_candidate and not f.is_candidate
        assert c.kind is FacilityKind.CANDIDATE
        assert (f.x, f.y) == (3.0, 4.0)

    def test_value_semantics(self):
        assert candidate(1, 0, 0) == candidate(1, 0, 0)
        assert candidate(1, 0, 0) != existing(1, 0, 0)

    def test_location_point(self):
        assert candidate(0, 1.5, -2.5).location == Point(1.5, -2.5)


class TestSpatialDataset:
    def make_dataset(self):
        users = [make_user(i, n=4) for i in range(5)]
        return SpatialDataset.build(
            users,
            [existing(0, 1, 1), existing(1, 8, 8)],
            [candidate(0, 3, 3), candidate(1, 6, 6)],
            name="toy",
        )

    def test_region_covers_everything(self):
        ds = self.make_dataset()
        for u in ds.users:
            assert ds.region.contains_rect(u.mbr)
        for v in ds.abstract_facilities:
            assert ds.region.contains_point(v.location)

    def test_r_max_and_positions(self):
        users = [make_user(0, n=3), make_user(1, n=9)]
        ds = SpatialDataset.build(users, [], [candidate(0, 0, 0)])
        assert ds.r_max == 9
        assert ds.n_positions == 12

    def test_kind_validation(self):
        with pytest.raises(DataError):
            SpatialDataset.build([make_user()], [candidate(0, 0, 0)], [])
        with pytest.raises(DataError):
            SpatialDataset.build([make_user()], [], [existing(0, 0, 0)])

    def test_duplicate_uids_rejected(self):
        with pytest.raises(DataError):
            SpatialDataset.build([make_user(1), make_user(1)], [], [])

    def test_needs_users(self):
        with pytest.raises(DataError):
            SpatialDataset.build([], [], [])

    def test_abstract_facilities_order(self):
        ds = self.make_dataset()
        kinds = [v.kind for v in ds.abstract_facilities]
        assert kinds == [
            FacilityKind.CANDIDATE,
            FacilityKind.CANDIDATE,
            FacilityKind.EXISTING,
            FacilityKind.EXISTING,
        ]

    def test_with_users_and_subsample(self):
        ds = self.make_dataset()
        smaller = ds.subsample_users(3, seed=1)
        assert len(smaller.users) == 3
        assert smaller.facilities == ds.facilities
        with pytest.raises(DataError):
            ds.subsample_users(99)

    def test_subsample_positions(self):
        users = [make_user(0, n=10), make_user(1, n=3)]
        ds = SpatialDataset.build(users, [], [candidate(0, 0, 0)])
        sub = ds.subsample_positions(5, seed=0)
        assert len(sub.users) == 1  # only user 0 has >= 5 positions
        assert sub.users[0].r == 5
        with pytest.raises(DataError):
            ds.subsample_positions(50)

    def test_describe_mentions_counts(self):
        ds = self.make_dataset()
        text = ds.describe()
        assert "|Ω|=5" in text and "|C|=2" in text
