"""White-box tests of solver internals: the optimisations must hold the
invariants they claim, not just produce the right final answer."""

import pytest

from repro.pruning import measure_iquadtree_pruning
from repro.influence import paper_default_pf
from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
)
from tests.conftest import build_instance


class TestKCifpLine10:
    """Algorithm 1 line 10: competitor relationships only for covered users."""

    def test_f_o_restricted_to_influenced_users(self):
        ds = build_instance(seed=31, n_users=30)
        problem = MC2LSProblem(ds, k=3, tau=0.5)
        result = AdaptedKCIFPSolver().solve(problem)
        influenced = result.table.influenced_users()
        assert set(result.table.f_o) <= set(influenced)

    def test_baseline_tracks_everyone(self):
        ds = build_instance(seed=31, n_users=30)
        problem = MC2LSProblem(ds, k=3, tau=0.5)
        result = BaselineGreedySolver().solve(problem)
        assert set(result.table.f_o) == {u.uid for u in ds.users}


class TestIQTVariants:
    def test_nib_never_grows_verification(self):
        """IQT (with NIB) verifies a subset of what IQT-C verifies."""
        ds = build_instance(seed=32, n_users=40, clustered=True)
        problem = MC2LSProblem(ds, k=3, tau=0.5)
        iqt_c = IQTSolver(variant=IQTVariant.IQT_C).solve(problem)
        iqt = IQTSolver(variant=IQTVariant.IQT).solve(problem)
        assert iqt.pruning is not None and iqt_c.pruning is not None
        assert iqt.pruning.verify <= iqt_c.pruning.verify

    def test_pino_confirms_at_least_iqt(self):
        ds = build_instance(seed=33, n_users=40, clustered=True)
        problem = MC2LSProblem(ds, k=3, tau=0.3)
        iqt = IQTSolver(variant=IQTVariant.IQT).solve(problem)
        pino = IQTSolver(variant=IQTVariant.IQT_PINO).solve(problem)
        assert pino.pruning.confirmed >= iqt.pruning.confirmed

    def test_early_stopping_does_not_change_table(self):
        ds = build_instance(seed=34, n_users=30)
        problem = MC2LSProblem(ds, k=3, tau=0.5)
        with_es = IQTSolver(early_stopping=True).solve(problem)
        without = IQTSolver(early_stopping=False).solve(problem)
        assert with_es.table.omega_c == without.table.omega_c
        assert with_es.selected == without.selected

    def test_pruning_totals_cover_all_pairs(self):
        ds = build_instance(seed=35, n_users=25)
        problem = MC2LSProblem(ds, k=2, tau=0.5)
        for variant in IQTVariant:
            result = IQTSolver(variant=variant).solve(problem)
            n_pairs = len(ds.users) * len(ds.abstract_facilities)
            assert result.pruning.total == n_pairs, variant

    def test_d_hat_does_not_change_result(self):
        ds = build_instance(seed=36, n_users=30)
        problem = MC2LSProblem(ds, k=3, tau=0.5)
        results = [
            IQTSolver(d_hat=d).solve(problem) for d in (1.0, 2.0, 3.5)
        ]
        assert len({r.selected for r in results}) == 1
        assert len({round(r.objective, 9) for r in results}) == 1


class TestMeasurementConsistency:
    def test_rule_measurement_matches_solver_counters(self):
        """The standalone IS/NIR measurement and IQT-C's counters agree on
        the pair classification for identical inputs."""
        ds = build_instance(seed=37, n_users=30)
        tau = 0.5
        stats, _ = measure_iquadtree_pruning(
            ds.users, ds.abstract_facilities, tau, paper_default_pf(), 2.0, ds.region
        )
        result = IQTSolver(variant=IQTVariant.IQT_C).solve(
            MC2LSProblem(ds, k=2, tau=tau)
        )
        assert result.pruning.confirmed == stats.confirmed
        assert result.pruning.verify == stats.verify
        assert result.pruning.pruned == stats.pruned
