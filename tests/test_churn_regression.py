"""Replay the recorded bursty update trace through the serving engine.

The fixture (``tests/fixtures/bursty_update_trace.json``) encodes a
write-traffic pattern that previously exposed seam bugs: small mixed
bursts the engine must migrate by delta-patching, an add-then-remove
pair that must collapse out of the delta, and a final burst touching
over half the population that must trip the migration skip threshold.
After every republish the engine's answers are checked bit-identical to
a fresh engine over the same population — churn may change *cost*,
never *answers*.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.entities import MovingUser
from repro.service import DatasetSnapshot, SelectionEngine, SelectionQuery
from repro.streaming import StreamingMC2LS
from tests.conftest import build_instance

TRACE_PATH = Path(__file__).parent / "fixtures" / "bursty_update_trace.json"


@pytest.fixture(scope="module")
def trace():
    return json.loads(TRACE_PATH.read_text())


def apply_event(session, event):
    op = event["op"]
    if op == "remove":
        session.remove_user(event["uid"])
        return
    rng = np.random.default_rng(event["seed"])
    if op == "move":
        user = session._users[event["uid"]]
        jitter = rng.normal(0.0, 1.0, user.positions.shape)
        session.update_user(MovingUser(event["uid"], user.positions + jitter))
    elif op == "add":
        anchor = session._users[sorted(session._users)[0]].positions
        offset = rng.normal(0.0, 4.0, anchor.shape)
        session.add_user(MovingUser(event["uid"], anchor + offset))
    else:  # pragma: no cover - malformed fixture
        raise ValueError(f"unknown op {op!r}")


def test_bursty_trace_replays_identically(trace):
    dataset = build_instance(**trace["dataset"])
    k, tau = trace["k"], trace["tau"]
    session = StreamingMC2LS.from_dataset(dataset, k=k, tau=tau)
    queries = [SelectionQuery(k=kk, tau=tau, solver="iqt") for kk in (1, k)]
    engine = SelectionEngine(session.snapshot())
    try:
        for query in queries:
            engine.execute(query)
        for burst in trace["bursts"]:
            for event in burst["events"]:
                apply_event(session, event)
            engine.publish(session.snapshot())
            fresh = SelectionEngine(DatasetSnapshot(session.current_dataset()))
            try:
                for query in queries:
                    served = engine.execute(query)
                    expect = fresh.execute(query)
                    assert served.selected == expect.selected, burst["label"]
                    assert served.gains == expect.gains, burst["label"]
                    assert served.objective == expect.objective, burst["label"]
            finally:
                fresh.shutdown()
        inc = engine.stats()["incremental"]
        # The three small bursts migrate; the heavy one is skipped.
        assert inc["patched"] == 3
        assert inc["skipped"] == 1
        assert inc["failed"] == 0
    finally:
        engine.shutdown()


def test_trace_exercises_the_collapse_rules(trace):
    """The re-add burst's delta must net out the transient user."""
    dataset = build_instance(**trace["dataset"])
    session = StreamingMC2LS.from_dataset(dataset, k=trace["k"], tau=trace["tau"])
    session.snapshot()  # seal the bootstrap delta
    for burst in trace["bursts"]:
        if burst["label"] != "readd-collapse":
            for event in burst["events"]:
                apply_event(session, event)
            session.snapshot()
            continue
        for event in burst["events"]:
            apply_event(session, event)
        delta = session.pending_delta()
        assert 601 not in delta.added  # added then removed: netted out
        assert 601 not in delta.removed
        assert 13 in delta.removed
        assert 602 in delta.added
        break
