"""The two-player best-response round: structure, determinism, bounds."""

import pytest

from repro import paper_default_pf
from repro.capture import (
    FixedWorldsCaptureModel,
    MNLCaptureModel,
    SiteUtilities,
    best_response_round,
    evenly_split_capture,
    rival_competitor_id,
    rival_table,
)
from repro.competition import InfluenceTable
from repro.exceptions import CaptureError
from repro.influence import InfluenceEvaluator
from repro.solvers.base import resolve_all_pairs
from tests.conftest import build_instance


@pytest.fixture(scope="module")
def instance():
    dataset = build_instance(seed=21, n_users=50, n_candidates=14, n_facilities=6)
    pf = paper_default_pf()
    ev = InfluenceEvaluator(pf, 0.6)
    omega_c, f_o = resolve_all_pairs(dataset, ev)
    table = InfluenceTable.from_mappings(omega_c, f_o)
    return dataset, pf, table, sorted(omega_c)


class TestRivalTable:
    def test_rivals_move_to_competitor_sets(self, instance):
        _, _, table, cids = instance
        rivals = cids[:2]
        out = rival_table(table, rivals)
        for cid in rivals:
            assert cid not in out.omega_c
            rid = rival_competitor_id(cid)
            for uid in table.omega_c[cid]:
                assert rid in out.f_o[uid]
        # Untouched rows are preserved.
        for cid in cids[2:]:
            assert out.omega_c[cid] == table.omega_c[cid]

    def test_unknown_rival_raises(self, instance):
        _, _, table, _ = instance
        with pytest.raises(CaptureError):
            rival_table(table, [10**9])

    def test_original_table_is_not_mutated(self, instance):
        _, _, table, cids = instance
        before = {uid: set(f) for uid, f in table.f_o.items()}
        rival_table(table, cids[:3])
        assert {uid: set(f) for uid, f in table.f_o.items()} == before


class TestBestResponseRound:
    @pytest.mark.parametrize("model_name", ["evenly-split", "mnl", "fixed-worlds"])
    def test_erosion_non_negative_and_deterministic(self, instance, model_name):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        model = {
            "evenly-split": lambda: evenly_split_capture(),
            "mnl": lambda: MNLCaptureModel(util, beta=2.0),
            "fixed-worlds": lambda: FixedWorldsCaptureModel(
                util, beta=2.0, n_worlds=32, seed=7
            ),
        }[model_name]()
        r1 = best_response_round(table, cids, 3, model)
        r2 = best_response_round(table, cids, 3, model)
        assert r1 == r2  # bit-reproducible
        assert r1.erosion >= 0.0
        assert r1.eroded_objective <= r1.leader_objective
        assert 0.0 <= r1.erosion_fraction <= 1.0
        assert set(r1.rival_selected).isdisjoint(r1.leader_initial)
        assert len(r1.leader_initial) == 3

    def test_fast_and_scalar_rounds_agree(self, instance):
        dataset, pf, table, cids = instance
        model = MNLCaptureModel(SiteUtilities(dataset, pf), beta=2.0)
        fast = best_response_round(table, cids, 3, model, fast=True)
        slow = best_response_round(table, cids, 3, model, fast=False)
        assert fast.leader_initial == slow.leader_initial
        assert fast.rival_selected == slow.rival_selected
        assert fast.leader_adapted == slow.leader_adapted
        assert fast.eroded_objective == pytest.approx(
            slow.eroded_objective, abs=1e-9
        )

    def test_k_rival_zero_means_no_erosion(self, instance):
        dataset, pf, table, cids = instance
        model = MNLCaptureModel(SiteUtilities(dataset, pf), beta=2.0)
        report = best_response_round(table, cids, 3, model, k_rival=0)
        assert report.rival_selected == ()
        assert report.erosion == pytest.approx(0.0, abs=1e-12)
        assert report.eroded_objective == pytest.approx(
            report.leader_objective, abs=1e-12
        )

    def test_adapted_leader_recovers_some_capture(self, instance):
        dataset, pf, table, cids = instance
        model = evenly_split_capture()
        report = best_response_round(table, cids, 4, model)
        # Re-solving against the rival-aware world can never do worse
        # than keeping the eroded plan: greedy sees the eroded table and
        # the old plan remains available (minus rival-taken candidates).
        assert report.recovered >= -1e-12

    def test_world_seed_changes_fixed_worlds_round(self, instance):
        dataset, pf, table, cids = instance
        util = SiteUtilities(dataset, pf)
        a = best_response_round(
            table, cids, 3, FixedWorldsCaptureModel(util, n_worlds=16, seed=1)
        )
        b = best_response_round(
            table, cids, 3, FixedWorldsCaptureModel(util, n_worlds=16, seed=1)
        )
        assert a == b
