"""Delta-maintained prepared instances: the patch-vs-fresh identity suite.

The incremental republish path (PR 6) must be *undetectable* from the
query side: a :meth:`PreparedInstance.patched` instance — dirty rows
re-verified, CSR matrix spliced, CELF bounds warm-started — answers every
query bit-identically to a fresh resolve of the mutated dataset.  This
suite pins that across every solver × kernel-knob combination, exercises
the CSR splice and compaction paths elementwise, and covers the engine's
publish-time migration including its ablation knob and failure fallbacks.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import MovingUser
from repro.exceptions import ServiceError, SolverError
from repro.service import (
    SOLVER_FACTORIES,
    DatasetSnapshot,
    PreparedInstance,
    SelectionEngine,
    SelectionQuery,
)
from repro.solvers import CoverageMatrix, IQTSolver, patch_resolution
from repro.solvers.coverage import _COMPACT_FRACTION
from repro.streaming import StreamingMC2LS
from tests.conftest import build_instance

TAU = 0.6


def make_session(seed=11, n_users=40, n_candidates=10, n_facilities=8, k=4):
    base = build_instance(
        seed=seed,
        n_users=n_users,
        n_candidates=n_candidates,
        n_facilities=n_facilities,
    )
    return StreamingMC2LS.from_dataset(base, k=k, tau=TAU)


def churn(session, moves=(), adds=(), removes=(), seed=0):
    """Apply a deterministic burst of events to a session."""
    rng = np.random.default_rng(seed)
    for uid in moves:
        user = session._users[uid]
        jitter = rng.normal(0.0, 1.0, user.positions.shape)
        session.update_user(MovingUser(uid, user.positions + jitter))
    for uid in adds:
        anchor = session._users[sorted(session._users)[0]].positions
        session.add_user(MovingUser(uid, anchor + rng.normal(0.0, 4.0, anchor.shape)))
    for uid in removes:
        session.remove_user(uid)


def standard_churn(session):
    churn(session, moves=(1, 4, 7), adds=(500, 501), removes=(2, 9), seed=3)


class TestPatchBitIdentity:
    @pytest.mark.parametrize("solver_name", sorted(SOLVER_FACTORIES))
    @pytest.mark.parametrize("batch_verify", [True, False])
    @pytest.mark.parametrize("fast_select", [True, False])
    def test_identical_to_fresh_resolve(self, solver_name, batch_verify, fast_select):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        solver = SOLVER_FACTORIES[solver_name](batch_verify)
        old = PreparedInstance(snap1, solver, TAU)
        old.select(3, fast_select=fast_select)  # densify before the splice
        standard_churn(session)
        snap2 = DatasetSnapshot.from_streaming(session)

        patched = PreparedInstance.patched(old, snap2, batch_verify=batch_verify)
        fresh = PreparedInstance(
            snap2, SOLVER_FACTORIES[solver_name](batch_verify), TAU
        )

        # The query-observable surface: selections, gains, objectives for
        # several k, with and without a candidate mask, on either kernel.
        for k in (1, 2, 4):
            p = patched.select(k, fast_select=fast_select)
            f = fresh.select(k, fast_select=fast_select)
            assert p.selected == f.selected
            assert p.gains == f.gains
            assert p.objective == f.objective
        mask = patched.candidate_ids[::2]
        p = patched.select(2, candidate_ids=mask, fast_select=fast_select)
        f = fresh.select(2, candidate_ids=mask, fast_select=fast_select)
        assert p.selected == f.selected and p.gains == f.gains

        # The resolved relationships themselves: omega_c must match
        # exactly; f_o on every user a candidate influences (the subset
        # any selection reads — solvers legitimately differ on the rest).
        assert patched.table.omega_c == fresh.table.omega_c
        for uid in fresh.table.influenced_users():
            assert patched.table.f_o.get(uid) == fresh.table.f_o.get(uid)

    def test_selection_work_matches_fresh_when_cold(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        old.select(3)
        standard_churn(session)
        snap2 = DatasetSnapshot.from_streaming(session)
        patched = PreparedInstance.patched(old, snap2, warm_start=False)
        fresh = PreparedInstance(snap2, IQTSolver(), TAU)
        # With warm-start off the patched matrix runs the identical CELF
        # schedule, so even the evaluation counter matches the fresh one.
        assert patched.select(4) == fresh.select(4)

    def test_patch_stats_invariant_across_verify_knobs(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        standard_churn(session)
        snap2 = DatasetSnapshot.from_streaming(session)
        batched = PreparedInstance.patched(old, snap2, batch_verify=True)
        scalar = PreparedInstance.patched(old, snap2, batch_verify=False)
        assert batched.table.omega_c == scalar.table.omega_c
        assert batched.table.f_o == scalar.table.f_o
        # The stats-equivalence contract holds for the patch path too:
        # the batched kernel reports the work a scalar scanner would do.
        assert batched.resolved.evaluation == scalar.resolved.evaluation

    def test_patched_provenance_and_cost_accounting(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        standard_churn(session)
        snap2 = DatasetSnapshot.from_streaming(session)
        patched = PreparedInstance.patched(old, snap2)
        assert old.provenance == "resolved"
        assert patched.provenance == "patched"
        assert patched.patched_users == len(snap2.delta.dirty)
        assert "patch" in patched.resolved.timings
        assert patched.prepare_seconds > 0.0

    @settings(max_examples=12, deadline=None)
    @given(st.data())
    def test_random_event_bursts(self, data):
        session = make_session(seed=23, n_users=25, n_candidates=8, n_facilities=6)
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        old.select(3)
        uids = sorted(session._users)
        moves = data.draw(st.lists(st.sampled_from(uids), unique=True, max_size=6))
        removable = [u for u in uids if u not in moves]
        removes = data.draw(
            st.lists(st.sampled_from(removable), unique=True, max_size=4)
            if removable
            else st.just([])
        )
        n_adds = data.draw(st.integers(min_value=0, max_value=3))
        churn(
            session,
            moves=moves,
            adds=range(900, 900 + n_adds),
            removes=removes,
            seed=data.draw(st.integers(min_value=0, max_value=99)),
        )
        snap2 = DatasetSnapshot.from_streaming(session)
        patched = PreparedInstance.patched(old, snap2)
        fresh = PreparedInstance(snap2, IQTSolver(), TAU)
        assert patched.table.omega_c == fresh.table.omega_c
        p, f = patched.select(3), fresh.select(3)
        assert p.selected == f.selected and p.gains == f.gains


class TestCoverageMatrixSplice:
    def _tables_and_delta(self):
        session = make_session(seed=5)
        snap1 = DatasetSnapshot.from_streaming(session)
        resolved1 = IQTSolver().resolve(snap1.dataset, TAU)
        cids = tuple(sorted(c.fid for c in snap1.dataset.candidates))
        standard_churn(session)
        snap2 = DatasetSnapshot.from_streaming(session)
        delta = snap2.delta
        resolved2, added_cover = patch_resolution(
            resolved1, snap2.dataset, delta.dirty, delta.removed, TAU, session.pf
        )
        return resolved1, resolved2, added_cover, delta, cids

    def test_splice_is_elementwise_equal_to_fresh(self):
        resolved1, resolved2, added_cover, delta, cids = self._tables_and_delta()
        old = CoverageMatrix(resolved1.table, cids)
        spliced = old.patched(resolved2.table, added_cover, delta.removed)
        dense = CoverageMatrix(resolved2.table, cids)
        np.testing.assert_array_equal(spliced.user_ids, dense.user_ids)
        np.testing.assert_array_equal(spliced.weights, dense.weights)
        np.testing.assert_array_equal(spliced.indptr, dense.indptr)
        np.testing.assert_array_equal(spliced.col, dense.col)

    def test_compaction_threshold_still_identical(self):
        resolved1, resolved2, added_cover, delta, cids = self._tables_and_delta()
        old = CoverageMatrix(resolved1.table, cids)
        doomed_count = len(set(added_cover) | set(delta.removed))
        if doomed_count <= _COMPACT_FRACTION * old.n_users:
            # Widen the dirty set past the threshold: marking survivors
            # dirty with their existing cover is a valid (if wasteful)
            # delta, so the compacted rebuild must still match.
            extra = dict(added_cover)
            for uid in old.user_ids.tolist():
                if uid not in extra and uid not in set(delta.removed):
                    extra[int(uid)] = {
                        cid
                        for cid, users in resolved2.table.omega_c.items()
                        if uid in users
                    }
            spliced = old.patched(resolved2.table, extra, delta.removed)
        else:
            spliced = old.patched(resolved2.table, added_cover, delta.removed)
        dense = CoverageMatrix(resolved2.table, cids)
        assert spliced.select(3) == dense.select(3)

    def test_warm_start_matches_cold_and_does_less_work(self):
        resolved1, resolved2, added_cover, delta, cids = self._tables_and_delta()
        old = CoverageMatrix(resolved1.table, cids)
        old.select(3)  # capture round-0 bounds
        assert old.round0_bounds is not None
        spliced = old.patched(resolved2.table, added_cover, delta.removed)
        assert spliced.round0_bounds is not None
        dense = CoverageMatrix(resolved2.table, cids)
        warm = spliced.select(4, warm_start=True)
        cold = dense.select(4)
        assert warm.selected == cold.selected
        assert warm.gains == cold.gains
        assert warm.evaluations <= cold.evaluations

    def test_round0_capture_is_reused(self):
        resolved1, _, _, _, cids = self._tables_and_delta()
        m = CoverageMatrix(resolved1.table, cids)
        cold = m.select(3)
        warm = m.select(3, warm_start=True)
        assert warm.selected == cold.selected and warm.gains == cold.gains
        assert warm.evaluations <= cold.evaluations


class TestPatchValidation:
    def test_requires_a_delta(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        bare = DatasetSnapshot(session.current_dataset())
        with pytest.raises(ServiceError):
            PreparedInstance.patched(old, bare)

    def test_rejects_mismatched_parent(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        old = PreparedInstance(snap1, IQTSolver(), TAU)
        standard_churn(session)
        DatasetSnapshot.from_streaming(session)  # drains the first delta
        churn(session, moves=(3,), seed=8)
        snap3 = DatasetSnapshot.from_streaming(session)
        # snap3's delta chains from snap2, not from old's snapshot.
        with pytest.raises(ServiceError):
            PreparedInstance.patched(old, snap3)

    def test_patch_resolution_rejects_inconsistent_deltas(self):
        session = make_session()
        snap1 = DatasetSnapshot.from_streaming(session)
        resolved = IQTSolver().resolve(snap1.dataset, TAU)
        dataset = snap1.dataset
        present = dataset.users[0].uid
        with pytest.raises(SolverError):
            patch_resolution(
                resolved, dataset, (99999,), (), TAU, session.pf
            )
        with pytest.raises(SolverError):
            patch_resolution(
                resolved, dataset, (), (present,), TAU, session.pf
            )


class TestEngineMigration:
    def _engine_after_republish(self, incremental=True):
        session = make_session(seed=13, n_users=35)
        engine = SelectionEngine(session.snapshot(), incremental=incremental)
        query = SelectionQuery(k=3, tau=TAU, solver="iqt")
        engine.execute(query)  # populate the prepared cache
        standard_churn(session)
        engine.publish(session.snapshot())
        return engine, session, query

    def test_republish_migrates_prepared_instances(self):
        engine, session, query = self._engine_after_republish()
        assert engine.stats()["incremental"]["patched"] == 1
        result = engine.execute(query)
        assert result.stats.prepared_cache == "hit"
        entries = engine._prepared.entries_for(engine.snapshot().content_hash)
        assert [inst.provenance for _, inst in entries] == ["patched"]
        # Served selections equal a fresh engine over the same population.
        fresh = SelectionEngine(DatasetSnapshot(session.current_dataset()))
        expect = fresh.execute(query)
        assert result.selected == expect.selected
        assert result.gains == expect.gains
        assert result.objective == expect.objective
        engine.shutdown()
        fresh.shutdown()

    def test_ablation_knob_disables_migration(self):
        engine, _, query = self._engine_after_republish(incremental=False)
        inc = engine.stats()["incremental"]
        assert inc["enabled"] is False
        assert inc["patched"] == 0 and inc["skipped"] == 1
        assert engine.execute(query).stats.prepared_cache == "miss"
        engine.shutdown()

    def test_unchained_republish_falls_back_to_invalidation(self):
        session = make_session(seed=17, n_users=30)
        engine = SelectionEngine(session.snapshot())
        query = SelectionQuery(k=3, tau=TAU, solver="iqt")
        engine.execute(query)
        standard_churn(session)
        # Publishing a bare snapshot (no delta) must not patch — and must
        # not break: the old entries are simply dropped.
        engine.publish(DatasetSnapshot(session.current_dataset()))
        inc = engine.stats()["incremental"]
        assert inc["patched"] == 0 and inc["skipped"] == 1
        result = engine.execute(query)
        assert result.stats.prepared_cache == "miss"
        engine.shutdown()

    def test_heavy_churn_skips_migration(self):
        session = make_session(seed=19, n_users=20)
        engine = SelectionEngine(session.snapshot())
        query = SelectionQuery(k=2, tau=TAU, solver="iqt")
        engine.execute(query)
        churn(session, moves=tuple(sorted(session._users))[:15], seed=4)
        engine.publish(session.snapshot())
        inc = engine.stats()["incremental"]
        assert inc["patched"] == 0 and inc["skipped"] == 1
        assert engine.execute(query).selected  # still serves correctly
        engine.shutdown()


class TestRestrictedMatrixCache:
    def test_masks_evict_through_counted_lru(self):
        from repro.service import prepared as prepared_mod

        session = make_session(seed=29, n_users=30, n_candidates=12)
        snap = DatasetSnapshot.from_streaming(session)
        inst = PreparedInstance(snap, IQTSolver(), TAU)
        bound = prepared_mod._MAX_RESTRICTED
        cids = inst.candidate_ids
        # More distinct masks than the bound: the earliest must be evicted.
        masks = []
        for i in range(len(cids)):
            for j in range(i + 1, len(cids)):
                masks.append(tuple(c for t, c in enumerate(cids) if t not in (i, j)))
        masks = masks[: bound + 4]
        assert len(masks) > bound
        seen = set()
        for mask in masks:
            inst.select(2, candidate_ids=mask)
            seen.add(mask)
        stats = inst.restricted_cache_stats()
        assert stats.maxsize == bound
        assert stats.size <= bound
        assert stats.evictions >= len(seen) - bound
        assert stats.misses == len(seen)
        # A repeated mask is a hit, not a rebuild.
        inst.select(2, candidate_ids=masks[-1])
        assert inst.restricted_cache_stats().hits >= 1
