"""Tests for the calibrated synthetic generators."""

import numpy as np
import pytest

from repro.data import (
    SyntheticSpec,
    california_like,
    california_spec,
    compute_stats,
    generate_population,
    new_york_like,
    new_york_spec,
)
from repro.exceptions import DataError


class TestSpecValidation:
    def test_bad_values(self):
        with pytest.raises(DataError):
            SyntheticSpec(0, 10, 50, 0.05, 0, 0.0, 100)
        with pytest.raises(DataError):
            SyntheticSpec(10, 1, 50, 0.05, 0, 0.0, 100)
        with pytest.raises(DataError):
            SyntheticSpec(10, 10, 50, 1.5, 0, 0.0, 100)
        with pytest.raises(DataError):
            SyntheticSpec(10, 10, -1, 0.05, 0, 0.0, 100)


class TestGeneratePopulation:
    def test_counts_and_min_positions(self):
        pop = generate_population(california_spec(n_users=100), seed=0)
        assert len(pop.users) == 100
        assert all(u.r >= 2 for u in pop.users)
        assert pop.pois.shape == (2000, 2)

    def test_deterministic_with_seed(self):
        a = generate_population(california_spec(n_users=30), seed=5)
        b = generate_population(california_spec(n_users=30), seed=5)
        for ua, ub in zip(a.users, b.users):
            assert np.array_equal(ua.positions, ub.positions)

    def test_different_seeds_differ(self):
        a = generate_population(california_spec(n_users=30), seed=1)
        b = generate_population(california_spec(n_users=30), seed=2)
        assert not np.array_equal(a.users[0].positions, b.users[0].positions)

    def test_positions_inside_region(self):
        spec = new_york_spec(n_users=50)
        pop = generate_population(spec, seed=0)
        for u in pop.users:
            assert u.positions.min() >= 0.0
            assert u.positions.max() <= spec.side


class TestCalibration:
    """The generated populations must match the paper's fingerprints."""

    def test_california_mean_positions(self):
        pop = generate_population(california_spec(n_users=400), seed=0)
        mean_r = np.mean([u.r for u in pop.users])
        assert 28 <= mean_r <= 48  # target 37.5, heavy-tailed draw

    def test_new_york_mean_positions(self):
        pop = generate_population(new_york_spec(n_users=400), seed=0)
        mean_r = np.mean([u.r for u in pop.users])
        assert 9 <= mean_r <= 17  # target 12.5

    def test_mbr_ratio_calibration(self):
        ds = california_like(n_users=300, n_candidates=20, n_facilities=20, seed=3)
        stats = compute_stats(ds)
        # target 0.085; generous band because MBRs clip at the region edge
        assert 0.03 <= stats.mean_mbr_area_ratio <= 0.17

    def test_new_york_more_skewed_than_california(self):
        c = california_like(n_users=300, n_candidates=20, n_facilities=20, seed=0)
        n = new_york_like(n_users=300, n_candidates=20, n_facilities=20, seed=0)
        c_stats = compute_stats(c)
        n_stats = compute_stats(n)
        assert n_stats.gini_cell_occupancy > c_stats.gini_cell_occupancy

    def test_new_york_smaller_mbr_ratio(self):
        c = california_like(n_users=300, n_candidates=20, n_facilities=20, seed=0)
        n = new_york_like(n_users=300, n_candidates=20, n_facilities=20, seed=0)
        assert (
            compute_stats(n).mean_mbr_area_ratio
            < compute_stats(c).mean_mbr_area_ratio
        )

    def test_long_tail_supports_effect_of_r_protocol(self):
        """Some users must have > 30 positions for the Fig. 15/16 protocol."""
        pop = generate_population(california_spec(n_users=400), seed=0)
        assert sum(1 for u in pop.users if u.r > 30) > 20


class TestDatasetSampling:
    def test_disjoint_candidate_facility_sets(self):
        ds = california_like(n_users=50, n_candidates=30, n_facilities=30, seed=0)
        cand_locs = {(c.x, c.y) for c in ds.candidates}
        fac_locs = {(f.x, f.y) for f in ds.facilities}
        assert not (cand_locs & fac_locs)

    def test_poi_pool_exhaustion_raises(self):
        pop = generate_population(california_spec(n_users=10), seed=0)
        with pytest.raises(DataError):
            pop.dataset(n_candidates=1500, n_facilities=1500)

    def test_names(self):
        assert california_like(n_users=20, n_candidates=5, n_facilities=5).name == "C-like"
        assert new_york_like(n_users=20, n_candidates=5, n_facilities=5).name == "N-like"
