"""Differential tests: the CSR coverage kernel vs the scalar greedies.

The vectorized kernel (`CoverageMatrix.select`) must be *selection
identical* to the eager scalar greedy — same selected tuple (smallest-id
tie-break included), gains within 1e-9 (they are in fact bit-equal: the
kernel confirms every round winner with correctly-rounded ``fsum``
gains) — across random tables, adversarial exact-tie tables, degenerate
shapes and every solver that exposes the ``fast_select`` knob.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.competition import InfluenceTable
from repro.exceptions import SolverError
from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    CoverageMatrix,
    ExactSolver,
    IQTSolver,
    MC2LSProblem,
    coverage_select,
    greedy_select,
    lazy_greedy_select,
)
from repro.solvers.budgeted import BudgetedGreedySolver
from repro.solvers.capacitated import CapacitatedGreedySolver
from tests.conftest import build_instance


def random_table(seed, n_candidates=15, n_users=60, n_facilities=6):
    rng = np.random.default_rng(seed)
    omega = {
        cid: set(
            rng.choice(n_users, size=rng.integers(0, n_users // 2),
                       replace=False).tolist()
        )
        for cid in range(n_candidates)
    }
    f_o = {
        uid: set(
            rng.choice(n_facilities, size=rng.integers(0, n_facilities),
                       replace=False).tolist()
        )
        for uid in range(n_users)
    }
    return InfluenceTable.from_mappings(omega, f_o)


def assert_same_selection(a, b):
    assert a.selected == b.selected
    assert len(a.gains) == len(b.gains)
    for ga, gb in zip(a.gains, b.gains):
        assert ga == pytest.approx(gb, abs=1e-9)
    assert a.objective == pytest.approx(b.objective, abs=1e-9)


class TestKernelDifferential:
    @pytest.mark.parametrize("seed", range(25))
    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_random_tables(self, seed, k):
        table = random_table(seed)
        cids = list(range(15))
        eager = greedy_select(table, cids, k)
        lazy = lazy_greedy_select(table, cids, k)
        fast = coverage_select(table, cids, k)
        assert_same_selection(eager, fast)
        assert_same_selection(eager, lazy)
        # The kernel's gains are bit-equal, not just approximately equal:
        # round winners are confirmed with correctly-rounded fsum sums.
        assert fast.gains == eager.gains

    @given(
        omega=st.dictionaries(
            st.integers(0, 9),
            st.sets(st.integers(0, 30), max_size=12),
            min_size=1,
            max_size=10,
        ),
        k=st.integers(1, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_random_tables(self, omega, k):
        cids = sorted(omega)
        k = min(k, len(cids))
        table = InfluenceTable.from_mappings(omega, {})
        eager = greedy_select(table, cids, k)
        lazy = lazy_greedy_select(table, cids, k)
        fast = coverage_select(table, cids, k)
        assert fast.selected == eager.selected == lazy.selected
        assert fast.gains == eager.gains

    def test_exact_tie_table(self):
        """Candidates with *identical* coverage: smallest id must win."""
        shared = set(range(20))
        omega = {5: set(shared), 3: set(shared), 9: set(shared), 7: {1, 2}}
        table = InfluenceTable.from_mappings(omega, {})
        cids = [3, 5, 7, 9]
        for k in (1, 2, 4):
            eager = greedy_select(table, cids, k)
            fast = coverage_select(table, cids, k)
            assert fast.selected == eager.selected
            assert fast.gains == eager.gains
        assert coverage_select(table, cids, 1).selected == (3,)

    def test_tie_after_partial_overlap(self):
        """Ties that only appear at later rounds, under competition weights."""
        omega = {
            0: {0, 1, 2, 3},
            1: {0, 1, 4, 5},   # same marginal as 2 once 0 is taken
            2: {2, 3, 4, 5},
            3: {6},
        }
        f_o = {u: ({10} if u % 2 else set()) for u in range(7)}
        table = InfluenceTable.from_mappings(omega, f_o)
        for k in (1, 2, 3, 4):
            eager = greedy_select(table, [0, 1, 2, 3], k)
            fast = coverage_select(table, [0, 1, 2, 3], k)
            assert fast.selected == eager.selected
            assert fast.gains == eager.gains

    def test_empty_coverage_candidates(self):
        """Candidates covering nobody are still selectable (zero gain)."""
        omega = {0: {1, 2}, 1: set(), 2: set()}
        table = InfluenceTable.from_mappings(omega, {1: set(), 2: set()})
        eager = greedy_select(table, [0, 1, 2], 3)
        fast = coverage_select(table, [0, 1, 2], 3)
        assert fast.selected == eager.selected == (0, 1, 2)
        assert fast.gains == eager.gains

    def test_all_empty_table(self):
        table = InfluenceTable.from_mappings({0: set(), 1: set()}, {})
        fast = coverage_select(table, [0, 1], 2)
        assert fast.selected == (0, 1)
        assert fast.gains == (0.0, 0.0)
        assert fast.objective == 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_k_equals_all_candidates(self, seed):
        table = random_table(seed, n_candidates=8)
        eager = greedy_select(table, list(range(8)), 8)
        fast = coverage_select(table, list(range(8)), 8)
        assert fast.selected == eager.selected
        assert fast.gains == eager.gains

    @pytest.mark.parametrize("seed", range(10))
    def test_lazy_evaluates_no_more_than_eager(self, seed):
        table = random_table(seed)
        cids = list(range(15))
        eager = greedy_select(table, cids, 5)
        lazy = lazy_greedy_select(table, cids, 5)
        fast = coverage_select(table, cids, 5)
        assert lazy.evaluations <= eager.evaluations
        assert fast.evaluations <= eager.evaluations

    def test_kernel_validates_k(self):
        table = random_table(0)
        with pytest.raises(SolverError):
            coverage_select(table, list(range(15)), 0)
        with pytest.raises(SolverError):
            coverage_select(table, list(range(15)), 16)


class TestCoverageMatrixShape:
    def test_csr_layout(self):
        omega = {2: {10, 30}, 7: {20}, 5: set()}
        table = InfluenceTable.from_mappings(omega, {})
        cover = CoverageMatrix(table, [2, 5, 7])
        assert list(cover.candidate_ids) == [2, 5, 7]
        assert cover.n_candidates == 3
        assert cover.n_users == 3  # users 10, 20, 30
        assert list(cover.indptr) == [0, 2, 2, 3]

    def test_weights_follow_competition(self):
        omega = {0: {1, 2}}
        f_o = {1: {100, 200}, 2: set()}
        table = InfluenceTable.from_mappings(omega, f_o)
        cover = CoverageMatrix(table, [0])
        w = dict(zip(cover.user_ids.tolist(), cover.weights.tolist()))
        assert w[1] == pytest.approx(1.0 / 3.0)
        assert w[2] == pytest.approx(1.0)


class TestSolverKnobDifferential:
    """Every wired solver: ``fast_select`` on vs off is selection-identical."""

    @pytest.fixture(scope="class")
    def instance(self):
        return build_instance(seed=5, n_users=30, n_candidates=8, n_facilities=5)

    def both(self, make_solver, instance, k=3):
        prob = MC2LSProblem(instance, k=k, tau=0.5)
        on = make_solver(True).solve(prob)
        off = make_solver(False).solve(prob)
        assert on.selected == off.selected
        assert on.gains == off.gains
        assert on.objective == pytest.approx(off.objective, abs=1e-9)

    def test_iqt(self, instance):
        self.both(lambda f: IQTSolver(fast_select=f), instance)

    def test_baseline(self, instance):
        self.both(lambda f: BaselineGreedySolver(fast_select=f), instance)

    def test_kcifp(self, instance):
        self.both(lambda f: AdaptedKCIFPSolver(fast_select=f), instance)

    def test_exact(self, instance):
        self.both(lambda f: ExactSolver(fast_select=f), instance)

    def test_budgeted(self, instance):
        costs = {c.fid: 1.0 + (c.fid % 3) for c in instance.candidates}
        self.both(
            lambda f: BudgetedGreedySolver(costs=costs, budget=5.0, fast_select=f),
            instance,
        )

    def test_capacitated(self, instance):
        self.both(
            lambda f: CapacitatedGreedySolver(capacity=3, fast_select=f), instance
        )
