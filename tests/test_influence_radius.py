"""Unit tests for mMR / eta / NIR (the pruning math, paper Eq. 3 + Def. 8)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProbabilityError
from repro.influence import (
    LinearPF,
    SigmoidPF,
    min_max_radius,
    non_influence_radius,
    paper_default_pf,
    position_count_threshold,
    position_count_threshold_int,
)

PF = paper_default_pf()


class TestMinMaxRadius:
    def test_single_position_high_tau_gives_zero(self):
        # With rho=1, PF(0)=0.5 < 0.7 so one position can never reach tau=0.7.
        assert min_max_radius(0.7, 1, PF) == 0.0

    def test_grows_with_r(self):
        radii = [min_max_radius(0.7, r, PF) for r in range(2, 40)]
        assert all(b >= a for a, b in zip(radii, radii[1:]))

    def test_shrinks_with_tau(self):
        radii = [min_max_radius(t, 10, PF) for t in [0.1, 0.3, 0.5, 0.7, 0.9]]
        assert all(b <= a for a, b in zip(radii, radii[1:]))

    def test_definition(self):
        # mMR(tau, r) = PF^-1(1 - (1-tau)^(1/r))
        tau, r = 0.7, 10
        per = 1.0 - (1.0 - tau) ** (1.0 / r)
        assert min_max_radius(tau, r, PF) == pytest.approx(PF.inverse(per))

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            min_max_radius(0.0, 5, PF)
        with pytest.raises(ProbabilityError):
            min_max_radius(1.0, 5, PF)
        with pytest.raises(ProbabilityError):
            min_max_radius(0.5, 0, PF)

    def test_sound_as_guarantee(self):
        """r positions at exactly mMR distance reach exactly tau."""
        tau, r = 0.6, 8
        d = min_max_radius(tau, r, PF)
        pr = 1.0 - (1.0 - float(PF(d))) ** r
        assert pr == pytest.approx(tau, abs=1e-9)


class TestPositionCountThreshold:
    def test_inverse_of_mmr(self):
        """eta(tau, PF, mMR(tau, r)) == r for real-valued eta."""
        for tau in [0.3, 0.5, 0.7, 0.9]:
            for r in [2, 5, 10, 30]:
                d = min_max_radius(tau, r, PF)
                if d <= 0:
                    continue
                assert position_count_threshold(tau, PF, d) == pytest.approx(
                    r, rel=1e-9
                )

    def test_grows_with_distance(self):
        etas = [position_count_threshold(0.7, PF, d) for d in [0.5, 1, 2, 3, 5]]
        assert all(b > a for a, b in zip(etas, etas[1:]))

    def test_grows_with_tau(self):
        etas = [position_count_threshold(t, PF, 2.0) for t in [0.1, 0.5, 0.9]]
        assert all(b > a for a, b in zip(etas, etas[1:]))

    def test_infinite_when_pf_is_zero(self):
        pf = LinearPF(p0=0.8, cutoff=2.0)
        assert math.isinf(position_count_threshold(0.5, pf, 3.0))
        assert position_count_threshold_int(0.5, pf, 3.0) == 2**62

    def test_int_form_is_ceiling(self):
        eta = position_count_threshold(0.7, PF, 2.0)
        assert position_count_threshold_int(0.7, PF, 2.0) == math.ceil(eta - 1e-12)

    def test_int_form_at_least_one(self):
        # Tiny distance, tiny tau -> eta < 1, but at least 1 position needed.
        assert position_count_threshold_int(0.05, PF, 0.01) >= 1

    def test_validation(self):
        with pytest.raises(ProbabilityError):
            position_count_threshold(0.7, PF, -1.0)

    @given(
        tau=st.floats(min_value=0.05, max_value=0.95),
        d=st.floats(min_value=0.05, max_value=6.0),
    )
    @settings(max_examples=100)
    def test_eta_positions_at_d_reach_tau(self, tau, d):
        """ceil(eta) positions at distance exactly d give Pr >= tau (Lemma 1 core)."""
        n = position_count_threshold_int(tau, PF, d)
        if n >= 2**62:
            return
        pr = 1.0 - (1.0 - float(PF(d))) ** n
        assert pr >= tau - 1e-9


class TestNonInfluenceRadius:
    def test_equals_mmr_at_rmax(self):
        assert non_influence_radius(0.7, 50, PF) == min_max_radius(0.7, 50, PF)

    def test_upper_bounds_all_user_radii(self):
        r_max = 40
        nir = non_influence_radius(0.7, r_max, PF)
        for r in range(1, r_max + 1):
            assert min_max_radius(0.7, r, PF) <= nir + 1e-12

    def test_decreases_with_tau(self):
        vals = [non_influence_radius(t, 30, PF) for t in [0.1, 0.3, 0.5, 0.7, 0.9]]
        assert all(b <= a for a, b in zip(vals, vals[1:]))


class TestAcrossProbabilityFunctions:
    @pytest.mark.parametrize("pf", [SigmoidPF(1.0), SigmoidPF(1.5)], ids=repr)
    def test_duality_for_other_pfs(self, pf):
        tau, r = 0.65, 12
        d = min_max_radius(tau, r, pf)
        assert d > 0
        assert position_count_threshold(tau, pf, d) == pytest.approx(r, rel=1e-9)
