"""Unit tests for :mod:`repro.geo.distance`."""

import numpy as np
import pytest

from repro.geo import EquirectangularProjection, euclidean, euclidean_many, haversine_km


class TestEuclidean:
    def test_scalar(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_many_matches_scalar(self):
        xy = np.array([[1.0, 1.0], [4.0, 5.0], [-3.0, 0.0]])
        d = euclidean_many((1.0, 1.0), xy)
        assert d[0] == pytest.approx(0.0)
        assert d[1] == pytest.approx(5.0)
        assert d[2] == pytest.approx(euclidean(1, 1, -3, 0))


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(40.7, -74.0, 40.7, -74.0) == 0.0

    def test_one_degree_latitude_is_about_111km(self):
        assert haversine_km(0, 0, 1, 0) == pytest.approx(111.2, abs=0.3)

    def test_known_city_pair(self):
        # NYC (40.7128, -74.0060) to Philadelphia (39.9526, -75.1652) ~ 130 km
        d = haversine_km(40.7128, -74.0060, 39.9526, -75.1652)
        assert 125 < d < 135

    def test_symmetry(self):
        assert haversine_km(10, 20, 30, 40) == pytest.approx(
            haversine_km(30, 40, 10, 20)
        )


class TestProjection:
    def test_reference_maps_to_origin(self):
        proj = EquirectangularProjection(40.0, -74.0)
        assert proj.to_xy(40.0, -74.0) == (0.0, 0.0)

    def test_roundtrip(self):
        proj = EquirectangularProjection(40.0, -74.0)
        lat, lon = proj.to_latlon(*proj.to_xy(40.5, -73.5))
        assert lat == pytest.approx(40.5)
        assert lon == pytest.approx(-73.5)

    def test_projected_distance_close_to_haversine(self):
        proj = EquirectangularProjection(40.0, -74.0)
        x1, y1 = proj.to_xy(40.1, -74.1)
        x2, y2 = proj.to_xy(40.3, -73.8)
        planar = euclidean(x1, y1, x2, y2)
        great_circle = haversine_km(40.1, -74.1, 40.3, -73.8)
        assert planar == pytest.approx(great_circle, rel=0.005)

    def test_array_projection_matches_scalar(self):
        proj = EquirectangularProjection(40.0, -74.0)
        latlon = np.array([[40.2, -74.3], [39.8, -73.9]])
        xy = proj.to_xy_array(latlon)
        for i in range(2):
            sx, sy = proj.to_xy(latlon[i, 0], latlon[i, 1])
            assert xy[i, 0] == pytest.approx(sx)
            assert xy[i, 1] == pytest.approx(sy)

    def test_centered_on(self):
        latlon = np.array([[40.0, -74.0], [41.0, -73.0]])
        proj = EquirectangularProjection.centered_on(latlon)
        assert proj.ref_lat == pytest.approx(40.5)
        assert proj.ref_lon == pytest.approx(-73.5)
