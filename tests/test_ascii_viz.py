"""Tests for the ASCII density renderer."""

import numpy as np
import pytest

from repro.bench.ascii_viz import density_grid, render_dataset, render_density
from repro.geo import Rect
from tests.conftest import build_instance

REGION = Rect(0, 0, 10, 10)


class TestDensityGrid:
    def test_counts_conserved(self):
        rng = np.random.default_rng(0)
        xy = rng.uniform(0, 10, size=(500, 2))
        grid = density_grid(xy, REGION, width=16, height=8)
        assert grid.shape == (8, 16)
        assert grid.sum() == 500

    def test_point_lands_in_right_cell(self):
        xy = np.array([[9.99, 9.99], [0.0, 0.0]])
        grid = density_grid(xy, REGION, width=10, height=10)
        assert grid[9, 9] == 1  # top-right
        assert grid[0, 0] == 1  # bottom-left

    def test_out_of_region_clamps(self):
        xy = np.array([[-5.0, 50.0]])
        grid = density_grid(xy, REGION, width=4, height=4)
        assert grid.sum() == 1


class TestRenderDensity:
    def test_dimensions(self):
        xy = np.random.default_rng(1).uniform(0, 10, size=(100, 2))
        art = render_density(xy, REGION, width=30, height=10)
        lines = art.splitlines()
        assert len(lines) == 12  # 10 rows + 2 borders
        assert all(len(line) == 32 for line in lines)

    def test_dense_area_uses_darker_ramp(self):
        # all points in the bottom-left quarter
        xy = np.random.default_rng(2).uniform(0, 3, size=(400, 2))
        art = render_density(xy, REGION, width=20, height=10)
        lines = art.splitlines()[1:-1]
        top_half = "".join(lines[: len(lines) // 2])
        bottom_half = "".join(lines[len(lines) // 2 :])
        assert bottom_half.count("@") + bottom_half.count("%") > 0
        assert top_half.strip("| ") == ""

    def test_markers_drawn(self):
        xy = np.zeros((1, 2))
        art = render_density(xy, REGION, width=10, height=5, markers=[(5, 5, "X")])
        assert "X" in art

    def test_marker_outside_region_clamps(self):
        xy = np.zeros((1, 2))
        art = render_density(xy, REGION, width=10, height=5, markers=[(99, 99, "Z")])
        assert "Z" in art


class TestRenderDataset:
    def test_contains_legend_and_overlays(self):
        ds = build_instance(seed=1, n_users=15)
        art = render_dataset(ds, width=40, height=12, selected=[0])
        assert "legend" not in art  # legend text itself
        assert "F existing" in art
        assert "$" in art  # selected candidate marker
        assert "c" in art

    def test_no_selection(self):
        ds = build_instance(seed=2, n_users=10)
        art = render_dataset(ds, width=30, height=8)
        assert "$" not in art.splitlines()[0]
