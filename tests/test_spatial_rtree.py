"""Unit and property tests for the R-tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import IndexError_
from repro.geo import Point, Rect
from repro.spatial import RTree


def random_points(n, seed=0, lo=0.0, hi=100.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(lo, hi, size=(n, 2))]


def brute_force_range(points, rect):
    return {i for i, p in enumerate(points) if rect.contains_point(p)}


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(IndexError_):
            RTree(max_entries=1)
        with pytest.raises(IndexError_):
            RTree(max_entries=8, min_entries=5)  # > M/2
        with pytest.raises(IndexError_):
            RTree(max_entries=8, min_entries=0)

    def test_empty_tree(self):
        t = RTree()
        assert len(t) == 0
        assert t.bounds() is None
        assert t.range_query(Rect(0, 0, 1, 1)) == []

    def test_len_and_bounds(self):
        t = RTree()
        t.insert_point(Point(0, 0), "a")
        t.insert_point(Point(10, 5), "b")
        assert len(t) == 2
        assert t.bounds() == Rect(0, 0, 10, 5)


class TestRangeQuery:
    @pytest.mark.parametrize("n", [1, 5, 50, 400])
    def test_matches_brute_force(self, n):
        points = random_points(n, seed=n)
        t = RTree(max_entries=4)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        for rect in [
            Rect(10, 10, 40, 40),
            Rect(0, 0, 100, 100),
            Rect(99.5, 99.5, 100, 100),
            Rect(-10, -10, -5, -5),
        ]:
            assert set(t.range_query(rect)) == brute_force_range(points, rect)

    def test_rect_items_intersection_semantics(self):
        t = RTree()
        t.insert(Rect(0, 0, 10, 10), "big")
        t.insert(Rect(20, 20, 30, 30), "far")
        assert t.range_query(Rect(5, 5, 6, 6)) == ["big"]  # contained query
        assert set(t.range_query(Rect(9, 9, 25, 25))) == {"big", "far"}

    def test_duplicate_points(self):
        t = RTree(max_entries=4)
        for i in range(20):
            t.insert_point(Point(1.0, 1.0), i)
        assert set(t.range_query(Rect(0, 0, 2, 2))) == set(range(20))


class TestNearest:
    def test_nearest_matches_brute_force(self):
        points = random_points(200, seed=7)
        t = RTree(max_entries=6)
        for i, p in enumerate(points):
            t.insert_point(p, i)
        q = Point(50, 50)
        dists = sorted(range(200), key=lambda i: q.distance_to(points[i]))
        assert t.nearest(q, k=1) == [dists[0]]
        assert t.nearest(q, k=5) == dists[:5]

    def test_nearest_k_larger_than_size(self):
        t = RTree()
        t.insert_point(Point(0, 0), "a")
        assert t.nearest(Point(1, 1), k=10) == ["a"]

    def test_nearest_validation(self):
        with pytest.raises(IndexError_):
            RTree().nearest(Point(0, 0), k=0)


class TestStructuralInvariants:
    def _check_node(self, tree, node, is_root):
        if not is_root and len(node.entries) > 0:
            assert len(node.entries) <= tree.max_entries
        if not node.is_leaf:
            for e in node.entries:
                child = e.child
                assert child.parent is node
                # parent entry rect must cover the child's MBR
                assert e.rect.contains_rect(child.mbr())
                self._check_node(tree, child, is_root=False)

    def test_invariants_after_many_inserts(self):
        t = RTree(max_entries=4)
        for i, p in enumerate(random_points(300, seed=3)):
            t.insert_point(p, i)
        self._check_node(t, t._root, is_root=True)

    def test_height_grows_logarithmically(self):
        t = RTree(max_entries=4)
        for i, p in enumerate(random_points(500, seed=9)):
            t.insert_point(p, i)
        assert 2 <= t.height <= 8

    def test_items_roundtrip(self):
        points = random_points(50, seed=11)
        t = RTree()
        for i, p in enumerate(points):
            t.insert_point(p, i)
        collected = sorted(item for _, item in t.items())
        assert collected == list(range(50))


class TestBulkLoad:
    def test_str_matches_dynamic_queries(self):
        points = random_points(300, seed=5)
        entries = [(Rect.from_point(p), i) for i, p in enumerate(points)]
        t = RTree.bulk_load(entries, max_entries=8)
        assert len(t) == 300
        for rect in [Rect(0, 0, 25, 25), Rect(40, 40, 60, 80)]:
            assert set(t.range_query(rect)) == brute_force_range(points, rect)

    def test_bulk_load_empty(self):
        t = RTree.bulk_load([])
        assert len(t) == 0

    def test_bulk_load_single(self):
        t = RTree.bulk_load([(Rect.from_point(Point(1, 1)), "x")])
        assert t.range_query(Rect(0, 0, 2, 2)) == ["x"]

    def test_from_points(self):
        points = random_points(64, seed=13)
        t = RTree.from_points((p, i) for i, p in enumerate(points))
        assert set(t.range_query(Rect(0, 0, 100, 100))) == set(range(64))

    def test_bulk_height_compact(self):
        points = random_points(512, seed=17)
        t = RTree.bulk_load([(Rect.from_point(p), i) for i, p in enumerate(points)])
        # 512 items at fan-out 8 should pack into ~3 levels.
        assert t.height <= 4


@given(
    seeds=st.integers(0, 1000),
    n=st.integers(1, 120),
    qx=st.floats(0, 90),
    qy=st.floats(0, 90),
    w=st.floats(0.1, 40),
    h=st.floats(0.1, 40),
)
@settings(max_examples=40, deadline=None)
def test_property_range_query_always_matches(seeds, n, qx, qy, w, h):
    points = random_points(n, seed=seeds)
    t = RTree(max_entries=4)
    for i, p in enumerate(points):
        t.insert_point(p, i)
    rect = Rect(qx, qy, qx + w, qy + h)
    assert set(t.range_query(rect)) == brute_force_range(points, rect)
