"""Thread-safety of solvers and the engine under concurrent queries.

The solver contract (see ``repro.solvers.base``): instances hold
configuration only; all mutable per-solve state (evaluators, stats,
pruning counters) is created inside ``solve()``/``resolve()``.  One
shared instance must therefore produce bit-identical results *and*
bit-identical per-result work counters when driven from multiple
threads.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import SelectionEngine, SelectionQuery, solve_queries
from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    MC2LSProblem,
)

from .conftest import build_instance


def _fingerprint(result):
    return (
        result.selected,
        result.gains,
        result.objective,
        result.evaluation.total_evaluations,
        result.evaluation.positions_touched,
    )


@pytest.mark.parametrize(
    "make_solver",
    [BaselineGreedySolver, AdaptedKCIFPSolver, IQTSolver],
    ids=["baseline", "k-cifp", "iqt"],
)
def test_shared_solver_instance_two_threads(make_solver):
    dataset = build_instance(seed=21, n_users=35, n_candidates=12)
    solver = make_solver()
    problems = [
        MC2LSProblem(dataset, k=3, tau=0.6),
        MC2LSProblem(dataset, k=5, tau=0.7),
    ]
    serial = [_fingerprint(solver.solve(p)) for p in problems]

    # The same shared instance, both problems solved repeatedly from two
    # threads at once.  A barrier maximises the overlap window.
    barrier = threading.Barrier(2)

    def run(problem):
        barrier.wait(timeout=30)
        return [_fingerprint(solver.solve(problem)) for _ in range(3)]

    with ThreadPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(run, p) for p in problems]
        concurrent = [f.result(timeout=120) for f in futures]

    for expected, got in zip(serial, concurrent):
        assert all(fp == expected for fp in got)


def test_engine_concurrent_queries_consistent():
    dataset = build_instance(seed=22, n_users=35, n_candidates=12)
    queries = [
        SelectionQuery(k=k, tau=tau, use_cache=False)
        for tau in (0.6, 0.7)
        for k in (2, 4)
    ]
    with SelectionEngine(dataset, max_workers=4, max_queued=64) as engine:
        reference = [engine.execute(q) for q in queries]
        # Three concurrent passes over the same batch, caches disabled so
        # every pass recomputes from scratch on worker threads.
        for _ in range(3):
            results = solve_queries(engine, queries)
            for ref, got in zip(reference, results):
                assert got.selected == ref.selected
                assert got.gains == ref.gains
                assert got.objective == ref.objective
                assert got.stats.evaluations == ref.stats.evaluations
                assert (
                    got.stats.positions_touched == ref.stats.positions_touched
                )


def test_engine_concurrent_warm_cache_consistent():
    dataset = build_instance(seed=23, n_users=30, n_candidates=10)
    query = SelectionQuery(k=3, tau=0.65)
    with SelectionEngine(dataset, max_workers=4) as engine:
        cold = engine.execute(query)
        results = solve_queries(engine, [query] * 16)
        assert all(r.selected == cold.selected for r in results)
        assert all(r.gains == cold.gains for r in results)
        assert engine.stats()["result_cache"]["hits"] >= 16
