"""Campaign specs: grid expansion, the hash-key contract, round-trips.

The key property the resumability machinery leans on: a point's key is
a pure function of the realized dataset content hash plus the canonical
run parameters — stable across processes, axis orderings and foreign
capture parameters, and sensitive to every coordinate that changes what
the point computes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignSpec,
    DatasetAxis,
    RunPoint,
    canonical_capture,
    capture_duel_spec,
    fig_runtime_sweep_spec,
    get_spec,
    grid,
    smoke_spec,
)
from repro.exceptions import CampaignError

REPO_ROOT = Path(__file__).resolve().parent.parent

FAKE_HASH = "0" * 32  # key tests never need a real dataset


def _point(**overrides):
    params = dict(
        workload="solve",
        solver="iqt",
        capture={"model": "evenly-split"},
        tau=0.7,
        k=5,
        repeats=3,
        dataset={"kind": "C", "users_frac": 0.5},
    )
    params.update(overrides)
    return RunPoint.from_params("g", params)


# ----------------------------------------------------------------------
# Hash-key contract
# ----------------------------------------------------------------------
class TestKeys:
    def test_key_is_stable_across_param_orderings(self):
        a = _point()
        b = RunPoint.from_params("g", dict(reversed(list(_point().params().items()))))
        assert a.key(FAKE_HASH) == b.key(FAKE_HASH)

    def test_key_is_stable_across_processes(self):
        """The key must be a pure content hash — no per-process salt
        (PYTHONHASHSEED must not leak in)."""
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.campaign import RunPoint\n"
            "p = RunPoint.from_params('g', {params!r})\n"
            "print(p.key({h!r}))\n"
        ).format(
            src=str(REPO_ROOT / "src"), params=_point().params(), h=FAKE_HASH
        )
        keys = {
            subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=60, check=True,
            ).stdout.strip()
            for _ in range(2)
        }
        keys.add(_point().key(FAKE_HASH))
        assert len(keys) == 1

    def test_foreign_capture_params_do_not_change_key(self):
        plain = _point(capture={"model": "evenly-split"})
        noisy = _point(capture={"model": "evenly-split", "mnl_beta": 9.0,
                                "worlds": 64})
        assert plain.key(FAKE_HASH) == noisy.key(FAKE_HASH)

    def test_relevant_capture_params_change_key(self):
        a = _point(capture={"model": "mnl", "mnl_beta": 1.0})
        b = _point(capture={"model": "mnl", "mnl_beta": 2.0})
        assert a.key(FAKE_HASH) != b.key(FAKE_HASH)

    @pytest.mark.parametrize("override", [
        {"tau": 0.6}, {"k": 6}, {"repeats": 4}, {"solver": "iqt-c"},
        {"batch_verify": False}, {"fast_select": False},
    ])
    def test_every_run_param_is_key_relevant(self, override):
        assert _point().key(FAKE_HASH) != _point(**override).key(FAKE_HASH)

    def test_dataset_enters_by_content_hash_only(self):
        """Two axis specs produce the same key iff the realized data
        hashes equal — the axis params themselves never enter."""
        a = _point(dataset={"kind": "C", "users_frac": 0.5})
        b = _point(dataset={"kind": "N", "n_candidates": 9})
        assert a.key(FAKE_HASH) == b.key(FAKE_HASH)
        assert a.key("1" * 32) != a.key(FAKE_HASH)

    def test_k_rival_only_keys_compete_points(self):
        solve = _point()
        assert "k_rival" not in solve.run_params()
        duel = _point(workload="compete", k_rival=4)
        duel2 = _point(workload="compete", k_rival=6)
        assert duel.key(FAKE_HASH) != duel2.key(FAKE_HASH)


# ----------------------------------------------------------------------
# Canonical capture params
# ----------------------------------------------------------------------
class TestCanonicalCapture:
    def test_default_is_evenly_split(self):
        assert canonical_capture(None) == {"model": "evenly-split"}
        assert canonical_capture({}) == {"model": "evenly-split"}

    def test_foreign_params_dropped(self):
        got = canonical_capture({"model": "huff", "mnl_beta": 3.0,
                                 "huff_utility": 0.4})
        assert got == {"model": "huff", "huff_utility": 0.4}

    def test_fixed_worlds_keeps_world_params(self):
        got = canonical_capture({"model": "fixed-worlds", "mnl_beta": 2.0,
                                 "worlds": 16, "world_seed": 3})
        assert got == {"model": "fixed-worlds", "mnl_beta": 2.0,
                       "worlds": 16, "world_seed": 3}

    def test_unknown_model_rejected(self):
        with pytest.raises(Exception):
            canonical_capture({"model": "no-such-model"})


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestExpansion:
    def test_points_cartesian_and_deterministic(self):
        g = grid(
            "g",
            [DatasetAxis(kind="C"), DatasetAxis(kind="N")],
            solvers=("iqt", "baseline"),
            taus=(0.6, 0.7),
            ks=(2, 3),
        )
        points = list(g.points())
        assert len(points) == 2 * 2 * 2 * 2
        assert [(p.dataset.kind, p.solver, p.tau, p.k) for p in points] == \
            [(d, s, t, k)
             for d in ("C", "N") for s in ("iqt", "baseline")
             for t in (0.6, 0.7) for k in (2, 3)]

    def test_shipped_specs_expand(self):
        assert len(fig_runtime_sweep_spec().points()) == 240
        assert len(capture_duel_spec().points()) == 12
        assert len(smoke_spec().points()) == 4

    def test_get_spec_rejects_unknown_name(self):
        with pytest.raises(CampaignError, match="fig-runtime-sweep"):
            get_spec("nope")


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("factory", [
        fig_runtime_sweep_spec, capture_duel_spec, smoke_spec,
    ])
    def test_spec_round_trips_through_dict(self, factory):
        spec = factory()
        back = CampaignSpec.from_dict(spec.as_dict())
        assert back == spec
        assert back.as_dict() == spec.as_dict()

    def test_spec_round_trips_through_json_file(self, tmp_path):
        spec = smoke_spec()
        path = tmp_path / "spec.json"
        spec.save_json(path)
        assert CampaignSpec.from_json(path) == spec

    def test_unreadable_spec_file_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.from_json(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignError, match="cannot read"):
            CampaignSpec.from_json(bad)

    def test_newer_spec_version_rejected(self):
        payload = smoke_spec().as_dict()
        payload["version"] = 99
        with pytest.raises(CampaignError, match="version 99"):
            CampaignSpec.from_dict(payload)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_bad_dataset_kind(self):
        with pytest.raises(CampaignError, match="kind"):
            DatasetAxis(kind="X")

    def test_bad_users_frac(self):
        with pytest.raises(CampaignError, match="users_frac"):
            DatasetAxis(users_frac=1.5)

    def test_unknown_dataset_field(self):
        with pytest.raises(CampaignError, match="unknown dataset axis"):
            DatasetAxis.from_dict({"kind": "C", "n_user": 10})

    def test_unknown_grid_field(self):
        with pytest.raises(CampaignError, match="unknown grid fields"):
            CampaignSpec.from_dict({
                "name": "s",
                "grids": [{"name": "g", "datasets": [{"kind": "C"}],
                           "solver": "iqt"}],
            })

    def test_unknown_solver(self):
        with pytest.raises(CampaignError, match="unknown solver"):
            _point(solver="dijkstra")

    def test_unknown_workload(self):
        with pytest.raises(CampaignError, match="unknown workload"):
            _point(workload="train")

    def test_bad_x_axis(self):
        with pytest.raises(CampaignError, match="x axis"):
            grid("g", [DatasetAxis()], x="speed")

    def test_bad_series(self):
        with pytest.raises(CampaignError, match="series"):
            grid("g", [DatasetAxis()], series="dataset")

    def test_duplicate_grid_names(self):
        g1 = grid("g", [DatasetAxis()])
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(name="s", grids=(g1, g1))

    def test_nonpositive_repeats(self):
        with pytest.raises(CampaignError, match="repeats"):
            _point(repeats=0)
