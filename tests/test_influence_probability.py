"""Unit tests for the distance-decay probability family."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ProbabilityError
from repro.influence import (
    ExponentialPF,
    LinearPF,
    PowerLawPF,
    SigmoidPF,
    paper_default_pf,
)

ALL_PFS = [
    SigmoidPF(rho=1.0),
    SigmoidPF(rho=1.6),
    ExponentialPF(p0=0.9, scale=1.5),
    LinearPF(p0=0.8, cutoff=4.0),
    PowerLawPF(p0=0.9, scale=1.0, alpha=2.0),
]


@pytest.mark.parametrize("pf", ALL_PFS, ids=repr)
class TestCommonContract:
    def test_value_at_zero_is_max(self, pf):
        assert float(pf(0.0)) == pytest.approx(pf.max_probability)

    def test_monotone_decreasing(self, pf):
        ds = np.linspace(0, 10, 200)
        vals = pf(ds)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_range(self, pf):
        ds = np.linspace(0, 50, 500)
        vals = pf(ds)
        assert np.all(vals >= 0)
        assert np.all(vals <= 1)

    def test_inverse_roundtrip(self, pf):
        for d in [0.1, 0.5, 1.0, 2.0, 3.5]:
            p = float(pf(d))
            if p <= 0:
                continue
            assert pf.inverse(p) == pytest.approx(d, abs=1e-9)

    def test_inverse_above_max_returns_zero(self, pf):
        assert pf.inverse(min(1.0, pf.max_probability + 1e-6)) == 0.0

    def test_inverse_rejects_bad_probability(self, pf):
        with pytest.raises(ProbabilityError):
            pf.inverse(0.0)
        with pytest.raises(ProbabilityError):
            pf.inverse(1.5)

    def test_scalar_and_array_agree(self, pf):
        ds = np.array([0.0, 0.7, 2.3, 9.9])
        arr = pf(ds)
        for i, d in enumerate(ds):
            assert float(pf(float(d))) == pytest.approx(float(arr[i]))


class TestSigmoid:
    def test_paper_values(self):
        pf = paper_default_pf()
        assert float(pf(0.0)) == pytest.approx(0.5)
        # PF(d) = 1 / (1 + e^d)
        assert float(pf(1.0)) == pytest.approx(1.0 / (1.0 + math.e))

    def test_rho_validation(self):
        with pytest.raises(ProbabilityError):
            SigmoidPF(rho=0.0)
        with pytest.raises(ProbabilityError):
            SigmoidPF(rho=2.5)

    @given(st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=50)
    def test_inverse_is_left_inverse(self, d):
        pf = paper_default_pf()
        p = float(pf(d))
        assert pf.inverse(p) == pytest.approx(d, abs=1e-7)


class TestValidation:
    def test_exponential_validation(self):
        with pytest.raises(ProbabilityError):
            ExponentialPF(p0=0.0)
        with pytest.raises(ProbabilityError):
            ExponentialPF(scale=-1)

    def test_linear_validation(self):
        with pytest.raises(ProbabilityError):
            LinearPF(p0=1.5)
        with pytest.raises(ProbabilityError):
            LinearPF(cutoff=0)

    def test_power_validation(self):
        with pytest.raises(ProbabilityError):
            PowerLawPF(alpha=0)

    def test_linear_is_zero_beyond_cutoff(self):
        pf = LinearPF(p0=0.8, cutoff=2.0)
        assert float(pf(2.0)) == 0.0
        assert float(pf(5.0)) == 0.0
