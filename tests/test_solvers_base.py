"""Tests for the solver base types (problem validation, timers, results)."""

import time

import pytest

from repro.competition import InfluenceTable
from repro.influence import EvaluationStats
from repro.solvers import MC2LSProblem, SolverResult
from repro.solvers.base import PhaseTimer
from tests.conftest import build_instance


class TestPhaseTimer:
    def test_phases_and_total(self):
        timer = PhaseTimer()
        with timer.mark("a"):
            time.sleep(0.01)
        with timer.mark("b"):
            pass
        timings = timer.finish()
        assert timings["a"] >= 0.01
        assert "b" in timings
        assert timings["total"] >= timings["a"]

    def test_repeated_phase_accumulates(self):
        timer = PhaseTimer()
        for _ in range(3):
            with timer.mark("x"):
                time.sleep(0.002)
        timings = timer.finish()
        assert timings["x"] >= 0.006

    def test_phase_records_even_on_exception(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.mark("boom"):
                raise RuntimeError("nope")
        assert timer.timings["boom"] >= 0


class TestProblemDefaults:
    def test_default_pf_is_paper_sigmoid(self, small_instance):
        problem = MC2LSProblem(small_instance, k=2)
        assert float(problem.pf(0.0)) == pytest.approx(0.5)
        assert problem.tau == 0.7

    def test_frozen(self, small_instance):
        problem = MC2LSProblem(small_instance, k=2)
        with pytest.raises(AttributeError):
            problem.k = 5  # type: ignore[misc]


class TestSolverResult:
    def test_total_time_property(self):
        result = SolverResult(
            selected=(1,),
            objective=1.0,
            table=InfluenceTable(),
            timings={"total": 2.5},
            evaluation=EvaluationStats(),
        )
        assert result.total_time == 2.5

    def test_total_time_defaults_to_zero(self):
        result = SolverResult(
            selected=(),
            objective=0.0,
            table=InfluenceTable(),
            timings={},
            evaluation=EvaluationStats(),
        )
        assert result.total_time == 0.0


class TestPackageApi:
    def test_public_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__
