"""Tests for the road-network graph substrate."""

import math

import numpy as np
import pytest

from repro.exceptions import DataError
from repro.geo import Point
from repro.roadnet import RoadNetwork, grid_network, radial_network


@pytest.fixture
def square_net():
    """A unit square with a diagonal shortcut: 0-1-2-3 ring + 0-2."""
    net = RoadNetwork()
    net.add_node(0, 0, 0)
    net.add_node(1, 1, 0)
    net.add_node(2, 1, 1)
    net.add_node(3, 0, 1)
    net.add_edge(0, 1)
    net.add_edge(1, 2)
    net.add_edge(2, 3)
    net.add_edge(3, 0)
    net.add_edge(0, 2)  # sqrt(2) diagonal
    return net


class TestConstruction:
    def test_nodes_and_edges(self, square_net):
        assert len(square_net) == 4
        assert square_net.n_edges == 5
        assert square_net.position(2) == Point(1, 1)
        assert square_net.neighbors(0) == {
            1: pytest.approx(1.0),
            3: pytest.approx(1.0),
            2: pytest.approx(math.sqrt(2)),
        }

    def test_edge_requires_nodes(self):
        net = RoadNetwork()
        net.add_node(0, 0, 0)
        with pytest.raises(DataError):
            net.add_edge(0, 1)

    def test_self_loop_rejected(self, square_net):
        with pytest.raises(DataError):
            square_net.add_edge(1, 1)

    def test_negative_length_rejected(self, square_net):
        with pytest.raises(DataError):
            square_net.add_edge(1, 3, length=-1.0)

    def test_explicit_length_overrides_euclidean(self):
        net = RoadNetwork()
        net.add_node(0, 0, 0)
        net.add_node(1, 1, 0)
        net.add_edge(0, 1, length=5.0)  # congested road
        assert net.shortest_path_length(0, 1) == 5.0

    def test_unknown_node_queries(self, square_net):
        with pytest.raises(DataError):
            square_net.position(99)
        with pytest.raises(DataError):
            square_net.shortest_paths(99)

    def test_edges_iterated_once(self, square_net):
        assert len(list(square_net.edges())) == 5


class TestShortestPaths:
    def test_triangle_inequality_vs_euclidean(self, square_net):
        # Network distance can never beat the straight line.
        for a in range(4):
            for b in range(4):
                if a == b:
                    continue
                euclid = square_net.position(a).distance_to(square_net.position(b))
                assert square_net.shortest_path_length(a, b) >= euclid - 1e-12

    def test_shortcut_used(self, square_net):
        assert square_net.shortest_path_length(0, 2) == pytest.approx(math.sqrt(2))

    def test_around_the_ring(self, square_net):
        assert square_net.shortest_path_length(1, 3) == pytest.approx(2.0)

    def test_disconnected_is_inf(self):
        net = RoadNetwork()
        net.add_node(0, 0, 0)
        net.add_node(1, 10, 10)
        assert net.shortest_path_length(0, 1) == math.inf

    def test_cutoff_prunes(self, square_net):
        reach = square_net.shortest_paths(0, cutoff=1.0)
        assert set(reach) == {0, 1, 3}

    def test_matches_networkx(self):
        import networkx as nx

        net = grid_network(side_km=10, spacing_km=2, seed=1)
        g = nx.Graph()
        for a, b, w in net.edges():
            g.add_edge(a, b, weight=w)
        source = net.nodes()[0]
        expected = nx.single_source_dijkstra_path_length(g, source)
        actual = net.shortest_paths(source)
        assert set(actual) == set(expected)
        for node, d in expected.items():
            assert actual[node] == pytest.approx(d)


class TestSnapping:
    def test_nearest_node(self, square_net):
        node, offset = square_net.nearest_node(0.1, 0.1)
        assert node == 0
        assert offset == pytest.approx(math.hypot(0.1, 0.1))

    def test_snap_many_matches_scalar(self, square_net):
        xy = np.array([[0.2, 0.1], [0.9, 0.95], [0.4, 0.9]])
        nodes, offsets = square_net.snap_many(xy)
        for i in range(3):
            node, offset = square_net.nearest_node(xy[i, 0], xy[i, 1])
            assert nodes[i] == node
            assert offsets[i] == pytest.approx(offset)

    def test_empty_network(self):
        with pytest.raises(DataError):
            RoadNetwork().nearest_node(0, 0)


class TestGenerators:
    def test_grid_structure(self):
        net = grid_network(side_km=10, spacing_km=2)
        n = 6  # 10/2 + 1
        assert len(net) == n * n
        assert net.n_edges == 2 * n * (n - 1)

    def test_grid_connected_after_drops(self):
        net = grid_network(side_km=10, spacing_km=1, drop_fraction=0.2, seed=3)
        reach = net.shortest_paths(net.nodes()[0])
        assert len(reach) == len(net)  # still one component

    def test_grid_validation(self):
        with pytest.raises(DataError):
            grid_network(side_km=0, spacing_km=1)

    def test_radial_structure(self):
        net = radial_network(Point(0, 0), rings=3, spokes=6, ring_spacing_km=1.0)
        assert len(net) == 1 + 3 * 6
        # hub connects to the whole first ring
        assert len(net.neighbors(0)) == 6
        reach = net.shortest_paths(0)
        assert len(reach) == len(net)

    def test_radial_validation(self):
        with pytest.raises(DataError):
            radial_network(Point(0, 0), rings=0, spokes=6, ring_spacing_km=1)
        with pytest.raises(DataError):
            radial_network(Point(0, 0), rings=2, spokes=2, ring_spacing_km=1)
