"""Kill-and-resume: the acceptance scenario for campaign resumability.

A campaign run is SIGKILLed (whole process group) once some but not all
points have landed in the store; `campaign run --resume` (the default)
must then execute exactly the remaining points, and every record's
deterministic section must be byte-identical to an uninterrupted run's.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, DatasetAxis, ResultStore, grid

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Six points, each slowed to ~0.5 s by repeats so the kill window
#: between "first point stored" and "all points stored" is wide.
SLOW_SPEC = CampaignSpec(
    name="resume-test",
    grids=(
        grid(
            "g1",
            [DatasetAxis(kind="C", users_frac=0.05, n_candidates=8,
                         n_facilities=16)],
            solvers=("iqt",),
            taus=(0.6, 0.7),
            ks=(2, 3, 4),
            x="k",
            repeats=60,
        ),
    ),
)


def _run_cli(spec_path, store_root, timeout=300):
    return subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "run",
         "--spec", str(spec_path), "--store", str(store_root)],
        capture_output=True, text=True, timeout=timeout,
        cwd=REPO_ROOT, env=_env(),
    )


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _deterministic(record):
    return {part: record[part]
            for part in ("params", "dataset_hash", "x", "result")}


def test_kill_then_resume_completes_exactly_the_remaining_points(tmp_path):
    spec_path = tmp_path / "spec.json"
    SLOW_SPEC.save_json(spec_path)
    store_root = tmp_path / "campaigns"
    store = ResultStore(store_root / SLOW_SPEC.name)

    # Reference: an uninterrupted run in a separate store.
    reference_root = tmp_path / "reference"
    proc = _run_cli(spec_path, reference_root)
    assert proc.returncode == 0, proc.stderr
    reference = ResultStore(reference_root / SLOW_SPEC.name)
    total = len(SLOW_SPEC.points())
    assert len(reference.keys()) == total

    # Start the real run in its own process group and SIGKILL the group
    # once at least one point (but not all) has been persisted.
    victim = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "--spec", str(spec_path), "--store", str(store_root)],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        cwd=REPO_ROOT, env=_env(), start_new_session=True,
    )
    try:
        deadline = time.time() + 240
        while time.time() < deadline:
            if len(store.keys()) >= 2:
                break
            if victim.poll() is not None:
                pytest.fail("campaign finished before it could be killed; "
                            "slow spec is not slow enough")
            time.sleep(0.02)
        else:
            pytest.fail("no point completed before the kill deadline")
        os.killpg(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    completed = store.keys()
    assert 0 < len(completed) < total
    # The kill can never leave a torn record behind.
    for key in completed:
        assert store.get(key)["key"] == key
    assert not [p for p in store.points_dir.iterdir() if p.suffix != ".json"]

    # Resume executes exactly the remaining points...
    proc = _run_cli(spec_path, store_root)
    assert proc.returncode == 0, proc.stderr
    assert f"{total - len(completed)} executed" in proc.stdout
    assert f"{len(completed)} cached" in proc.stdout
    assert store.keys() == reference.keys()

    # ...and every record's deterministic section is byte-identical to
    # the uninterrupted run's (sorted-keys JSON, so bytes prove it).
    for key in reference.keys():
        assert _deterministic(store.get(key)) == \
            _deterministic(reference.get(key))
        a = json.loads(store.point_path(key).read_text())
        b = json.loads(reference.point_path(key).read_text())
        assert json.dumps(_deterministic(a), sort_keys=True) == \
            json.dumps(_deterministic(b), sort_keys=True)
