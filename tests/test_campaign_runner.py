"""Campaign runner: memoized planning, incremental re-runs, isolation.

All grids here are tiny (the smoke population: 5% users, 8-12
candidates) so inline runs complete in seconds; the worker-pool path is
exercised once with 2 workers and once under an impossible timeout.
"""

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    DatasetAxis,
    ResultStore,
    execute_point,
    grid,
    plan_campaign,
)
from repro.exceptions import CampaignError

TINY = DatasetAxis(kind="C", users_frac=0.05, n_candidates=8,
                   n_facilities=16)


def _spec(ks=(2, 3), taus=(0.7,), name="t", **kwargs):
    g = grid("g1", [TINY], solvers=("iqt",), taus=taus, ks=ks, x="k",
             repeats=2, **kwargs)
    return CampaignSpec(name=name, grids=(g,))


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


class TestPlanning:
    def test_fresh_store_plans_everything(self, store):
        plan = plan_campaign(_spec(), store)
        assert len(plan.tasks) == 2
        assert plan.cached == []
        assert plan.total == 2

    def test_resume_false_replans_completed_points(self, store):
        CampaignRunner(_spec(), store).run()
        plan = plan_campaign(_spec(), store, resume=False)
        assert len(plan.tasks) == 2
        assert plan.cached == []


class TestInlineRuns:
    def test_run_executes_and_persists_every_point(self, store):
        report = CampaignRunner(_spec(), store).run()
        assert report.ok
        assert (report.total, report.executed, report.cached) == (2, 2, 0)
        assert len(store.keys()) == 2
        for record in store.records():
            assert record["timing"]["repeats"] == 2
            assert len(record["result"]["selected"]) == record["params"]["k"]

    def test_second_run_is_pure_cache(self, store):
        CampaignRunner(_spec(), store).run()
        report = CampaignRunner(_spec(), store).run()
        assert (report.executed, report.cached) == (0, 2)

    def test_grid_extension_reuses_prior_points(self, store):
        CampaignRunner(_spec(ks=(2,)), store).run()
        report = CampaignRunner(_spec(ks=(2, 3)), store).run()
        assert (report.executed, report.cached) == (1, 1)
        # And the original point's record is untouched.
        assert len(store.keys()) == 2

    def test_records_are_deterministic_across_runs(self, store, tmp_path):
        """Two independent stores produce byte-identical deterministic
        sections (params/dataset_hash/x/result) for every point."""
        other = ResultStore(tmp_path / "other")
        CampaignRunner(_spec(), store).run()
        CampaignRunner(_spec(), other).run()
        assert store.keys() == other.keys()
        for key in store.keys():
            a, b = store.get(key), other.get(key)
            for part in ("params", "dataset_hash", "x", "result"):
                assert a[part] == b[part], part

    def test_progress_messages_emitted(self, store):
        lines = []
        CampaignRunner(_spec(), store).run(progress=lines.append)
        assert any("2 to run" in line for line in lines)
        assert sum("ok" in line for line in lines) == 2


class TestExecutePoint:
    def test_expected_key_contradiction_refused(self, store):
        task = plan_campaign(_spec(), store).tasks[0]
        with pytest.raises(CampaignError, match="key mismatch"):
            execute_point(task.grid, task.params, expected_key="f" * 32)

    def test_compete_workload_records_round(self):
        g = grid("duel", [TINY], solvers=("iqt",), ks=(2,),
                 workload="compete", series="capture", repeats=2,
                 captures=({"model": "evenly-split"},))
        spec = CampaignSpec(name="d", grids=(g,))
        _, point = spec.points()[0]
        record = execute_point("duel", point.params(), campaign="d")
        assert set(record["result"]) >= {
            "leader_initial", "rival_selected", "erosion", "recovered",
        }
        assert record["timing"]["repeats"] == 2


class TestWorkerPool:
    def test_pool_run_matches_inline_records(self, store, tmp_path):
        inline = ResultStore(tmp_path / "inline")
        CampaignRunner(_spec(), inline).run()
        report = CampaignRunner(_spec(), store, workers=2).run()
        assert report.ok and report.executed == 2
        assert store.keys() == inline.keys()
        for key in store.keys():
            a, b = store.get(key), inline.get(key)
            for part in ("params", "dataset_hash", "x", "result"):
                assert a[part] == b[part], part

    def test_timeout_fails_points_without_storing_them(self, store):
        # ~1s of repeats per point, so a 0.1s deadline reliably fires.
        slow = CampaignSpec(
            name="slow",
            grids=(grid("g1", [TINY], solvers=("iqt",), ks=(2, 3), x="k",
                        repeats=120),),
        )
        report = CampaignRunner(slow, store, workers=1, timeout_s=0.1).run()
        assert not report.ok
        assert len(report.failed) == 2
        assert all("timeout" in reason for _, _, reason in report.failed)
        assert store.keys() == []
        failures = (store.root / "failures.jsonl").read_text().splitlines()
        assert len(failures) == 2

    def test_failed_points_retry_on_next_run(self, store):
        slow = CampaignSpec(
            name="slow",
            grids=(grid("g1", [TINY], solvers=("iqt",), ks=(2,), x="k",
                        repeats=120),),
        )
        CampaignRunner(slow, store, workers=1, timeout_s=0.1).run()
        assert store.keys() == []
        report = CampaignRunner(slow, store, workers=1).run()
        assert report.ok and report.executed == 1

    def test_negative_workers_rejected(self, store):
        with pytest.raises(CampaignError, match="workers"):
            CampaignRunner(_spec(), store, workers=-1)
