"""Cache correctness under streaming updates (never serve stale results).

The property: after any sequence of streaming mutations followed by a
``publish_streaming``, the engine's answer equals a fresh, fully scalar
greedy solve on ``session.current_dataset()`` — the cache may speed
things up but can never change (or lag) the result.
"""

import numpy as np
import pytest

from repro.entities import MovingUser
from repro.service import SelectionEngine, SelectionQuery
from repro.solvers import BaselineGreedySolver, MC2LSProblem
from repro.streaming import StreamingMC2LS

from .conftest import build_instance


def fresh_scalar_reference(dataset, k, tau):
    solver = BaselineGreedySolver(batch_verify=False, fast_select=False)
    return solver.solve(MC2LSProblem(dataset, k=k, tau=tau))


def assert_matches_fresh(engine, session, k, tau):
    served = engine.execute(SelectionQuery(k=k, tau=tau))
    reference = fresh_scalar_reference(session.current_dataset(), k, tau)
    assert served.selected == reference.selected
    assert served.gains == reference.gains
    assert served.objective == reference.objective
    return served


def test_republish_after_mutation_serves_fresh_result():
    dataset = build_instance(seed=31, n_users=30, n_candidates=10)
    session = StreamingMC2LS.from_dataset(dataset, k=3, tau=0.6)
    with SelectionEngine(max_workers=2) as engine:
        engine.publish_streaming(session)
        before = assert_matches_fresh(engine, session, k=3, tau=0.6)
        # Warm hit on the same version.
        again = engine.execute(SelectionQuery(k=3, tau=0.6))
        assert again.stats.result_cache == "hit"
        assert again.selected == before.selected

        # Mutate hard enough to matter: drop a third of the users.
        for user in dataset.users[::3]:
            session.remove_user(user.uid)
        snap = engine.publish_streaming(session)
        assert snap.version == session.events_processed

        after = assert_matches_fresh(engine, session, k=3, tau=0.6)
        assert after.stats.result_cache == "miss"  # never the stale entry
        assert after.stats.snapshot_hash == snap.content_hash


@pytest.mark.parametrize("seed", [41, 42, 43])
def test_random_event_stream_property(seed):
    """Seeded random add/remove/update streams, re-checked after each burst."""
    rng = np.random.default_rng(seed)
    dataset = build_instance(seed=seed, n_users=24, n_candidates=8, r=6)
    session = StreamingMC2LS.from_dataset(dataset, k=2, tau=0.6)
    live = {u.uid: u for u in dataset.users}
    next_uid = max(live) + 1

    def random_user(uid):
        positions = np.clip(rng.normal(12.0, 4.0, size=(6, 2)), 0, 25)
        return MovingUser(uid, positions)

    with SelectionEngine(max_workers=2) as engine:
        engine.publish_streaming(session)
        assert_matches_fresh(engine, session, k=2, tau=0.6)
        for _burst in range(3):
            for _event in range(4):
                op = rng.integers(3)
                if op == 0 or not live:
                    user = random_user(next_uid)
                    session.add_user(user)
                    live[user.uid] = user
                    next_uid += 1
                elif op == 1:
                    uid = int(rng.choice(sorted(live)))
                    session.remove_user(uid)
                    del live[uid]
                else:
                    uid = int(rng.choice(sorted(live)))
                    user = random_user(uid)
                    session.update_user(user)
                    live[uid] = user
            engine.publish_streaming(session)
            # Both a fresh k and a previously queried k must be fresh.
            assert_matches_fresh(engine, session, k=2, tau=0.6)
            assert_matches_fresh(engine, session, k=3, tau=0.6)


def test_stale_entry_never_served_when_selection_changes():
    """Engineer a mutation that flips the winning candidate, then check
    the engine does not return the pre-mutation selection."""
    dataset = build_instance(seed=51, n_users=30, n_candidates=10)
    session = StreamingMC2LS.from_dataset(dataset, k=1, tau=0.6)
    with SelectionEngine(max_workers=2) as engine:
        engine.publish_streaming(session)
        before = engine.execute(SelectionQuery(k=1, tau=0.6))
        winner = before.selected[0]

        # Remove every user the winner influences: its gain drops to
        # zero, so the fresh selection must differ.
        reference = fresh_scalar_reference(session.current_dataset(), k=1, tau=0.6)
        covered = set(reference.table.omega_c.get(winner, ()))
        removable = [uid for uid in covered if uid in {u.uid for u in dataset.users}]
        if len(removable) == len(dataset.users):
            removable = removable[:-2]  # keep the instance non-degenerate
        for uid in removable:
            session.remove_user(uid)
        engine.publish_streaming(session)

        after = assert_matches_fresh(engine, session, k=1, tau=0.6)
        assert after.selected != before.selected or not removable
