"""Unit and property tests for the IQuad-tree (the paper's index)."""

import math

import numpy as np
import pytest

from repro.entities import MovingUser
from repro.exceptions import IndexError_
from repro.geo import Rect
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.spatial import IQuadTree

PF = paper_default_pf()
REGION = Rect(0, 0, 40, 40)


def make_users(n=40, r=12, seed=0, region=REGION):
    """Users with Gaussian activity clouds scattered over the region."""
    rng = np.random.default_rng(seed)
    users = []
    for uid in range(n):
        center = rng.uniform(
            [region.min_x + 3, region.min_y + 3],
            [region.max_x - 3, region.max_y - 3],
        )
        pos = rng.normal(center, scale=1.5, size=(r, 2))
        pos = np.clip(pos, [region.min_x, region.min_y], [region.max_x, region.max_y])
        users.append(MovingUser(uid, pos))
    return users


@pytest.fixture(scope="module")
def tree():
    return IQuadTree(make_users(), d_hat=2.0, tau=0.7, pf=PF, region=REGION)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(IndexError_):
            IQuadTree(make_users(2), d_hat=0, tau=0.7, pf=PF, region=REGION)
        with pytest.raises(IndexError_):
            IQuadTree([], d_hat=2.0, tau=0.7, pf=PF, region=REGION)

    def test_leaf_diagonal_at_most_d_hat(self, tree):
        assert tree.level_diagonal(tree.depth) <= tree.d_hat + 1e-9

    def test_depth_not_excessive(self, tree):
        # one level shallower would violate the diagonal bound
        if tree.depth > 0:
            assert tree.level_diagonal(tree.depth - 1) > tree.d_hat

    def test_counts_conserve_positions(self, tree):
        users = make_users()
        total_positions = sum(u.r for u in users)
        for level in range(tree.depth + 1):
            assert int(tree._run_counts[level].sum()) == total_positions

    def test_eta_monotone_in_level(self, tree):
        # deeper level -> smaller diagonal -> smaller eta
        etas = [tree.eta_for_level(level) for level in range(tree.depth + 1)]
        assert all(a >= b for a, b in zip(etas, etas[1:]))

    def test_nir_positive(self, tree):
        assert tree.nir > 0

    def test_describe(self, tree):
        assert "IQuadTree" in tree.describe()


class TestLeafAddressing:
    def test_inside_points(self, tree):
        cell = tree.leaf_cell_of(1.0, 1.0)
        rect = tree.node_rect(tree.depth, *cell)
        assert rect.contains_xy(1.0, 1.0)

    def test_boundary_clamps(self, tree):
        cell = tree.leaf_cell_of(40.0, 40.0)
        assert all(0 <= c < tree._grid for c in cell)
        cell = tree.leaf_cell_of(-5.0, 500.0)
        assert all(0 <= c < tree._grid for c in cell)


class TestTraversalSoundness:
    """The heart of the index: its three-way split must be *sound*.

    For every abstract facility position v:
      * every user in `influenced` must satisfy Pr_v(o) >= tau,
      * every user pruned (neither influenced nor to_verify) must satisfy
        Pr_v(o) < tau.
    Users in `to_verify` may fall either way.
    """

    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("tau", [0.3, 0.7])
    @pytest.mark.parametrize("exact_rounded", [False, True])
    def test_sound_against_exact_model(self, seed, tau, exact_rounded):
        users = make_users(n=30, r=10, seed=seed)
        t = IQuadTree(
            users, d_hat=2.0, tau=tau, pf=PF, region=REGION, exact_rounded=exact_rounded
        )
        ev = InfluenceEvaluator(PF, tau=tau, early_stopping=False)
        by_uid = {u.uid: u for u in users}
        rng = np.random.default_rng(seed + 50)
        for vx, vy in rng.uniform(0, 40, size=(25, 2)):
            res = t.traverse(float(vx), float(vy))
            for uid in res.influenced:
                assert ev.probability(vx, vy, by_uid[uid].positions) >= tau - 1e-9
            pruned = set(by_uid) - set(res.influenced) - set(res.to_verify)
            for uid in pruned:
                assert ev.probability(vx, vy, by_uid[uid].positions) < tau

    def test_disjoint_sets(self, tree):
        res = tree.traverse(20.0, 20.0)
        assert not (set(res.influenced) & set(res.to_verify))

    def test_exact_rounded_prunes_no_less(self):
        users = make_users(n=30, r=10, seed=4)
        loose = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        tight = IQuadTree(
            users, d_hat=2.0, tau=0.7, pf=PF, region=REGION, exact_rounded=True
        )
        rng = np.random.default_rng(99)
        for vx, vy in rng.uniform(0, 40, size=(10, 2)):
            a = loose.traverse(float(vx), float(vy))
            b = tight.traverse(float(vx), float(vy))
            assert set(b.influenced) == set(a.influenced)
            assert set(b.to_verify) <= set(a.to_verify)


class TestBatchWiseMemoisation:
    def test_same_leaf_hits_cache(self):
        users = make_users(n=20, seed=5)
        t = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        a = t.traverse(10.0, 10.0)
        hits_before = t.stats.leaf_cache_hits
        b = t.traverse(10.1, 10.1)  # same 1.41-km leaf cell
        assert t.leaf_cell_of(10.0, 10.0) == t.leaf_cell_of(10.1, 10.1)
        assert t.stats.leaf_cache_hits == hits_before + 1
        assert a.influenced == b.influenced and a.to_verify == b.to_verify

    def test_omega_inf_computed_once_per_node(self):
        users = make_users(n=20, seed=6)
        t = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        t.traverse(5.0, 5.0)
        first = t.stats.omega_inf_computations
        t.traverse(5.0, 35.0)  # different leaf, shares only upper levels
        second = t.stats.omega_inf_computations - first
        # The second traversal reuses at least the root's omega_inf.
        assert second < t.depth + 1

    def test_pair_accounting(self):
        users = make_users(n=25, seed=7)
        t = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        t.traverse(12.0, 12.0)
        t.traverse(30.0, 8.0)
        assert t.stats.traversals == 2
        assert t.stats.pairs_total == 2 * len(users)

    def test_stats_reset(self):
        users = make_users(n=10, seed=8)
        t = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        t.traverse(1.0, 1.0)
        t.stats.reset()
        assert t.stats.traversals == 0
        assert t.stats.pairs_total == 0


class TestISRuleAtScale:
    def test_concentrated_user_is_confirmed_via_is(self):
        """A user with many positions piled next to a facility must be
        IS-confirmed (not merely sent to verification)."""
        pos = np.random.default_rng(0).normal([20.0, 20.0], 0.05, size=(40, 2))
        users = [MovingUser(0, pos)] + make_users(n=5, seed=9)
        users = [MovingUser(i, u.positions) for i, u in enumerate(users)]
        t = IQuadTree(users, d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        res = t.traverse(20.0, 20.0)
        assert 0 in res.influenced

    def test_remote_user_is_nir_pruned(self):
        far = MovingUser(0, np.full((10, 2), 39.0))
        near = MovingUser(1, np.full((10, 2), 1.0))
        t = IQuadTree([far, near], d_hat=2.0, tau=0.7, pf=PF, region=REGION)
        res = t.traverse(1.0, 1.0)
        assert 0 not in res.influenced
        assert 0 not in res.to_verify  # pruned by NIR


class TestPositionsInLeaf:
    def test_returns_copy_with_right_positions(self, tree):
        users = make_users()
        u = users[0]
        cell = tree.leaf_cell_of(float(u.positions[0, 0]), float(u.positions[0, 1]))
        stored = tree.positions_in_leaf(cell)
        assert u.uid in stored
        rect = tree.node_rect(tree.depth, *cell)
        assert rect.expanded(1e-9).contains_mask(stored[u.uid]).all()
