"""Unit tests for :mod:`repro.geo.rect`."""

import math

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geo import Point, Rect


@pytest.fixture
def unit() -> Rect:
    return Rect(0, 0, 1, 1)


class TestConstruction:
    def test_invalid_rect_raises(self):
        with pytest.raises(GeometryError):
            Rect(1, 0, 0, 1)
        with pytest.raises(GeometryError):
            Rect(0, 1, 1, 0)

    def test_degenerate_point_rect_allowed(self):
        r = Rect.from_point(Point(2, 3))
        assert r.area == 0.0
        assert r.contains_point(Point(2, 3))

    def test_from_points(self):
        r = Rect.from_points([Point(1, 5), Point(-2, 0), Point(3, 2)])
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (-2, 0, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(GeometryError):
            Rect.from_points([])

    def test_from_array(self):
        r = Rect.from_array(np.array([[0.0, 1.0], [2.0, -1.0]]))
        assert (r.min_x, r.min_y, r.max_x, r.max_y) == (0, -1, 2, 1)

    def test_from_array_rejects_bad_shape(self):
        with pytest.raises(GeometryError):
            Rect.from_array(np.zeros((0, 2)))
        with pytest.raises(GeometryError):
            Rect.from_array(np.zeros((3, 3)))

    def test_bounding(self):
        r = Rect.bounding([Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)])
        assert r == Rect(0, 0, 3, 3)
        with pytest.raises(GeometryError):
            Rect.bounding([])


class TestDerived:
    def test_metrics(self, unit):
        assert unit.width == 1 and unit.height == 1
        assert unit.area == 1
        assert unit.perimeter == 4
        assert unit.diagonal == pytest.approx(math.sqrt(2))
        assert unit.center == Point(0.5, 0.5)

    def test_corners_ccw(self, unit):
        a, b, c, d = unit.corners()
        assert (a, b, c, d) == (Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1))


class TestPredicates:
    def test_contains_point_boundary_inclusive(self, unit):
        assert unit.contains_point(Point(0, 0))
        assert unit.contains_point(Point(1, 1))
        assert not unit.contains_point(Point(1.0001, 0.5))

    def test_contains_rect(self, unit):
        assert unit.contains_rect(Rect(0.2, 0.2, 0.8, 0.8))
        assert unit.contains_rect(unit)
        assert not unit.contains_rect(Rect(0.5, 0.5, 1.5, 0.9))

    def test_intersects(self, unit):
        assert unit.intersects(Rect(0.5, 0.5, 2, 2))
        assert unit.intersects(Rect(1, 1, 2, 2))  # touching counts
        assert not unit.intersects(Rect(1.1, 1.1, 2, 2))


class TestCombinators:
    def test_union(self, unit):
        assert unit.union(Rect(2, -1, 3, 0.5)) == Rect(0, -1, 3, 1)

    def test_intersection(self, unit):
        assert unit.intersection(Rect(0.5, 0.5, 2, 2)) == Rect(0.5, 0.5, 1, 1)
        assert unit.intersection(Rect(5, 5, 6, 6)) is None

    def test_expanded(self, unit):
        assert unit.expanded(1.0) == Rect(-1, -1, 2, 2)
        with pytest.raises(GeometryError):
            unit.expanded(-0.1)

    def test_enlargement(self, unit):
        assert unit.enlargement(Rect(0.2, 0.2, 0.4, 0.4)) == 0.0
        assert unit.enlargement(Rect(0, 0, 2, 1)) == pytest.approx(1.0)


class TestDistances:
    def test_min_distance_inside_is_zero(self, unit):
        assert unit.min_distance_to_point(Point(0.5, 0.5)) == 0.0

    def test_min_distance_axis(self, unit):
        assert unit.min_distance_to_point(Point(2, 0.5)) == pytest.approx(1.0)

    def test_min_distance_corner(self, unit):
        assert unit.min_distance_to_point(Point(4, 5)) == pytest.approx(5.0)

    def test_max_distance_from_center(self, unit):
        assert unit.max_distance_to_point(Point(0.5, 0.5)) == pytest.approx(
            math.sqrt(0.5)
        )

    def test_max_distance_outside(self, unit):
        # farthest corner from (2, 2) is (0, 0)
        assert unit.max_distance_to_point(Point(2, 2)) == pytest.approx(math.sqrt(8))

    def test_max_ge_min(self, unit):
        for p in [Point(0.3, 0.9), Point(-1, 2), Point(5, 5)]:
            assert unit.max_distance_to_point(p) >= unit.min_distance_to_point(p)


class TestVectorised:
    def test_contains_mask(self, unit):
        xy = np.array([[0.5, 0.5], [2.0, 0.5], [1.0, 1.0]])
        assert unit.contains_mask(xy).tolist() == [True, False, True]

    def test_count_inside(self, unit):
        xy = np.array([[0.1, 0.1], [0.9, 0.9], [1.5, 0.5]])
        assert unit.count_inside(xy) == 2
