"""Record → replay round trips: bit-identity, failure outcomes, fixtures.

The invariants pinned here are the tuner's foundation:

* a recorded trace replayed under any **exact** config reproduces the
  recorded selections bit-for-bit — including traces with cancelled and
  deadline-expired queries, which replay to the same outcomes;
* replaying one trace twice under one config yields identical
  selections *and* identical cache-event sequences (determinism);
* the JSONL serialisation round-trips every event field, and malformed
  files fail with :class:`~repro.exceptions.TuningError`;
* the committed canned fixtures stay replayable.
"""

import json

import pytest

from repro.capture import CaptureSpec
from repro.exceptions import TuningError
from repro.influence import ExponentialPF, SigmoidPF
from repro.service import SelectionQuery
from repro.tuning import (
    CANNED_WORKLOADS,
    EngineConfig,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
    record_canned,
)
from repro.tuning.trace import TraceEvent, dataset_spec

SMALL = dict(n_users=50, n_candidates=8, n_facilities=16, seed=3)

FIXTURES = {
    "bursty": "tests/fixtures/traces/bursty_sweep.jsonl",
    "churn": "tests/fixtures/traces/streaming_churn.jsonl",
    "cold-start": "tests/fixtures/traces/cold_start_storm.jsonl",
}


# ----------------------------------------------------------------------
# SelectionQuery serialisation
# ----------------------------------------------------------------------
class TestQuerySerialisation:
    def test_default_query_round_trips(self):
        q = SelectionQuery(k=3, tau=0.65)
        assert SelectionQuery.from_dict(q.as_dict()) == q

    def test_full_query_round_trips(self):
        q = SelectionQuery(
            k=2,
            tau=0.6,
            solver="iqt-c",
            pf=ExponentialPF(p0=0.9, scale=2.0),
            candidate_ids=(1, 3, 5),
            batch_verify=False,
            fast_select=False,
            deadline_s=1.5,
            use_cache=False,
            capture=CaptureSpec(model="mnl", mnl_beta=2.0),
        )
        back = SelectionQuery.from_dict(q.as_dict())
        # PF instances define no __eq__; their cache keys are identity.
        assert back.pf.cache_key() == q.pf.cache_key()
        assert isinstance(back.pf, ExponentialPF)
        assert back.as_dict() == q.as_dict()
        assert back.capture.model == "mnl"

    def test_as_dict_is_json_portable(self):
        q = SelectionQuery(k=2, tau=0.6, pf=SigmoidPF(rho=1.2))
        back = SelectionQuery.from_dict(json.loads(json.dumps(q.as_dict())))
        assert back.as_dict() == q.as_dict()
        assert back.pf.cache_key() == q.pf.cache_key()


# ----------------------------------------------------------------------
# Trace JSONL round trip
# ----------------------------------------------------------------------
class TestTraceSerialisation:
    def test_save_load_round_trip(self, tmp_path):
        trace = record_canned("bursty", None, **SMALL)
        path = tmp_path / "t.jsonl"
        trace.save(path)
        loaded = WorkloadTrace.load(path)
        assert loaded.name == trace.name
        assert loaded.dataset == trace.dataset
        assert loaded.streaming == trace.streaming
        assert loaded.engine == trace.engine
        assert len(loaded) == len(trace)
        for a, b in zip(loaded.events, trace.events):
            assert a.as_dict() == b.as_dict()

    def test_header_records_engine_config(self, tmp_path):
        config = EngineConfig(prepared_cache_size=8)
        trace = record_canned("cold-start", None, config=config, **SMALL)
        assert trace.engine["prepared_cache_size"] == 8

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TuningError, match="empty"):
            WorkloadTrace.load(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "no_header.jsonl"
        path.write_text('{"kind": "query", "offset_s": 0.0}\n')
        with pytest.raises(TuningError, match="header"):
            WorkloadTrace.load(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "v99.jsonl"
        path.write_text(
            '{"kind": "header", "version": 99, "dataset": {}}\n'
        )
        with pytest.raises(TuningError, match="version"):
            WorkloadTrace.load(path)

    def test_malformed_event_line_names_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"kind": "header", "version": 1, "dataset": dataset_spec()}
            )
            + "\nnot json\n"
        )
        with pytest.raises(TuningError, match="line 2"):
            WorkloadTrace.load(path)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(TuningError, match="kind"):
            TraceEvent.from_dict({"kind": "mystery"})

    def test_unknown_dataset_kind_rejected(self):
        with pytest.raises(TuningError, match="dataset kind"):
            dataset_spec(kind="mars")


# ----------------------------------------------------------------------
# Record → replay bit-identity
# ----------------------------------------------------------------------
class TestRoundTrip:
    @pytest.mark.parametrize("workload", CANNED_WORKLOADS)
    def test_replay_reproduces_recorded_selections(self, workload):
        trace = record_canned(workload, None, **SMALL)
        report = TraceReplayer(trace).replay(EngineConfig())
        assert report.selection_mismatches(trace) == 0
        assert report.outcomes() == tuple(
            e.outcome for e in trace.query_events()
        )

    def test_bursty_replays_failure_outcomes(self):
        """The bursty plan ends in deadline-expired and cancelled queries,
        and replays reproduce both failure modes."""
        trace = record_canned("bursty", None, **SMALL)
        recorded = [e.outcome for e in trace.query_events()]
        assert recorded.count("deadline") == 2
        assert recorded.count("cancelled") == 2
        report = TraceReplayer(trace).replay(EngineConfig())
        assert report.outcomes().count("deadline") == 2
        assert report.outcomes().count("cancelled") == 2

    @pytest.mark.parametrize("workload", CANNED_WORKLOADS)
    def test_replay_twice_is_deterministic(self, workload):
        trace = record_canned(workload, None, **SMALL)
        replayer = TraceReplayer(trace)
        config = EngineConfig(prepared_cache_size=8, result_cache_size=64)
        first = replayer.replay(config)
        second = replayer.replay(config)
        assert first.selections() == second.selections()
        assert first.cache_sequence() == second.cache_sequence()
        assert first.outcomes() == second.outcomes()

    def test_streaming_churn_replay_matches_recording(self):
        """Publishes replayed from ``(moves, seed)`` rebuild identical
        snapshots, so post-churn selections match the recording too."""
        trace = record_canned("churn", None, **SMALL)
        assert any(e.kind == "publish" for e in trace.events)
        replayer = TraceReplayer(trace)
        first = replayer.replay(EngineConfig())
        second = replayer.replay(EngineConfig())
        assert first.selection_mismatches(trace) == 0
        assert first.selections() == second.selections()
        assert first.cache_sequence() == second.cache_sequence()

    def test_kernel_knob_overrides_keep_results(self):
        """Forcing the scalar kernels changes latency, never selections."""
        trace = record_canned("cold-start", None, **SMALL)
        report = TraceReplayer(trace).replay(
            EngineConfig(batch_verify=False, fast_select=False)
        )
        assert report.selection_mismatches(trace) == 0

    def test_open_loop_pacing_matches_recorded_selections(self):
        trace = record_canned("cold-start", None, **SMALL)
        report = TraceReplayer(trace).replay(
            EngineConfig(), pacing="open-loop"
        )
        assert report.selection_mismatches(trace) == 0
        assert len(report.events) == sum(1 for _ in trace.query_events())

    def test_unknown_pacing_rejected(self):
        trace = record_canned("cold-start", None, **SMALL)
        with pytest.raises(TuningError, match="pacing"):
            TraceReplayer(trace).replay(EngineConfig(), pacing="warp")


# ----------------------------------------------------------------------
# Recorder journaling details
# ----------------------------------------------------------------------
class TestRecorder:
    def test_recorder_journals_stats_and_objective(self):
        from repro.tuning.trace import build_dataset

        spec = dataset_spec(**SMALL)
        engine = EngineConfig().make_engine(build_dataset(spec))
        try:
            recorder = TraceRecorder(engine, spec, name="unit")
            result = recorder.execute(SelectionQuery(k=2, tau=0.6))
        finally:
            engine.shutdown()
        event = recorder.trace.events[0]
        assert event.outcome == "ok"
        assert event.selected == list(result.selected)
        assert event.objective == result.objective
        assert event.stats["total_seconds"] > 0
        assert event.offset_s >= 0

    def test_submit_fills_journal_on_completion(self):
        from repro.tuning.trace import build_dataset

        spec = dataset_spec(**SMALL)
        engine = EngineConfig().make_engine(build_dataset(spec))
        try:
            recorder = TraceRecorder(engine, spec, name="unit")
            handle = recorder.submit(SelectionQuery(k=2, tau=0.6))
            result = handle.result(10.0)
        finally:
            engine.shutdown()
        event = recorder.trace.events[0]
        assert event.outcome == "ok"
        assert event.selected == list(result.selected)


# ----------------------------------------------------------------------
# Committed fixtures
# ----------------------------------------------------------------------
class TestCannedFixtures:
    @pytest.mark.parametrize("workload", CANNED_WORKLOADS)
    def test_fixture_loads(self, workload):
        trace = WorkloadTrace.load(FIXTURES[workload])
        assert trace.name == workload
        assert sum(1 for _ in trace.query_events()) >= 20

    def test_bursty_fixture_replay_is_deterministic(self):
        """The CI determinism smoke: two replays of the committed bursty
        fixture are identical in selections and cache events, and match
        the recording."""
        trace = WorkloadTrace.load(FIXTURES["bursty"])
        replayer = TraceReplayer(trace)
        first = replayer.replay(EngineConfig())
        second = replayer.replay(EngineConfig())
        assert first.selections() == second.selections()
        assert first.cache_sequence() == second.cache_sequence()
        assert first.outcomes() == second.outcomes()
        assert first.selection_mismatches(trace) == 0

    def test_unknown_workload_rejected(self):
        with pytest.raises(TuningError, match="unknown canned workload"):
            record_canned("quiet", None)
