"""LRU cache semantics: bounds, counters, snapshot invalidation."""

import threading

import pytest

from repro.service import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get(("h", 1)) is None
        cache.put(("h", 1), "a")
        assert cache.get(("h", 1)) == "a"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_is_lru_order(self):
        cache = LRUCache(2)
        cache.put(("h", 1), "a")
        cache.put(("h", 2), "b")
        cache.get(("h", 1))  # refresh 1 -> 2 becomes LRU
        cache.put(("h", 3), "c")
        assert cache.get(("h", 2)) is None
        assert cache.get(("h", 1)) == "a"
        assert cache.get(("h", 3)) == "c"
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put(("h", 1), "a")
        cache.put(("h", 2), "b")
        cache.put(("h", 1), "a2")  # refresh, no eviction
        cache.put(("h", 3), "c")  # evicts 2, not 1
        assert cache.get(("h", 1)) == "a2"
        assert cache.get(("h", 2)) is None

    def test_get_or_create(self):
        cache = LRUCache(4)
        calls = []
        value, hit = cache.get_or_create(("h", 1), lambda: calls.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_create(("h", 1), lambda: calls.append(1) or "w")
        assert (value, hit) == ("v", True)
        assert len(calls) == 1


class TestInvalidation:
    def test_invalidate_snapshot_sweeps_only_that_hash(self):
        cache = LRUCache(8)
        for i in range(3):
            cache.put(("old", i), i)
        cache.put(("new", 0), "keep")
        assert cache.invalidate_snapshot("old") == 3
        assert len(cache) == 1
        assert cache.get(("new", 0)) == "keep"
        assert cache.stats().invalidations == 3

    def test_clear(self):
        cache = LRUCache(8)
        cache.put(("h", 1), 1)
        cache.put(("h", 2), 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidations == 2


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = LRUCache(32)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = ("h", (tid * 7 + i) % 40)
                    if i % 3 == 0:
                        cache.put(key, i)
                    elif i % 7 == 0:
                        cache.invalidate_snapshot("h")
                    else:
                        cache.get(key)
                    cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
