"""LRU cache semantics: bounds, counters, snapshot invalidation."""

import threading

import pytest

from repro.service import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get(("h", 1)) is None
        cache.put(("h", 1), "a")
        assert cache.get(("h", 1)) == "a"
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_eviction_is_lru_order(self):
        cache = LRUCache(2)
        cache.put(("h", 1), "a")
        cache.put(("h", 2), "b")
        cache.get(("h", 1))  # refresh 1 -> 2 becomes LRU
        cache.put(("h", 3), "c")
        assert cache.get(("h", 2)) is None
        assert cache.get(("h", 1)) == "a"
        assert cache.get(("h", 3)) == "c"
        assert cache.stats().evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put(("h", 1), "a")
        cache.put(("h", 2), "b")
        cache.put(("h", 1), "a2")  # refresh, no eviction
        cache.put(("h", 3), "c")  # evicts 2, not 1
        assert cache.get(("h", 1)) == "a2"
        assert cache.get(("h", 2)) is None

    def test_get_or_create(self):
        cache = LRUCache(4)
        calls = []
        value, hit = cache.get_or_create(("h", 1), lambda: calls.append(1) or "v")
        assert (value, hit) == ("v", False)
        value, hit = cache.get_or_create(("h", 1), lambda: calls.append(1) or "w")
        assert (value, hit) == ("v", True)
        assert len(calls) == 1


class TestInvalidation:
    def test_invalidate_snapshot_sweeps_only_that_hash(self):
        cache = LRUCache(8)
        for i in range(3):
            cache.put(("old", i), i)
        cache.put(("new", 0), "keep")
        assert cache.invalidate_snapshot("old") == 3
        assert len(cache) == 1
        assert cache.get(("new", 0)) == "keep"
        assert cache.stats().invalidations == 3

    def test_clear(self):
        cache = LRUCache(8)
        cache.put(("h", 1), 1)
        cache.put(("h", 2), 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().invalidations == 2


class TestGetOrCreateStampede:
    def test_two_thread_stampede_builds_once(self):
        cache = LRUCache(4)
        calls = []
        entered = threading.Event()
        release = threading.Event()

        def slow_factory():
            calls.append(threading.get_ident())
            entered.set()
            release.wait(5)
            return "built"

        results = []

        def caller():
            results.append(cache.get_or_create(("h", 1), slow_factory))

        t1 = threading.Thread(target=caller)
        t1.start()
        assert entered.wait(5)
        t2 = threading.Thread(target=caller)
        t2.start()
        release.set()
        t1.join(5)
        t2.join(5)
        # Exactly one factory run; both callers got the value, and only
        # the builder reports a miss.
        assert len(calls) == 1
        assert sorted(v for v, _ in results) == ["built", "built"]
        assert sorted(hit for _, hit in results) == [False, True]
        stats = cache.stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_unrelated_keys_not_serialised_by_a_slow_build(self):
        cache = LRUCache(4)
        entered = threading.Event()
        release = threading.Event()

        def slow_factory():
            entered.set()
            release.wait(5)
            return "slow"

        t = threading.Thread(
            target=lambda: cache.get_or_create(("h", "slow"), slow_factory)
        )
        t.start()
        assert entered.wait(5)
        # While the slow build is in flight, a different key must build
        # immediately — the factory cannot be holding the cache lock.
        value, hit = cache.get_or_create(("h", "fast"), lambda: "fast")
        assert (value, hit) == ("fast", False)
        release.set()
        t.join(5)
        assert cache.get(("h", "slow")) == "slow"

    def test_factory_failure_releases_the_key(self):
        cache = LRUCache(4)

        def boom():
            raise RuntimeError("factory failed")

        with pytest.raises(RuntimeError):
            cache.get_or_create(("h", 1), boom)
        value, hit = cache.get_or_create(("h", 1), lambda: "ok")
        assert (value, hit) == ("ok", False)

    def test_invalidate_racing_in_flight_build_is_not_resurrected(self):
        cache = LRUCache(4)
        entered = threading.Event()
        release = threading.Event()
        results = []

        def slow_factory():
            entered.set()
            release.wait(5)
            return "stale-snapshot-product"

        t = threading.Thread(
            target=lambda: results.append(cache.get_or_create(("old", 1), slow_factory))
        )
        t.start()
        assert entered.wait(5)
        # A republish sweeps the hash while the build is still running.
        cache.invalidate_snapshot("old")
        release.set()
        t.join(5)
        # The in-flight caller still gets its (correct-for-its-key) value…
        assert results == [("stale-snapshot-product", False)]
        # …but the completed build must NOT re-enter the cache after the
        # sweep: a later lookup misses and rebuilds fresh.
        assert cache.get(("old", 1)) is None
        value, hit = cache.get_or_create(("old", 1), lambda: "rebuilt")
        assert (value, hit) == ("rebuilt", False)


class TestThreadSafety:
    def test_concurrent_mixed_operations(self):
        cache = LRUCache(32)
        errors = []

        def worker(tid):
            try:
                for i in range(300):
                    key = ("h", (tid * 7 + i) % 40)
                    if i % 3 == 0:
                        cache.put(key, i)
                    elif i % 7 == 0:
                        cache.invalidate_snapshot("h")
                    else:
                        cache.get(key)
                    cache.stats()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
