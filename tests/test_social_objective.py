"""Tests for interests, the geo-social objective and its greedy solver."""

import numpy as np
import pytest

from repro.competition import InfluenceTable, cinf_group
from repro.exceptions import DataError, SolverError
from repro.social import (
    CascadeSampler,
    GeoSocialObjective,
    GeoSocialSolver,
    InterestModel,
    SocialGraph,
    geo_social_graph,
    geo_social_greedy,
    random_interest_model,
)
from repro.solvers import MC2LSProblem
from tests.conftest import build_instance


@pytest.fixture
def table():
    return InfluenceTable.from_mappings(
        omega_c={1: {1, 2}, 2: {2, 4}, 3: {1, 3}},
        f_o={1: {1}, 2: {1, 2}, 3: set(), 4: {2}},
    )


class TestInterestModel:
    def test_affinity_in_unit_interval(self):
        model = random_interest_model([1, 2, 3], [10, 11], n_topics=6, seed=0)
        for uid in (1, 2, 3):
            for cid in (10, 11):
                assert 0.0 <= model.affinity(uid, cid) <= 1.0 + 1e-9

    def test_identical_vectors_have_affinity_one(self):
        v = np.array([1.0, 2.0, 3.0])
        model = InterestModel({1: v}, {10: v.copy()})
        assert model.affinity(1, 10) == pytest.approx(1.0)

    def test_orthogonal_vectors_have_affinity_zero(self):
        model = InterestModel(
            {1: np.array([1.0, 0.0])}, {10: np.array([0.0, 1.0])}
        )
        assert model.affinity(1, 10) == pytest.approx(0.0)

    def test_unknown_entities_neutral(self):
        model = random_interest_model([1], [10], seed=0)
        assert model.affinity(99, 10) == 1.0
        assert model.affinity(1, 99) == 1.0

    def test_best_affinity(self):
        model = InterestModel(
            {1: np.array([1.0, 0.0])},
            {10: np.array([0.0, 1.0]), 11: np.array([1.0, 0.0])},
        )
        assert model.best_affinity(1, [10, 11]) == pytest.approx(1.0)
        assert model.best_affinity(1, []) == 0.0

    def test_validation(self):
        with pytest.raises(DataError):
            InterestModel({}, {1: np.ones(3)})
        with pytest.raises(DataError):
            InterestModel({1: np.ones(3)}, {1: np.ones(4)})
        with pytest.raises(DataError):
            InterestModel({1: np.zeros(3)}, {1: np.ones(3)})
        with pytest.raises(DataError):
            InterestModel({1: -np.ones(3)}, {1: np.ones(3)})
        with pytest.raises(DataError):
            random_interest_model([1], [2], n_topics=0)


class TestGeoSocialObjective:
    def test_reduces_to_cinf_without_extras(self, table):
        objective = GeoSocialObjective(table)
        assert objective.value([1, 3]) == pytest.approx(cinf_group(table, [1, 3]))

    def test_interest_weighting_shrinks_value(self, table):
        # Orthogonal interests zero out user 1's contribution through c1.
        interests = InterestModel(
            {1: np.array([1.0, 0.0])},
            {1: np.array([0.0, 1.0]), 2: np.ones(2), 3: np.ones(2)},
        )
        plain = GeoSocialObjective(table)
        weighted = GeoSocialObjective(table, interests=interests)
        assert weighted.value([1]) < plain.value([1])

    def test_social_term_adds_value(self, table):
        g = SocialGraph()
        g.add_edge(1, 9)  # captured user 1 can activate outsider 9
        sampler = CascadeSampler(g, probability=1.0, n_worlds=4)
        plain = GeoSocialObjective(table)
        social = GeoSocialObjective(table, sampler=sampler, beta=1.0)
        assert social.value([1]) == pytest.approx(plain.value([1]) + 3.0)
        # (seeds {1,2} -> reaches 9: spread = 3 with probability 1.0)

    def test_beta_validation(self, table):
        with pytest.raises(SolverError):
            GeoSocialObjective(table, beta=-1.0)

    def test_marginal(self, table):
        objective = GeoSocialObjective(table)
        assert objective.marginal((3,), 2) == pytest.approx(
            cinf_group(table, [3, 2]) - cinf_group(table, [3])
        )

    def test_monotone_submodular_empirically(self, table):
        g = SocialGraph()
        for a, b in [(1, 2), (2, 3), (3, 4), (1, 4)]:
            g.add_edge(a, b)
        sampler = CascadeSampler(g, probability=0.3, n_worlds=32, seed=0)
        objective = GeoSocialObjective(table, sampler=sampler, beta=0.7)
        # monotone
        assert objective.value([1]) <= objective.value([1, 2]) + 1e-12
        assert objective.value([1, 2]) <= objective.value([1, 2, 3]) + 1e-12
        # submodular: gain of 2 given {} vs given {1, 3}
        g_empty = objective.value([2])
        g_large = objective.value([1, 3, 2]) - objective.value([1, 3])
        assert g_empty >= g_large - 1e-12


class TestGeoSocialGreedy:
    def test_matches_plain_greedy_without_extras(self, table):
        objective = GeoSocialObjective(table)
        selected, value, gains = geo_social_greedy(objective, [1, 2, 3], k=2)
        assert selected == (3, 2)  # the paper's Example 4 sequence
        assert value == pytest.approx(cinf_group(table, [3, 2]))
        assert len(gains) == 2

    def test_validation(self, table):
        objective = GeoSocialObjective(table)
        with pytest.raises(SolverError):
            geo_social_greedy(objective, [1, 2], k=3)

    def test_social_term_can_change_selection(self):
        # Two candidates, equal spatial value; candidate 2's user is a hub.
        table = InfluenceTable.from_mappings(
            omega_c={1: {1}, 2: {2}}, f_o={1: set(), 2: set()}
        )
        g = SocialGraph()
        for friend in (10, 11, 12, 13):
            g.add_edge(2, friend)
        sampler = CascadeSampler(g, probability=1.0, n_worlds=4)
        objective = GeoSocialObjective(table, sampler=sampler, beta=1.0)
        selected, _, _ = geo_social_greedy(objective, [1, 2], k=1)
        assert selected == (2,)  # word of mouth flips the tie


class TestGeoSocialSolver:
    def test_end_to_end(self):
        dataset = build_instance(seed=5, n_users=25, n_candidates=10, n_facilities=6)
        graph = geo_social_graph(dataset.users, mean_degree=4.0, seed=1)
        interests = random_interest_model(
            [u.uid for u in dataset.users],
            [c.fid for c in dataset.candidates],
            seed=1,
        )
        solver = GeoSocialSolver(graph=graph, interests=interests, beta=0.5, seed=2)
        result = solver.solve(MC2LSProblem(dataset, k=3, tau=0.4))
        assert len(result.selected) == 3
        assert result.objective > 0
        assert len(result.gains) == 3
        assert result.timings["total"] >= result.timings["greedy"]
        # gains non-increasing (submodularity of the combined objective)
        assert all(a >= b - 1e-9 for a, b in zip(result.gains, result.gains[1:]))

    def test_reduces_to_spatial_without_graph_and_interests(self):
        dataset = build_instance(seed=6, n_users=25, n_candidates=8, n_facilities=5)
        solver = GeoSocialSolver()
        result = solver.solve(MC2LSProblem(dataset, k=3, tau=0.4))
        assert result.selected == result.spatial_only
