"""Result store: atomic point records, byte-identity, the hash memo."""

import json

import pytest

from repro.campaign import DatasetAxis, ResultStore
from repro.exceptions import CampaignError

KEY = "a" * 32


def _record(key=KEY, **extra):
    record = {
        "schema": 1,
        "key": key,
        "grid": "g",
        "params": {"solver": "iqt", "k": 3},
        "result": {"selected": [1, 2, 3]},
        "timing": {"median_s": 0.1},
    }
    record.update(extra)
    return record


class TestPoints:
    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(_record())
        assert store.has(KEY)
        assert store.get(KEY) == _record()
        assert store.keys() == [KEY]

    def test_missing_key_is_absent(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        assert not store.has(KEY)
        assert store.keys() == []

    def test_record_without_key_rejected(self, tmp_path):
        with pytest.raises(CampaignError, match="no key"):
            ResultStore(tmp_path / "s").put({"grid": "g"})

    def test_mislabeled_record_rejected_on_read(self, tmp_path):
        """A record claiming a different key than its filename is
        corruption, never silently served."""
        store = ResultStore(tmp_path / "s")
        store.put(_record())
        path = store.point_path(KEY)
        tampered = json.loads(path.read_text())
        tampered["key"] = "b" * 32
        path.write_text(json.dumps(tampered))
        with pytest.raises(CampaignError, match="claims key"):
            store.get(KEY)

    def test_same_record_writes_byte_identical_files(self, tmp_path):
        """Sorted-keys serialisation: equal records -> equal bytes (the
        resume test's byte-identity criterion rests on this)."""
        a = ResultStore(tmp_path / "a")
        b = ResultStore(tmp_path / "b")
        a.put(_record())
        # Same content, different dict insertion order.
        scrambled = dict(reversed(list(_record().items())))
        b.put(scrambled)
        assert a.point_path(KEY).read_bytes() == b.point_path(KEY).read_bytes()

    def test_no_temp_files_survive_a_put(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(_record())
        leftovers = [p for p in store.points_dir.iterdir()
                     if p.suffix != ".json"]
        assert leftovers == []

    def test_put_replaces_wholesale(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(_record())
        store.put(_record(timing={"median_s": 0.2}))
        assert store.get(KEY)["timing"] == {"median_s": 0.2}

    def test_clean_drops_everything(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.put(_record())
        store.save_spec({"name": "s"})
        store.log_failure(KEY, "g", "boom")
        store.dataset_hash(DatasetAxis(kind="C", users_frac=0.05,
                                       n_candidates=8, n_facilities=16))
        assert store.clean() == 1
        assert store.keys() == []
        assert not (store.root / "spec.json").exists()
        assert not (store.root / "failures.jsonl").exists()
        assert not (store.root / "dataset_hashes.json").exists()

    def test_failure_log_appends(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.log_failure(KEY, "g", "timeout")
        store.log_failure("b" * 32, "g", "crash")
        lines = (store.root / "failures.jsonl").read_text().splitlines()
        assert [json.loads(l)["reason"] for l in lines] == ["timeout", "crash"]


class TestDatasetHashMemo:
    AXIS = DatasetAxis(kind="C", users_frac=0.05, n_candidates=8,
                       n_facilities=16)

    def test_memo_persists_across_store_instances(self, tmp_path):
        first = ResultStore(tmp_path / "s").dataset_hash(self.AXIS)
        memo = json.loads((tmp_path / "s" / "dataset_hashes.json").read_text())
        assert list(memo.values()) == [first]
        # A fresh instance reads the memo instead of rebuilding.
        again = ResultStore(tmp_path / "s")
        assert again.dataset_hash(self.AXIS) == first

    def test_memo_is_an_optimisation_not_a_truth_source(self, tmp_path,
                                                        monkeypatch):
        """With a memo hit the dataset is never built; the executor's
        expected_key re-derivation is what keeps stale memos honest."""
        store = ResultStore(tmp_path / "s")
        content = store.dataset_hash(self.AXIS)
        monkeypatch.setattr(
            DatasetAxis, "build",
            lambda self: (_ for _ in ()).throw(AssertionError("rebuilt")),
        )
        assert ResultStore(tmp_path / "s").dataset_hash(self.AXIS) == content

    def test_distinct_axes_get_distinct_entries(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        a = store.axis_param_hash(self.AXIS)
        b = store.axis_param_hash(DatasetAxis(kind="C", users_frac=0.06,
                                              n_candidates=8,
                                              n_facilities=16))
        assert a != b
