"""Failure-injection and degenerate-instance tests.

Every solver must handle the pathological shapes a production system
actually meets: single users, co-located everything, unreachable
thresholds, facilities stacked on candidates, k equal to |C|.
"""

import numpy as np
import pytest

from repro.entities import MovingUser, SpatialDataset, candidate, existing
from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
)

ALL_SOLVERS = [
    BaselineGreedySolver(),
    AdaptedKCIFPSolver(),
    IQTSolver(variant=IQTVariant.IQT_C),
    IQTSolver(),
]


def solve_all(dataset, k, tau):
    problem = MC2LSProblem(dataset, k=k, tau=tau)
    results = [s.solve(problem) for s in ALL_SOLVERS]
    first = results[0]
    for r in results[1:]:
        assert r.selected == first.selected
        assert r.objective == pytest.approx(first.objective)
    return first


class TestDegenerateInstances:
    def test_single_user_single_candidate(self):
        ds = SpatialDataset.build(
            [MovingUser(0, np.zeros((3, 2)))],
            [],
            [candidate(0, 0.1, 0.1)],
        )
        result = solve_all(ds, k=1, tau=0.5)
        assert result.selected == (0,)
        assert result.objective == pytest.approx(1.0)

    def test_everything_colocated(self):
        """All users, candidates and competitors on one spot."""
        users = [MovingUser(uid, np.zeros((4, 2))) for uid in range(5)]
        cands = [candidate(i, 0.0, 0.0) for i in range(3)]
        facs = [existing(i, 0.0, 0.0) for i in range(2)]
        ds = SpatialDataset.build(users, facs, cands)
        result = solve_all(ds, k=2, tau=0.5)
        # every candidate covers everyone; every user fights 2 competitors
        assert result.objective == pytest.approx(5 / 3)
        # the second site adds nothing (full overlap)
        assert result.gains[1] == pytest.approx(0.0)

    def test_unreachable_threshold(self):
        """tau = 0.99 with single-position users: nobody is influenced."""
        users = [MovingUser(uid, np.array([[float(uid), 0.0]])) for uid in range(4)]
        ds = SpatialDataset.build(users, [], [candidate(0, 0, 0), candidate(1, 1, 0)])
        result = solve_all(ds, k=2, tau=0.99)
        assert result.objective == 0.0
        assert len(result.selected) == 2  # still selects k (zero-gain) sites

    def test_k_equals_all_candidates(self):
        users = [
            MovingUser(uid, np.random.default_rng(uid).uniform(0, 5, (5, 2)))
            for uid in range(8)
        ]
        cands = [candidate(i, i * 1.0, 1.0) for i in range(4)]
        ds = SpatialDataset.build(users, [existing(0, 2.0, 2.0)], cands)
        result = solve_all(ds, k=4, tau=0.3)
        assert set(result.selected) == {0, 1, 2, 3}

    def test_facility_on_every_candidate(self):
        """Each candidate shadowed by an identical competitor halves shares."""
        rng = np.random.default_rng(3)
        users = [
            MovingUser(uid, rng.normal([2.0, 2.0], 0.3, (6, 2))) for uid in range(6)
        ]
        cands = [candidate(0, 2.0, 2.0)]
        facs = [existing(0, 2.0, 2.0)]
        with_comp = solve_all(SpatialDataset.build(users, facs, cands), k=1, tau=0.5)
        without = solve_all(SpatialDataset.build(users, [], cands), k=1, tau=0.5)
        assert with_comp.objective == pytest.approx(without.objective / 2)

    def test_one_position_per_user(self):
        """r = 1 everywhere: the multi-point model degrades to single-point."""
        rng = np.random.default_rng(4)
        users = [MovingUser(uid, rng.uniform(0, 8, (1, 2))) for uid in range(20)]
        cands = [candidate(i, *rng.uniform(0, 8, 2)) for i in range(5)]
        ds = SpatialDataset.build(users, [existing(0, 4, 4)], cands)
        result = solve_all(ds, k=2, tau=0.2)
        assert len(result.selected) == 2

    def test_huge_coordinates(self):
        """Far-from-origin regions must not break the index geometry."""
        offset = 1e6
        rng = np.random.default_rng(5)
        users = [
            MovingUser(uid, offset + rng.normal(0, 1.0, (5, 2))) for uid in range(10)
        ]
        cands = [candidate(i, offset + float(i), offset) for i in range(3)]
        ds = SpatialDataset.build(users, [existing(0, offset, offset)], cands)
        result = solve_all(ds, k=1, tau=0.3)
        assert len(result.selected) == 1

    def test_extremely_low_tau(self):
        rng = np.random.default_rng(6)
        users = [MovingUser(uid, rng.uniform(0, 6, (4, 2))) for uid in range(10)]
        cands = [candidate(i, *rng.uniform(0, 6, 2)) for i in range(4)]
        ds = SpatialDataset.build(users, [existing(0, 3, 3)], cands)
        result = solve_all(ds, k=2, tau=0.01)
        # at tau=0.01 essentially everyone is influenced by everything
        assert result.objective > 0

    def test_duplicate_positions_within_user(self):
        users = [MovingUser(0, np.tile([[1.0, 1.0]], (30, 1)))]
        ds = SpatialDataset.build(users, [], [candidate(0, 1.0, 1.0)])
        result = solve_all(ds, k=1, tau=0.9)
        assert result.objective == pytest.approx(1.0)
