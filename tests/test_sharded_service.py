"""Sharded execution through the coordinator and the serving engine.

Covers the tentpole's observable guarantees: bit-identity to the
single-process path across solvers and kernel knobs, graceful fallback,
publish/republish hygiene, and the leak-proof worker-crash path.
"""

import glob

import numpy as np
import pytest

from tests.conftest import build_instance
from repro.competition import InfluenceTable
from repro.exceptions import ServiceError, ShardError, SolverError
from repro.influence import InfluenceEvaluator, paper_default_pf
from repro.service import (
    SelectionEngine,
    SelectionQuery,
    ShardCoordinator,
)
from repro.service.shared import SEGMENT_PREFIX
from repro.service.snapshot import DatasetSnapshot
from repro.solvers import CoverageMatrix
from repro.solvers.base import resolve_all_pairs

TAU = 0.7


def _devshm_segments():
    return set(glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*"))


@pytest.fixture
def preexisting_segments():
    """Segments owned by other processes (e.g. a concurrently running
    benchmark); leak assertions only check for *new* orphans."""
    return _devshm_segments()


@pytest.fixture(scope="module")
def instance():
    return build_instance(seed=21, n_users=180, n_candidates=30, n_facilities=10)


@pytest.fixture(scope="module")
def snapshot(instance):
    return DatasetSnapshot(instance)


def _reference_matrix(dataset, tau=TAU):
    ev = InfluenceEvaluator(paper_default_pf(), tau)
    omega, f_o = resolve_all_pairs(dataset, ev, batch_verify=True)
    table = InfluenceTable.from_mappings(omega, f_o)
    cids = sorted(c.fid for c in dataset.candidates)
    return CoverageMatrix(table, cids), ev.stats


# ----------------------------------------------------------------------
# Coordinator-level identity
# ----------------------------------------------------------------------
def test_coordinator_matches_single_process(instance, snapshot, preexisting_segments):
    matrix, ref_stats = _reference_matrix(instance)
    ref = matrix.select(5)
    with ShardCoordinator(3) as coord:
        assert coord.prepare(snapshot, TAU, paper_default_pf()) is True
        out = coord.select(5)
        assert out.selected == ref.selected
        assert out.gains == ref.gains
        assert out.objective == ref.objective
        # Merged resolution counters equal the single-process resolve.
        assert coord.stats.__dict__ == ref_stats.__dict__
        # Same config again: preparation is a hit.
        assert coord.prepare(snapshot, TAU, paper_default_pf()) is False
    assert _devshm_segments() <= preexisting_segments


def test_coordinator_candidate_mask(instance, snapshot):
    matrix, _ = _reference_matrix(instance)
    cids = matrix.candidate_ids
    mask = list(cids[::3])
    ref = matrix.restrict(mask).select(3)
    with ShardCoordinator(2) as coord:
        coord.prepare(snapshot, TAU, paper_default_pf())
        out = coord.select(3, candidate_ids=mask)
        assert out.selected == ref.selected
        assert out.gains == ref.gains


def test_coordinator_more_workers_than_users():
    tiny = build_instance(seed=5, n_users=3, n_candidates=6, n_facilities=2)
    matrix, _ = _reference_matrix(tiny)
    ref = matrix.select(2)
    with ShardCoordinator(5) as coord:
        coord.prepare(DatasetSnapshot(tiny), TAU, paper_default_pf())
        out = coord.select(2)
        assert out.selected == ref.selected
        assert out.gains == ref.gains


def test_coordinator_load_matrix_handoff(instance):
    matrix, _ = _reference_matrix(instance)
    ref = matrix.select(4)
    with ShardCoordinator(3) as coord:
        coord.load_matrix(matrix, "d" * 64)
        out = coord.select(4)
        assert out.selected == ref.selected
        assert out.gains == ref.gains
        assert out.objective == ref.objective


def test_coordinator_protocol_errors(instance, snapshot):
    with ShardCoordinator(2) as coord:
        with pytest.raises(ShardError, match="prepare"):
            coord.select(3)
        coord.prepare(snapshot, TAU, paper_default_pf())
        with pytest.raises(SolverError):
            coord.select(0)
        with pytest.raises(SolverError):
            coord.select(10_000)
        with pytest.raises(SolverError, match="unknown"):
            coord.select(2, candidate_ids=[999_999])
        # Handler-level errors leave the fleet alive; re-prepare recovers.
        assert coord.broken is None
        coord.prepare(snapshot, TAU, paper_default_pf())
        assert coord.select(2).selected


def test_coordinator_close_is_idempotent(snapshot, preexisting_segments):
    coord = ShardCoordinator(2)
    coord.prepare(snapshot, TAU, paper_default_pf())
    coord.close()
    coord.close()
    with pytest.raises(ShardError, match="broken"):
        coord.select(1)
    assert _devshm_segments() <= preexisting_segments


# ----------------------------------------------------------------------
# Engine-level identity across solvers x knobs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("solver", ["baseline", "iqt", "iqt-pino"])
@pytest.mark.parametrize("fast_select", [True, False])
def test_engine_sharded_matches_threaded(instance, solver, fast_select, preexisting_segments):
    sharded = SelectionEngine(instance, execution="sharded", shard_workers=2)
    threaded = SelectionEngine(instance)
    try:
        for k, tau in [(1, 0.7), (4, 0.7), (3, 0.6)]:
            q = SelectionQuery(
                k=k, tau=tau, solver=solver, fast_select=fast_select, use_cache=False
            )
            rs = sharded.execute(q)
            rt = threaded.execute(q)
            assert rs.selected == rt.selected
            assert rs.gains == rt.gains
            assert rs.objective == rt.objective
    finally:
        sharded.shutdown()
        threaded.shutdown()
    assert _devshm_segments() <= preexisting_segments


def test_engine_sharded_candidate_mask(instance):
    cids = sorted(c.fid for c in instance.candidates)
    mask = tuple(cids[:10])
    sharded = SelectionEngine(instance, execution="sharded", shard_workers=2)
    threaded = SelectionEngine(instance)
    try:
        q = SelectionQuery(k=3, candidate_ids=mask, use_cache=False)
        rs = sharded.execute(q)
        rt = threaded.execute(q)
        assert rs.selected == rt.selected
        assert rs.gains == rt.gains
    finally:
        sharded.shutdown()
        threaded.shutdown()


def test_engine_sharded_provenance_and_result_cache(instance):
    engine = SelectionEngine(instance, execution="sharded", shard_workers=2)
    try:
        q = SelectionQuery(k=3)
        first = engine.execute(q)
        assert first.stats.prepared_cache == "sharded-miss"
        # Identical query: result cache absorbs it before the fleet runs.
        second = engine.execute(q)
        assert second.stats.result_cache == "hit"
        # Same prepared config, different k: fleet runs, prepare hits.
        third = engine.execute(SelectionQuery(k=4))
        assert third.stats.prepared_cache == "sharded-hit"
        stats = engine.stats()["sharded"]
        assert stats["execution"] == "sharded"
        assert stats["queries"] == 2
        assert stats["failures"] == 0
    finally:
        engine.shutdown()


def test_engine_fallback_below_two_workers(instance):
    engine = SelectionEngine(instance, execution="sharded", shard_workers=1)
    try:
        result = engine.execute(SelectionQuery(k=3))
        assert result.selected  # served on the threaded path
        stats = engine.stats()["sharded"]
        assert stats["fallbacks"] == 1
        assert stats["queries"] == 0
        assert stats["active"] is False
    finally:
        engine.shutdown()


def test_engine_rejects_unknown_execution(instance):
    with pytest.raises(ServiceError, match="execution"):
        SelectionEngine(instance, execution="gpu")


def test_engine_republish_detaches_fleet(instance, preexisting_segments):
    other = build_instance(seed=77, n_users=150, n_candidates=25, n_facilities=8)
    engine = SelectionEngine(instance, execution="sharded", shard_workers=2)
    threaded = SelectionEngine(other)
    try:
        engine.execute(SelectionQuery(k=3))
        engine.publish(other)
        result = engine.execute(SelectionQuery(k=3, use_cache=False))
        reference = threaded.execute(SelectionQuery(k=3, use_cache=False))
        assert result.stats.prepared_cache == "sharded-miss"
        assert result.selected == reference.selected
        assert result.gains == reference.gains
    finally:
        engine.shutdown()
        threaded.shutdown()
    assert _devshm_segments() <= preexisting_segments


# ----------------------------------------------------------------------
# Worker-crash path
# ----------------------------------------------------------------------
def test_worker_kill_raises_cleanly_and_leaves_no_segments(instance, preexisting_segments):
    engine = SelectionEngine(instance, execution="sharded", shard_workers=2)
    try:
        engine.execute(SelectionQuery(k=2))
        coord = engine._coordinator
        assert coord is not None and (_devshm_segments() - preexisting_segments)
        coord._workers[0].process.kill()
        coord._workers[0].process.join(timeout=5.0)
        # Next fleet round trips over the dead pipe: clean ShardError,
        # full teardown, nothing orphaned in /dev/shm.
        with pytest.raises(ShardError):
            engine.execute(SelectionQuery(k=5, use_cache=False))
        assert _devshm_segments() <= preexisting_segments
        assert engine.stats()["sharded"]["failures"] == 1
        # The engine dropped the broken coordinator: the next query
        # starts a fresh fleet and serves correctly.
        revived = engine.execute(SelectionQuery(k=2, use_cache=False))
        reference = SelectionEngine(instance)
        try:
            expect = reference.execute(SelectionQuery(k=2, use_cache=False))
        finally:
            reference.shutdown()
        assert revived.selected == expect.selected
        assert revived.gains == expect.gains
    finally:
        engine.shutdown()
    assert _devshm_segments() <= preexisting_segments


def test_coordinator_fail_unlinks_segments(snapshot, preexisting_segments):
    coord = ShardCoordinator(2)
    try:
        coord.prepare(snapshot, TAU, paper_default_pf())
        assert _devshm_segments() - preexisting_segments
        for w in coord._workers:
            w.process.kill()
            w.process.join(timeout=5.0)
        with pytest.raises(ShardError):
            coord.select(2)
        assert coord.broken is not None
        assert _devshm_segments() <= preexisting_segments
    finally:
        coord.close()
