"""SharedArrayStore: lifecycle, handshake, and leak-proof cleanup."""

import glob

import numpy as np
import pytest

from repro.exceptions import ServiceError
from repro.service.shared import (
    SEGMENT_PREFIX,
    SharedArrayStore,
    live_segment_names,
)

HASH_A = "a" * 64
HASH_B = "b" * 64


def _devshm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture
def arrays():
    return {
        "ints": np.arange(10, dtype=np.int64),
        "floats": np.linspace(0.0, 1.0, 7),
        "matrix": np.arange(12, dtype=np.float64).reshape(3, 4),
    }


def test_create_attach_roundtrip(arrays):
    with SharedArrayStore.create(arrays, HASH_A) as store:
        assert store.content_hash == HASH_A
        assert set(store.keys()) == set(arrays)
        attached = SharedArrayStore.attach(store.manifest)
        for name, arr in arrays.items():
            np.testing.assert_array_equal(store[name], arr)
            np.testing.assert_array_equal(attached[name], arr)
            assert attached[name].dtype == arr.dtype
            assert attached[name].flags.c_contiguous
        attached.close()
    assert not _devshm_segments()


def test_attached_views_are_readonly(arrays):
    with SharedArrayStore.create(arrays, HASH_A) as store:
        attached = SharedArrayStore.attach(store.manifest)
        with pytest.raises(ValueError):
            attached["ints"][0] = 99
        attached.close()


def test_non_contiguous_input_is_normalised():
    strided = np.arange(20, dtype=np.float64)[::2]
    assert not strided.flags.c_contiguous or strided.base is not None
    with SharedArrayStore.create({"a": strided}, HASH_A) as store:
        np.testing.assert_array_equal(store["a"], strided)
        assert store["a"].flags.c_contiguous


def test_hash_handshake_rejects_mismatch(arrays):
    with SharedArrayStore.create(arrays, HASH_A) as store:
        forged = dict(store.manifest)
        forged["content_hash"] = HASH_B
        with pytest.raises(ServiceError, match="handshake"):
            SharedArrayStore.attach(forged)


def test_attach_missing_segment_raises(arrays):
    store = SharedArrayStore.create(arrays, HASH_A)
    manifest = store.manifest
    store.close()
    store.unlink()
    with pytest.raises(ServiceError, match="does not exist"):
        SharedArrayStore.attach(manifest)


def test_attach_rejects_foreign_segment():
    """A segment without our header magic is refused."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=256)
    try:
        manifest = {
            "segment": shm.name,
            "content_hash": HASH_A,
            "size": shm.size,
            "arrays": [],
            "tracker_pid": None,
        }
        with pytest.raises(ServiceError, match="not a MC2LS array store"):
            SharedArrayStore.attach(manifest)
    finally:
        shm.close()
        shm.unlink()


def test_close_and_unlink_are_idempotent(arrays):
    store = SharedArrayStore.create(arrays, HASH_A)
    name = store.segment_name
    assert name in live_segment_names()
    store.close()
    store.close()
    store.unlink()
    store.unlink()
    assert name not in live_segment_names()
    assert not _devshm_segments()


def test_close_blocks_access(arrays):
    store = SharedArrayStore.create(arrays, HASH_A)
    store.close()
    with pytest.raises(ServiceError, match="closed"):
        store["ints"]
    store.unlink()


def test_attacher_never_unlinks(arrays):
    store = SharedArrayStore.create(arrays, HASH_A)
    attached = SharedArrayStore.attach(store.manifest)
    attached.close()
    attached.unlink()  # non-owner: must be a no-op
    again = SharedArrayStore.attach(store.manifest)
    np.testing.assert_array_equal(again["ints"], arrays["ints"])
    again.close()
    store.close()
    store.unlink()


def test_registry_tracks_ownership(arrays):
    store = SharedArrayStore.create(arrays, HASH_A)
    assert store.segment_name in live_segment_names()
    attached = SharedArrayStore.attach(store.manifest)
    # Attaching never registers with the owner-side atexit guard.
    assert live_segment_names().count(store.segment_name) == 1
    attached.close()
    store.close()
    store.unlink()
    assert store.segment_name not in live_segment_names()


def test_bad_hash_length_rejected(arrays):
    with pytest.raises(ServiceError, match="hex chars"):
        SharedArrayStore.create(arrays, "abc")


def test_atexit_guard_cleans_orphans_in_subprocess(tmp_path):
    """A process that creates a store and exits uncleanly (no unlink call)
    still leaves /dev/shm clean thanks to the atexit guard."""
    import subprocess
    import sys
    from pathlib import Path

    repo = Path(__file__).resolve().parent.parent
    script = tmp_path / "orphan.py"
    script.write_text(
        "import sys\n"
        f"sys.path.insert(0, {str(repo / 'src')!r})\n"
        "import numpy as np\n"
        "from repro.service.shared import SharedArrayStore\n"
        "store = SharedArrayStore.create({'a': np.arange(4.0)}, 'c' * 64)\n"
        "print(store.segment_name)\n"
        "sys.exit(0)\n"  # exits without close/unlink
    )
    proc = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True, timeout=60
    )
    assert proc.returncode == 0, proc.stderr
    name = proc.stdout.strip()
    assert name.startswith(SEGMENT_PREFIX)
    assert not glob.glob(f"/dev/shm/{name}*")
