"""Unit and property tests for all four pruning rules.

The core soundness contracts:
  * IA-confirmed  => Pr_v(o) >= tau
  * NIB-pruned    => Pr_v(o) <  tau
  * IS-confirmed  => Pr_v(o) >= tau
  * NIR-pruned    => Pr_v(o) <  tau
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.entities import MovingUser, candidate
from repro.geo import Point, Rect
from repro.influence import (
    InfluenceEvaluator,
    cumulative_probability,
    min_max_radius,
    non_influence_radius,
    paper_default_pf,
    position_count_threshold_int,
)
from repro.pruning import (
    PinocchioPruner,
    PruningStats,
    is_rule_confirms,
    measure_iquadtree_pruning,
    measure_pinocchio_pruning,
    nir_rule_prunes,
    regions_for,
)

PF = paper_default_pf()
REGION = Rect(0, 0, 30, 30)


def random_user(uid, rng, r=10, spread=2.0, region=REGION):
    center = rng.uniform([region.min_x + 2, region.min_y + 2],
                         [region.max_x - 2, region.max_y - 2])
    pos = np.clip(
        rng.normal(center, spread, size=(r, 2)),
        [region.min_x, region.min_y],
        [region.max_x, region.max_y],
    )
    return MovingUser(uid, pos)


class TestUserPruningRegions:
    def test_nib_rect_is_mbr_plus_mmr(self):
        user = MovingUser(0, np.array([[5.0, 5.0], [7.0, 9.0]]))
        regions = regions_for(user, 0.3, PF)
        mmr = min_max_radius(0.3, 2, PF)
        assert regions.nib_rect() == user.mbr.expanded(mmr)

    def test_ia_empty_when_mmr_zero(self):
        # One position, tau=0.7, rho=1: threshold unreachable -> mMR = 0.
        user = MovingUser(0, np.array([[5.0, 5.0]]))
        regions = regions_for(user, 0.7, PF)
        assert regions.mmr == 0.0
        assert not regions.ia_contains(Point(5.0, 5.0))

    def test_classify_three_ways(self):
        # Tight cluster of many positions => sizeable mMR and IA region.
        pos = np.full((30, 2), 10.0)
        user = MovingUser(0, pos)
        regions = regions_for(user, 0.5, PF)
        assert regions.mmr > 0
        assert regions.classify(Point(10.0, 10.0)) == "influenced"
        assert regions.classify(Point(10.0 + regions.mmr / 2, 10.0)) == "influenced"
        assert regions.classify(Point(25.0, 25.0)) == "pruned"

    @pytest.mark.parametrize("tau", [0.2, 0.5, 0.8])
    def test_ia_soundness(self, tau):
        rng = np.random.default_rng(11)
        for uid in range(15):
            user = random_user(uid, rng, r=15, spread=0.7)
            regions = regions_for(user, tau, PF)
            for _ in range(10):
                p = Point(*rng.uniform(0, 30, size=2))
                if regions.ia_contains(p):
                    pr = cumulative_probability(p.x, p.y, user.positions, PF)
                    assert pr >= tau - 1e-9

    @pytest.mark.parametrize("tau", [0.2, 0.5, 0.8])
    def test_nib_soundness(self, tau):
        rng = np.random.default_rng(13)
        for uid in range(15):
            user = random_user(uid, rng, r=15, spread=0.7)
            regions = regions_for(user, tau, PF)
            for _ in range(10):
                p = Point(*rng.uniform(0, 30, size=2))
                if not regions.nib_contains(p):
                    pr = cumulative_probability(p.x, p.y, user.positions, PF)
                    assert pr < tau


class TestISRule:
    def test_confirms_dense_square(self):
        square = Rect(9, 9, 11, 11)  # diagonal = 2*sqrt(2)
        eta = position_count_threshold_int(0.7, PF, square.diagonal)
        positions = np.random.default_rng(0).uniform(9, 11, size=(eta + 5, 2))
        assert is_rule_confirms(square, eta, positions)

    def test_rejects_sparse_square(self):
        square = Rect(9, 9, 11, 11)
        eta = position_count_threshold_int(0.7, PF, square.diagonal)
        positions = np.array([[10.0, 10.0]])  # a single position
        assert eta > 1
        assert not is_rule_confirms(square, eta, positions)

    def test_infinite_eta_never_confirms(self):
        square = Rect(0, 0, 30, 30)
        positions = np.random.default_rng(0).uniform(0, 30, size=(1000, 2))
        assert not is_rule_confirms(square, 2**62, positions)

    @given(
        seed=st.integers(0, 500),
        tau=st.floats(min_value=0.1, max_value=0.9),
        cx=st.floats(min_value=3, max_value=27),
        cy=st.floats(min_value=3, max_value=27),
    )
    @settings(max_examples=60, deadline=None)
    def test_is_soundness_property(self, seed, tau, cx, cy):
        """IS-confirmed => every facility in the square influences the user."""
        rng = np.random.default_rng(seed)
        half = 1.0
        square = Rect(cx - half, cy - half, cx + half, cy + half)
        eta = position_count_threshold_int(tau, PF, square.diagonal)
        user = random_user(0, rng, r=25, spread=1.2)
        if not is_rule_confirms(square, eta, user.positions):
            return
        for _ in range(5):
            vx, vy = rng.uniform([square.min_x, square.min_y],
                                 [square.max_x, square.max_y])
            pr = cumulative_probability(vx, vy, user.positions, PF)
            assert pr >= tau - 1e-9


class TestNIRRule:
    @given(
        seed=st.integers(0, 500),
        tau=st.floats(min_value=0.1, max_value=0.9),
        cx=st.floats(min_value=3, max_value=27),
        cy=st.floats(min_value=3, max_value=27),
        exact=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_nir_soundness_property(self, seed, tau, cx, cy, exact):
        """NIR-pruned => no facility in the square influences the user."""
        rng = np.random.default_rng(seed)
        half = 1.0
        square = Rect(cx - half, cy - half, cx + half, cy + half)
        user = random_user(0, rng, r=20, spread=1.5)
        nir = non_influence_radius(tau, user.r, PF)
        if not nir_rule_prunes(square, nir, user.positions, exact_rounded=exact):
            return
        for _ in range(5):
            vx, vy = rng.uniform([square.min_x, square.min_y],
                                 [square.max_x, square.max_y])
            pr = cumulative_probability(vx, vy, user.positions, PF)
            assert pr < tau

    def test_exact_rounded_prunes_superset(self):
        """The exact rounded-square test prunes at least as much as the MBR."""
        rng = np.random.default_rng(21)
        square = Rect(10, 10, 12, 12)
        nir = 2.0
        for _ in range(200):
            positions = rng.uniform(7, 15, size=(5, 2))
            if nir_rule_prunes(square, nir, positions, exact_rounded=False):
                assert nir_rule_prunes(square, nir, positions, exact_rounded=True)


class TestPinocchioPruner:
    def make_instance(self, seed=0, n_users=20, n_fac=30):
        rng = np.random.default_rng(seed)
        users = [random_user(uid, rng) for uid in range(n_users)]
        facs = [candidate(i, *rng.uniform(0, 30, size=2)) for i in range(n_fac)]
        return users, facs

    def test_classification_is_exhaustive_and_sound(self):
        users, facs = self.make_instance()
        pruner = PinocchioPruner(facs, tau=0.5, pf=PF)
        ev = InfluenceEvaluator(PF, 0.5, early_stopping=False)
        for user in users:
            result = pruner.classify_user(user)
            confirmed = {f.fid for f in result.confirmed}
            verify = {f.fid for f in result.verify}
            assert not (confirmed & verify)
            for f in facs:
                pr = ev.probability(f.x, f.y, user.positions)
                if f.fid in confirmed:
                    assert pr >= 0.5 - 1e-9
                elif f.fid not in verify:  # pruned
                    assert pr < 0.5

    def test_stats_accumulate(self):
        users, facs = self.make_instance()
        pruner = PinocchioPruner(facs, tau=0.5, pf=PF)
        for user in users:
            pruner.classify_user(user)
        assert pruner.stats.total == len(users) * len(facs)
        assert pruner.range_queries == len(users)

    def test_use_ia_false_sends_everything_to_verify(self):
        users, facs = self.make_instance(seed=3)
        with_ia = PinocchioPruner(facs, tau=0.3, pf=PF, use_ia=True)
        without = PinocchioPruner(facs, tau=0.3, pf=PF, use_ia=False)
        for user in users:
            a = with_ia.classify_user(user)
            b = without.classify_user(user)
            assert not b.confirmed
            assert {f.fid for f in b.verify} == (
                {f.fid for f in a.verify} | {f.fid for f in a.confirmed}
            )


class TestMeasurementHelpers:
    def test_pinocchio_measurement(self):
        rng = np.random.default_rng(5)
        users = [random_user(uid, rng) for uid in range(10)]
        facs = [candidate(i, *rng.uniform(0, 30, size=2)) for i in range(15)]
        stats = measure_pinocchio_pruning(users, facs, 0.5, PF)
        assert stats.total == 150
        assert 0 <= stats.saved_fraction <= 1

    def test_iquadtree_measurement(self):
        rng = np.random.default_rng(6)
        users = [random_user(uid, rng) for uid in range(10)]
        facs = [candidate(i, *rng.uniform(0, 30, size=2)) for i in range(15)]
        stats, view = measure_iquadtree_pruning(
            users, facs, 0.5, PF, d_hat=2.0, region=REGION
        )
        assert stats.total == 150
        assert view.traversals == 15
        assert view.leaves >= 1

    def test_pruning_stats_fractions(self):
        s = PruningStats(confirmed=10, pruned=70, verify=20)
        assert s.total == 100
        assert s.confirmed_fraction == pytest.approx(0.1)
        assert s.pruned_fraction == pytest.approx(0.7)
        assert s.saved_fraction == pytest.approx(0.8)
        row = s.as_row()
        assert row["pruned_frac"] == 0.7

    def test_empty_stats(self):
        s = PruningStats()
        assert s.total == 0
        assert s.saved_fraction == 0.0

    def test_merge(self):
        a = PruningStats(1, 2, 3)
        a.merge(PruningStats(10, 20, 30))
        assert (a.confirmed, a.pruned, a.verify) == (11, 22, 33)
