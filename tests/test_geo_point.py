"""Unit tests for :mod:`repro.geo.point`."""

import math

import pytest

from repro.geo import ORIGIN, Point, midpoint


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, -2.5)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a, b = Point(1.5, 2.5), Point(-4.0, 7.0)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        p = Point(1.0, 2.0).translated(0.5, -1.0)
        assert p == Point(1.5, 1.0)

    def test_as_tuple_and_iter(self):
        p = Point(1.0, 2.0)
        assert p.as_tuple() == (1.0, 2.0)
        x, y = p
        assert (x, y) == (1.0, 2.0)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Point(0, 0).x = 5.0  # type: ignore[misc]

    def test_equality_and_hash(self):
        assert Point(1, 2) == Point(1, 2)
        assert hash(Point(1, 2)) == hash(Point(1, 2))
        assert Point(1, 2) != Point(2, 1)

    def test_origin_constant(self):
        assert ORIGIN == Point(0.0, 0.0)


class TestMidpoint:
    def test_midpoint_basic(self):
        assert midpoint(Point(0, 0), Point(2, 4)) == Point(1, 2)

    def test_midpoint_commutes(self):
        a, b = Point(-1, 3), Point(5, -7)
        assert midpoint(a, b) == midpoint(b, a)

    def test_midpoint_of_identical_points(self):
        p = Point(2.5, 2.5)
        assert midpoint(p, p) == p

    def test_midpoint_distance_halved(self):
        a, b = Point(0, 0), Point(6, 8)
        m = midpoint(a, b)
        assert a.distance_to(m) == pytest.approx(a.distance_to(b) / 2)
        assert math.isclose(a.distance_to(m), b.distance_to(m))
