"""Integration tests: every solver resolves the same relationships and
returns the same selection; greedy respects the (1 - 1/e) guarantee.

This is the paper's own consistency claim (§VII, effect of k: "All the
algorithms achieve identical k result candidates").
"""

import math

import pytest

from repro.solvers import (
    AdaptedKCIFPSolver,
    BaselineGreedySolver,
    ExactSolver,
    IQTSolver,
    IQTVariant,
    MC2LSProblem,
)
from tests.conftest import build_instance

ALL_SOLVERS = [
    BaselineGreedySolver(),
    AdaptedKCIFPSolver(),
    AdaptedKCIFPSolver(early_stopping=True),
    IQTSolver(variant=IQTVariant.IQT),
    IQTSolver(variant=IQTVariant.IQT_C),
    IQTSolver(variant=IQTVariant.IQT_PINO),
    IQTSolver(variant=IQTVariant.IQT, exact_rounded=True),
    IQTSolver(variant=IQTVariant.IQT, early_stopping=False),
]


def solver_id(s):
    extras = []
    if getattr(s, "early_stopping", None) is True and s.name == "k-cifp":
        extras.append("es")
    if getattr(s, "exact_rounded", False):
        extras.append("exact")
    if getattr(s, "early_stopping", True) is False:
        extras.append("noes")
    return s.name + ("-" + "-".join(extras) if extras else "")


@pytest.mark.parametrize("clustered", [False, True], ids=["uniform", "skewed"])
@pytest.mark.parametrize("tau", [0.3, 0.7])
class TestSolverAgreement:
    def test_identical_tables_and_selection(self, clustered, tau):
        dataset = build_instance(seed=7, clustered=clustered, n_users=25)
        problem = MC2LSProblem(dataset, k=4, tau=tau)
        reference = BaselineGreedySolver().solve(problem)
        for solver in ALL_SOLVERS[1:]:
            result = solver.solve(problem)
            # Identical candidate coverage sets...
            assert result.table.omega_c == reference.table.omega_c, solver_id(solver)
            # ...identical competitor counts on every covered user...
            for uid in reference.table.influenced_users():
                assert result.table.competitor_count(uid) == (
                    reference.table.competitor_count(uid)
                ), solver_id(solver)
            # ...hence identical greedy selection and objective.
            assert result.selected == reference.selected, solver_id(solver)
            assert result.objective == pytest.approx(reference.objective)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", [0, 3, 9])
    def test_greedy_at_least_1_minus_1_over_e_of_exact(self, seed):
        dataset = build_instance(seed=seed, n_users=20, n_candidates=8, n_facilities=5)
        problem = MC2LSProblem(dataset, k=3, tau=0.4)
        exact = ExactSolver().solve(problem)
        greedy = BaselineGreedySolver().solve(problem)
        assert greedy.objective >= (1 - 1 / math.e) * exact.objective - 1e-9
        # And never better than the optimum, obviously.
        assert greedy.objective <= exact.objective + 1e-9

    def test_exact_refuses_oversized_instances(self):
        dataset = build_instance(seed=1, n_candidates=40)
        problem = MC2LSProblem(dataset, k=15, tau=0.5)
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            ExactSolver(max_combinations=1000).solve(problem)


class TestResultMetadata:
    def test_timings_present(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3)
        for solver in [BaselineGreedySolver(), IQTSolver()]:
            result = solver.solve(problem)
            assert result.total_time > 0
            assert "greedy" in result.timings
            assert result.timings["total"] >= result.timings["greedy"]

    def test_iqt_pruning_stats_cover_all_pairs(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3)
        result = IQTSolver().solve(problem)
        n_pairs = len(small_instance.users) * len(small_instance.abstract_facilities)
        assert result.pruning is not None
        assert result.pruning.total == n_pairs

    def test_iqt_verifies_fewer_pairs_than_baseline_evaluates(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3)
        baseline = BaselineGreedySolver().solve(problem)
        iqt = IQTSolver().solve(problem)
        assert iqt.evaluation.total_evaluations < baseline.evaluation.total_evaluations

    def test_gains_length_equals_k(self, small_instance):
        problem = MC2LSProblem(small_instance, k=4)
        result = IQTSolver().solve(problem)
        assert len(result.gains) == 4

    def test_selected_are_valid_candidates(self, small_instance):
        problem = MC2LSProblem(small_instance, k=3)
        result = IQTSolver().solve(problem)
        cids = {c.fid for c in small_instance.candidates}
        assert set(result.selected) <= cids
        assert len(set(result.selected)) == 3


class TestProblemValidation:
    def test_bad_k(self, small_instance):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            MC2LSProblem(small_instance, k=0)
        with pytest.raises(SolverError):
            MC2LSProblem(small_instance, k=999)

    def test_bad_tau(self, small_instance):
        from repro.exceptions import SolverError

        with pytest.raises(SolverError):
            MC2LSProblem(small_instance, k=2, tau=0.0)
        with pytest.raises(SolverError):
            MC2LSProblem(small_instance, k=2, tau=1.0)
