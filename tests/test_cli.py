"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.solver == "iqt"
        assert args.k == 5
        assert args.dataset == "c"


class TestSolve:
    def test_solve_prints_selection(self, capsys):
        code = main(
            [
                "solve",
                "--dataset", "n",
                "--users", "120",
                "--candidates", "15",
                "--facilities", "20",
                "--k", "3",
                "--tau", "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cinf(G)" in out
        assert "candidate" in out
        assert out.count("\n") > 5

    def test_solver_choice(self, capsys):
        code = main(
            [
                "solve", "--users", "80", "--candidates", "10",
                "--facilities", "10", "--k", "2", "--solver", "k-cifp",
            ]
        )
        assert code == 0
        assert "k-cifp" in capsys.readouterr().out

    def test_kernel_flags_fall_back_to_scalar(self, capsys):
        base = ["solve", "--users", "80", "--candidates", "10",
                "--facilities", "10", "--k", "2"]
        code = main(base)
        assert code == 0
        default_out = capsys.readouterr().out
        assert "kernels: batch-verify+csr-select" in default_out

        code = main(base + ["--no-batch-verify", "--no-fast-select"])
        assert code == 0
        scalar_out = capsys.readouterr().out
        assert "kernels: scalar" in scalar_out

        # Knobs change the kernels, never the selection.
        pick = lambda text: [
            line for line in text.splitlines() if "cinf(G)" in line
        ]
        assert pick(default_out)[0].split("solver")[0] == \
            pick(scalar_out)[0].split("solver")[0]


class TestCompare:
    def test_compare_agreement(self, capsys):
        code = main(
            [
                "compare", "--dataset", "n", "--users", "100",
                "--candidates", "12", "--facilities", "15", "--k", "2",
                "--skip-baseline",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "iqt" in out and "k-cifp" in out
        assert "kernels" in out and "batch-verify+csr-select" in out
        assert "NO" not in out

    def test_compare_scalar_kernels_still_agree(self, capsys):
        code = main(
            [
                "compare", "--users", "80", "--candidates", "10",
                "--facilities", "12", "--k", "2", "--skip-baseline",
                "--no-batch-verify", "--no-fast-select",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "batch-verify" not in out
        assert "scalar" in out
        assert "NO" not in out


class TestServe:
    def test_serve_warm_passes_hit_cache(self, capsys):
        code = main(
            [
                "serve", "--users", "80", "--candidates", "10",
                "--facilities", "12", "--k-max", "3", "--taus", "0.6",
                "--threads", "2", "--repeat", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "result_hits" in out
        assert "prepared_cache" in out and "result_cache" in out
        # The second pass must be answered from the result cache.
        assert "hit rate" in out


class TestStats:
    def test_stats_row(self, capsys):
        code = main(["stats", "--users", "60", "--candidates", "5",
                     "--facilities", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mbr_ratio" in out


class TestGenerate:
    def test_generate_then_solve(self, tmp_path, capsys):
        path = tmp_path / "checkins.txt"
        code = main(["generate", str(path), "--users", "60", "--seed", "4"])
        assert code == 0
        assert path.exists()
        capsys.readouterr()
        code = main(
            [
                "solve", "--checkins", str(path), "--candidates", "8",
                "--facilities", "10", "--k", "2", "--tau", "0.4",
            ]
        )
        assert code == 0
        assert "cinf(G)" in capsys.readouterr().out

    def test_error_reporting(self, tmp_path, capsys):
        code = main(
            ["solve", "--checkins", str(tmp_path / "missing.txt"), "--k", "2"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err
